//! Property tests: calendar round trips and interval algebra.

use proptest::prelude::*;
use sift_simtime::{Hour, HourRange};

proptest! {
    /// Hour -> Civil -> Hour is the identity over a wide span
    /// (1900..2100, hours around the study epoch).
    #[test]
    fn civil_round_trip(h in -1_100_000i64..1_100_000) {
        let hour = Hour(h);
        let c = hour.civil();
        prop_assert_eq!(Hour::from_civil(c), hour);
    }

    /// Weekdays advance cyclically: h+24 is the next weekday.
    #[test]
    fn weekday_advances_daily(h in -500_000i64..500_000) {
        let today = Hour(h * 24).weekday();
        let tomorrow = Hour((h + 1) * 24).weekday();
        prop_assert_eq!((today.index() + 1) % 7, tomorrow.index());
    }

    /// Hour of day matches the civil hour field.
    #[test]
    fn hour_of_day_consistent(h in -1_000_000i64..1_000_000) {
        let hour = Hour(h);
        prop_assert_eq!(hour.hour_of_day(), hour.civil().hour);
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_laws(a in 0i64..5000, la in 0i64..500, b in 0i64..5000, lb in 0i64..500) {
        let x = HourRange::with_len(Hour(a), la);
        let y = HourRange::with_len(Hour(b), lb);
        let xy = x.intersect(&y);
        let yx = y.intersect(&x);
        prop_assert_eq!(xy, yx);
        if let Some(i) = xy {
            prop_assert!(i.start >= x.start && i.end <= x.end);
            prop_assert!(i.start >= y.start && i.end <= y.end);
            prop_assert!(i.len() <= la.min(lb));
        }
    }

    /// The hull contains both operands and is no larger than needed.
    #[test]
    fn hull_laws(a in 0i64..5000, la in 0i64..500, b in 0i64..5000, lb in 0i64..500) {
        let x = HourRange::with_len(Hour(a), la);
        let y = HourRange::with_len(Hour(b), lb);
        let h = x.hull(&y);
        prop_assert!(h.start <= x.start && h.end >= x.end);
        prop_assert!(h.start <= y.start && h.end >= y.end);
        prop_assert!(h.len() >= la.max(lb));
        prop_assert!(h.len() <= la + lb + (a - b).abs());
    }

    /// Iteration yields exactly the contained hours, in order.
    #[test]
    fn iteration_matches_contains(a in -100i64..100, len in 0i64..200) {
        let r = HourRange::with_len(Hour(a), len);
        let hours: Vec<Hour> = r.iter().collect();
        prop_assert_eq!(hours.len() as i64, r.len());
        for w in hours.windows(2) {
            prop_assert_eq!(w[1] - w[0], 1);
        }
        for h in &hours {
            prop_assert!(r.contains(*h));
        }
        prop_assert!(!r.contains(Hour(a - 1)));
        prop_assert!(!r.contains(Hour(a + len)));
    }
}

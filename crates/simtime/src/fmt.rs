//! Formatting helpers matching the paper's table style.

use crate::civil::Month;
use crate::hour::Hour;

/// Formats an hour in the paper's spike-time style: `15 Feb. 2021–10h`.
///
/// This is the format used by Tables 1–3 to identify spikes.
pub fn format_spike_time(h: Hour) -> String {
    let c = h.civil();
    format!(
        "{:02} {}. {}\u{2013}{:02}h",
        c.day,
        Month::from_number(c.month).abbrev(),
        c.year,
        c.hour
    )
}

/// Formats the day of an hour, e.g. `15 Feb 2021`.
pub fn format_day(h: Hour) -> String {
    let c = h.civil();
    format!(
        "{:02} {} {}",
        c.day,
        Month::from_number(c.month).abbrev(),
        c.year
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_style() {
        let h = Hour::from_ymdh(2021, 2, 15, 10);
        assert_eq!(format_spike_time(h), "15 Feb. 2021\u{2013}10h");
        let h = Hour::from_ymdh(2021, 7, 22, 14);
        assert_eq!(format_spike_time(h), "22 Jul. 2021\u{2013}14h");
        assert_eq!(format_day(h), "22 Jul 2021");
    }
}

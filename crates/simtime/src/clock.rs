//! The simulated clock the online daemon runs against.
//!
//! The study replays archived trends data, so "now" is not the host's
//! wall clock but a cursor over simulated hours that a driver (a test, an
//! example, a backfill job) advances explicitly. Keeping the cursor in
//! one shared, atomic place gives every component the same notion of the
//! present: the ingest loop fetches frames whose window has closed,
//! staleness is measured against the cursor, and two same-seed runs that
//! advance the clock identically observe identical schedules.

use crate::Hour;
use std::sync::atomic::{AtomicI64, Ordering};

/// A monotonic, manually-advanced simulated clock with hour resolution.
///
/// Shared via `Arc`; all methods are safe to call from any thread.
/// [`SimClock::advance`] and [`SimClock::set`] never move the cursor
/// backwards — time, even simulated, only runs forward.
#[derive(Debug)]
pub struct SimClock {
    now: AtomicI64,
}

impl SimClock {
    /// A clock whose present is `start`.
    pub fn new(start: Hour) -> Self {
        SimClock {
            now: AtomicI64::new(start.0),
        }
    }

    /// The current simulated hour.
    pub fn now(&self) -> Hour {
        Hour(self.now.load(Ordering::SeqCst))
    }

    /// Advances the clock by `hours` (clamped at zero: the clock never
    /// rewinds) and returns the new present.
    pub fn advance(&self, hours: i64) -> Hour {
        let delta = hours.max(0);
        Hour(self.now.fetch_add(delta, Ordering::SeqCst) + delta)
    }

    /// Moves the clock forward to `to`; a target in the past is ignored.
    /// Returns the (possibly unchanged) present.
    pub fn set(&self, to: Hour) -> Hour {
        let mut current = self.now.load(Ordering::SeqCst);
        while to.0 > current {
            match self
                .now
                .compare_exchange(current, to.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return to,
                Err(actual) => current = actual,
            }
        }
        Hour(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = SimClock::new(Hour(10));
        assert_eq!(c.now(), Hour(10));
        assert_eq!(c.advance(5), Hour(15));
        assert_eq!(c.now(), Hour(15));
    }

    #[test]
    fn never_rewinds() {
        let c = SimClock::new(Hour(100));
        assert_eq!(c.advance(-7), Hour(100));
        assert_eq!(c.set(Hour(50)), Hour(100));
        assert_eq!(c.set(Hour(120)), Hour(120));
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(SimClock::new(Hour(0)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("advancer thread");
        }
        assert_eq!(c.now(), Hour(8000));
    }
}

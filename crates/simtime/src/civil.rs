//! Broken-down civil date/time and calendar enums.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A broken-down proleptic-Gregorian date/time in UTC, at hour resolution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Civil {
    /// Calendar year, e.g. `2021`.
    pub year: i32,
    /// Calendar month, `1..=12`.
    pub month: u8,
    /// Day of month, `1..=31`.
    pub day: u8,
    /// Hour of day, `0..=23`.
    pub hour: u8,
}

impl Civil {
    /// Builds a civil date/time. Panics on out-of-range fields, which is a
    /// programming error rather than a data error in this workspace (all
    /// external timestamps arrive as [`crate::Hour`]s).
    pub fn new(year: i32, month: u8, day: u8, hour: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month}-{day}"
        );
        assert!(hour < 24, "hour out of range: {hour}");
        Civil {
            year,
            month,
            day,
            hour,
        }
    }

    /// Reconstructs a civil date from a count of days since 1970-01-01.
    pub(crate) fn from_days(days: i64, hour: u8) -> Self {
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour,
        }
    }
}

impl fmt::Debug for Civil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:00Z",
            self.year, self.month, self.day, self.hour
        )
    }
}

/// Number of days in `month` of `year`.
pub(crate) fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated month"),
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub(crate) fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for a count of days since 1970-01-01 (Hinnant's algorithm).
pub(crate) fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = z.div_euclid(146097);
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31] — sift-lint: allow(lossy-cast)
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12] — sift-lint: allow(lossy-cast)
    (
        i32::try_from(y + i64::from(m <= 2)).unwrap_or(i32::MAX),
        m,
        d,
    )
}

/// Day of the week, as used by the daily-distribution analysis (Fig. 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Converts an index with `0 = Monday` (ISO ordering).
    pub fn from_index(i: u8) -> Self {
        Self::ALL[usize::from(i % 7)]
    }

    /// Index with `0 = Monday` (ISO ordering).
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for Saturday and Sunday. The paper conjectures the weekend dip
    /// in outages comes from less human error on the service side.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Three-letter English abbreviation, e.g. `"Mon"`.
    pub fn abbrev(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Calendar month, as used by the monthly power-outage analysis (Fig. 6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Month {
    /// January.
    Jan,
    /// February.
    Feb,
    /// March.
    Mar,
    /// April.
    Apr,
    /// May.
    May,
    /// June.
    Jun,
    /// July.
    Jul,
    /// August.
    Aug,
    /// September.
    Sep,
    /// October.
    Oct,
    /// November.
    Nov,
    /// December.
    Dec,
}

impl Month {
    /// All months, January first.
    pub const ALL: [Month; 12] = [
        Month::Jan,
        Month::Feb,
        Month::Mar,
        Month::Apr,
        Month::May,
        Month::Jun,
        Month::Jul,
        Month::Aug,
        Month::Sep,
        Month::Oct,
        Month::Nov,
        Month::Dec,
    ];

    /// Converts a calendar month number (`1..=12`).
    pub fn from_number(n: u8) -> Self {
        assert!((1..=12).contains(&n), "month number out of range: {n}");
        Self::ALL[usize::from(n - 1)]
    }

    /// Calendar month number, `1..=12`.
    pub fn number(self) -> u8 {
        self as u8 + 1 // sift-lint: allow(lossy-cast) — discriminants are 0..=11
    }

    /// Zero-based index, `0..=11`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Three-letter English abbreviation, e.g. `"Feb"`.
    pub fn abbrev(self) -> &'static str {
        match self {
            Month::Jan => "Jan",
            Month::Feb => "Feb",
            Month::Mar => "Mar",
            Month::Apr => "Apr",
            Month::May => "May",
            Month::Jun => "Jun",
            Month::Jul => "Jul",
            Month::Aug => "Aug",
            Month::Sep => "Sep",
            Month::Oct => "Oct",
            Month::Nov => "Nov",
            Month::Dec => "Dec",
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinnant_round_trip_spot_checks() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2020, 1, 1),
            (2020, 12, 31),
            (2021, 2, 15),
            (2021, 10, 4),
            (1999, 12, 31),
            (2400, 2, 29),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "{y}-{m}-{d}");
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2020, 1, 1), 18262);
    }

    #[test]
    fn consecutive_days_differ_by_one() {
        let mut prev = days_from_civil(2019, 12, 1);
        for z in 1..800 {
            let (y, m, d) = civil_from_days(prev + z);
            assert_eq!(days_from_civil(y, m, d), prev + z);
        }
        prev += 1;
        let _ = prev;
    }

    #[test]
    fn leap_rules() {
        assert!(is_leap(2020));
        assert!(!is_leap(2021));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
    }

    #[test]
    fn weekday_enum_round_trip() {
        for (i, wd) in Weekday::ALL.iter().enumerate() {
            assert_eq!(Weekday::from_index(i as u8), *wd);
            assert_eq!(wd.index(), i);
        }
        assert!(Weekday::Sat.is_weekend());
        assert!(!Weekday::Fri.is_weekend());
    }

    #[test]
    fn month_enum_round_trip() {
        for (i, m) in Month::ALL.iter().enumerate() {
            assert_eq!(Month::from_number(i as u8 + 1), *m);
            assert_eq!(m.number(), i as u8 + 1);
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn civil_rejects_bad_day() {
        let _ = Civil::new(2021, 2, 29, 0);
    }
}

//! Half-open hour intervals.

use crate::hour::Hour;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval of hours, `[start, end)`.
///
/// Used for time frames requested from the trends service, for detected
/// spike extents and for ground-truth event windows. The half-open
/// convention makes lengths and adjacency checks exact: a weekly frame is
/// `start..start+168` and contains exactly 168 hourly blocks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HourRange {
    /// First hour in the range (inclusive).
    pub start: Hour,
    /// One past the last hour in the range (exclusive).
    pub end: Hour,
}

impl HourRange {
    /// Builds a range; panics if `end < start` (empty ranges with
    /// `end == start` are allowed).
    pub fn new(start: Hour, end: Hour) -> Self {
        assert!(end >= start, "range end before start: {start:?}..{end:?}");
        HourRange { start, end }
    }

    /// A range starting at `start` and spanning `len` hours.
    pub fn with_len(start: Hour, len: i64) -> Self {
        assert!(len >= 0, "negative range length: {len}");
        HourRange {
            start,
            end: start + len,
        }
    }

    /// Number of hourly blocks in the range.
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// True if the range contains no hours.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// True if `h` lies within `[start, end)`.
    pub fn contains(&self, h: Hour) -> bool {
        h >= self.start && h < self.end
    }

    /// The intersection with `other`, or `None` if they are disjoint.
    pub fn intersect(&self, other: &HourRange) -> Option<HourRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(HourRange { start, end })
        } else {
            None
        }
    }

    /// True if the two ranges share at least one hour.
    pub fn overlaps(&self, other: &HourRange) -> bool {
        self.intersect(other).is_some()
    }

    /// The smallest range covering both `self` and `other`.
    pub fn hull(&self, other: &HourRange) -> HourRange {
        HourRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Iterates over every hour in the range, in order.
    pub fn iter(&self) -> impl Iterator<Item = Hour> + '_ {
        (self.start.0..self.end.0).map(Hour)
    }

    /// Clamps the range to `bounds`, possibly yielding an empty range.
    pub fn clamp_to(&self, bounds: &HourRange) -> HourRange {
        self.intersect(bounds).unwrap_or(HourRange {
            start: bounds.start,
            end: bounds.start,
        })
    }
}

impl fmt::Debug for HourRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> HourRange {
        HourRange::new(Hour(a), Hour(b))
    }

    #[test]
    fn len_and_contains() {
        let w = HourRange::with_len(Hour(10), 168);
        assert_eq!(w.len(), 168);
        assert!(w.contains(Hour(10)));
        assert!(w.contains(Hour(177)));
        assert!(!w.contains(Hour(178)));
        assert!(!w.contains(Hour(9)));
        assert!(!w.is_empty());
        assert!(r(5, 5).is_empty());
    }

    #[test]
    fn intersection_cases() {
        assert_eq!(r(0, 10).intersect(&r(5, 15)), Some(r(5, 10)));
        assert_eq!(r(0, 10).intersect(&r(10, 20)), None); // touching, half-open
        assert_eq!(r(0, 10).intersect(&r(20, 30)), None);
        assert_eq!(r(0, 30).intersect(&r(10, 20)), Some(r(10, 20)));
        assert!(r(0, 10).overlaps(&r(9, 11)));
        assert!(!r(0, 10).overlaps(&r(10, 11)));
    }

    #[test]
    fn hull_covers_both() {
        assert_eq!(r(0, 5).hull(&r(10, 12)), r(0, 12));
        assert_eq!(r(10, 12).hull(&r(0, 5)), r(0, 12));
    }

    #[test]
    fn iteration_matches_len() {
        let w = r(3, 8);
        let hours: Vec<_> = w.iter().collect();
        assert_eq!(hours.len() as i64, w.len());
        assert_eq!(hours[0], Hour(3));
        assert_eq!(*hours.last().unwrap(), Hour(7));
    }

    #[test]
    fn clamp_to_bounds() {
        let bounds = r(0, 100);
        assert_eq!(r(-10, 10).clamp_to(&bounds), r(0, 10));
        assert_eq!(r(90, 200).clamp_to(&bounds), r(90, 100));
        assert!(r(200, 300).clamp_to(&bounds).is_empty());
    }

    #[test]
    #[should_panic(expected = "range end before start")]
    fn rejects_reversed() {
        let _ = r(10, 0);
    }
}

//! Hour-resolution civil-time substrate for the SIFT outage study.
//!
//! The trends aggregation service indexes search interest in *hourly time
//! blocks* (the paper's terminology), so every timestamp in this workspace
//! is an [`Hour`]: a signed number of hours since the study epoch,
//! 2020-01-01 00:00 UTC. This crate provides:
//!
//! * [`Hour`] — the timestamp type, with calendar conversions,
//! * [`Civil`] — a broken-down civil date/time (proleptic Gregorian, UTC),
//! * [`Weekday`] and [`Month`] — calendar enums used by the evaluation
//!   (Fig. 4 groups spikes by weekday, Fig. 6 by month),
//! * [`HourRange`] — half-open hour intervals with the interval algebra the
//!   frame planner and spike detector need,
//! * [`SimClock`] — the shared, manually-advanced simulated clock the
//!   online daemon ingests against,
//! * formatting helpers matching the paper's `15 Feb. 2021–10h` style.
//!
//! The calendar math uses Howard Hinnant's `civil_from_days` /
//! `days_from_civil` algorithms, which are exact over the whole proleptic
//! Gregorian calendar; no external time crate is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod civil;
mod clock;
mod fmt;
mod hour;
mod range;

pub use civil::{Civil, Month, Weekday};
pub use clock::SimClock;
pub use fmt::{format_day, format_spike_time};
pub use hour::{Hour, HOURS_PER_DAY, HOURS_PER_WEEK};
pub use range::HourRange;

/// First hour of the study: 2020-01-01 00:00 UTC (inclusive).
pub const STUDY_START: Hour = Hour(0);

/// One-past-the-last hour of the study: 2022-01-01 00:00 UTC (exclusive).
///
/// 2020 is a leap year, so the study covers 366 + 365 = 731 days.
pub const STUDY_END: Hour = Hour(731 * 24);

/// The full two-year study window, `[STUDY_START, STUDY_END)`.
pub const STUDY_RANGE: HourRange = HourRange {
    start: STUDY_START,
    end: STUDY_END,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_window_is_two_years() {
        assert_eq!(STUDY_RANGE.len(), 731 * 24);
        assert_eq!(STUDY_START.civil(), Civil::new(2020, 1, 1, 0));
        assert_eq!(STUDY_END.civil(), Civil::new(2022, 1, 1, 0));
    }
}

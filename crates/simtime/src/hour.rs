//! The [`Hour`] timestamp: hours since 2020-01-01 00:00 UTC.

use crate::civil::{days_from_civil, Civil, Month, Weekday};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of hourly time blocks in a day.
pub const HOURS_PER_DAY: i64 = 24;

/// Number of hourly time blocks in a weekly time frame (the longest frame
/// the trends service serves at hourly resolution: 168 data points).
pub const HOURS_PER_WEEK: i64 = 7 * HOURS_PER_DAY;

/// Days between 1970-01-01 (the Unix epoch) and 2020-01-01 (the study
/// epoch). `days_from_civil(2020, 1, 1) == 18262`.
const EPOCH_OFFSET_DAYS: i64 = 18262;

/// A timestamp with one-hour resolution, counted from 2020-01-01 00:00 UTC.
///
/// `Hour` is the single time type used across the workspace: ground-truth
/// events, trends-service frames, reconstructed time series and detected
/// spikes all speak in `Hour`s. It is an ordinary signed offset, so hours
/// before the study epoch are representable (negative) and arithmetic is
/// plain integer arithmetic.
///
/// # Examples
///
/// ```
/// use sift_simtime::{Civil, Hour, Weekday};
///
/// let h = Hour::from_civil(Civil::new(2021, 2, 15, 10));
/// assert_eq!(h.civil().year, 2021);
/// assert_eq!(h.weekday(), Weekday::Mon);
/// assert_eq!((h + 24).civil().day, 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Hour(pub i64);

impl Hour {
    /// Builds an `Hour` from a broken-down civil date/time (UTC).
    pub fn from_civil(c: Civil) -> Self {
        let days = days_from_civil(c.year, c.month, c.day) - EPOCH_OFFSET_DAYS;
        Hour(days * HOURS_PER_DAY + i64::from(c.hour))
    }

    /// Convenience constructor: `Hour::from_ymdh(2021, 2, 15, 10)`.
    pub fn from_ymdh(year: i32, month: u8, day: u8, hour: u8) -> Self {
        Self::from_civil(Civil::new(year, month, day, hour))
    }

    /// Converts back to a broken-down civil date/time (UTC).
    pub fn civil(self) -> Civil {
        let days = self.0.div_euclid(HOURS_PER_DAY);
        let hour = self.0.rem_euclid(HOURS_PER_DAY) as u8; // [0, 23] — sift-lint: allow(lossy-cast)
        Civil::from_days(days + EPOCH_OFFSET_DAYS, hour)
    }

    /// Day of the week of this hour (UTC).
    pub fn weekday(self) -> Weekday {
        let days = self.0.div_euclid(HOURS_PER_DAY) + EPOCH_OFFSET_DAYS;
        // 1970-01-01 was a Thursday (ISO index 3 with Monday = 0).
        Weekday::from_index(((days + 3).rem_euclid(7)) as u8) // [0, 6] — sift-lint: allow(lossy-cast)
    }

    /// Calendar month of this hour (UTC).
    pub fn month(self) -> Month {
        Month::from_number(self.civil().month)
    }

    /// Calendar year of this hour (UTC).
    pub fn year(self) -> i32 {
        self.civil().year
    }

    /// Hour of day, `0..=23` (UTC).
    pub fn hour_of_day(self) -> u8 {
        self.0.rem_euclid(HOURS_PER_DAY) as u8 // [0, 23] — sift-lint: allow(lossy-cast)
    }

    /// The first hour (00:00) of the UTC day containing `self`.
    pub fn day_start(self) -> Hour {
        Hour(self.0.div_euclid(HOURS_PER_DAY) * HOURS_PER_DAY)
    }

    /// Saturating conversion to `usize` for indexing a series that starts
    /// at the study epoch. Negative hours clamp to 0.
    pub fn index_from_epoch(self) -> usize {
        self.0.max(0) as usize
    }

    /// Applies a whole-hour timezone offset, yielding the *local* wall
    /// clock `Hour` for a region. Used by the area analysis to reason about
    /// lagged spikes in leisure-application outages (§4.2).
    pub fn to_local(self, utc_offset_hours: i32) -> Hour {
        Hour(self.0 + i64::from(utc_offset_hours))
    }
}

impl fmt::Debug for Hour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        write!(
            f,
            "Hour({} = {:04}-{:02}-{:02}T{:02}:00Z)",
            self.0, c.year, c.month, c.day, c.hour
        )
    }
}

impl fmt::Display for Hour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:00",
            c.year, c.month, c.day, c.hour
        )
    }
}

impl Add<i64> for Hour {
    type Output = Hour;
    fn add(self, rhs: i64) -> Hour {
        Hour(self.0 + rhs)
    }
}

impl AddAssign<i64> for Hour {
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for Hour {
    type Output = Hour;
    fn sub(self, rhs: i64) -> Hour {
        Hour(self.0 - rhs)
    }
}

impl SubAssign<i64> for Hour {
    fn sub_assign(&mut self, rhs: i64) {
        self.0 -= rhs;
    }
}

impl Sub<Hour> for Hour {
    type Output = i64;
    fn sub(self, rhs: Hour) -> i64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2020() {
        assert_eq!(Hour(0).civil(), Civil::new(2020, 1, 1, 0));
        assert_eq!(Hour::from_ymdh(2020, 1, 1, 0), Hour(0));
    }

    #[test]
    fn leap_day_2020_exists() {
        let feb29 = Hour::from_ymdh(2020, 2, 29, 12);
        assert_eq!(feb29.civil(), Civil::new(2020, 2, 29, 12));
        let mar1 = feb29 + 12;
        assert_eq!(mar1.civil(), Civil::new(2020, 3, 1, 0));
    }

    #[test]
    fn known_weekdays() {
        // 2020-01-01 was a Wednesday.
        assert_eq!(Hour::from_ymdh(2020, 1, 1, 0).weekday(), Weekday::Wed);
        // The Texas winter-storm spike: 15 Feb 2021 was a Monday.
        assert_eq!(Hour::from_ymdh(2021, 2, 15, 10).weekday(), Weekday::Mon);
        // The Facebook outage: 4 Oct 2021 was a Monday.
        assert_eq!(Hour::from_ymdh(2021, 10, 4, 15).weekday(), Weekday::Mon);
        // 17 Jul 2020 (the Fig. 2 walkthrough day) was a Friday.
        assert_eq!(Hour::from_ymdh(2020, 7, 17, 18).weekday(), Weekday::Fri);
    }

    #[test]
    fn arithmetic_and_difference() {
        let a = Hour::from_ymdh(2020, 12, 31, 23);
        let b = a + 1;
        assert_eq!(b.civil(), Civil::new(2021, 1, 1, 0));
        assert_eq!(b - a, 1);
        let mut c = a;
        c += 25;
        assert_eq!(c.civil(), Civil::new(2021, 1, 2, 0));
        c -= 25;
        assert_eq!(c, a);
    }

    #[test]
    fn negative_hours_are_before_epoch() {
        let h = Hour(-1);
        assert_eq!(h.civil(), Civil::new(2019, 12, 31, 23));
        assert_eq!(h.index_from_epoch(), 0);
        assert_eq!(h.hour_of_day(), 23);
    }

    #[test]
    fn local_offsets() {
        // 04 Oct 2021 15:00 UTC is 08:00 in California (UTC-7, DST).
        let utc = Hour::from_ymdh(2021, 10, 4, 15);
        assert_eq!(utc.to_local(-7).civil().hour, 8);
    }

    #[test]
    fn day_start_truncates() {
        let h = Hour::from_ymdh(2021, 6, 8, 9);
        assert_eq!(h.day_start().civil(), Civil::new(2021, 6, 8, 0));
        assert_eq!(Hour(-5).day_start().civil(), Civil::new(2019, 12, 31, 0));
    }
}

//! Property tests: histogram quantile estimates stay within one bucket
//! of the exact order statistics, and instruments stay exact under
//! multi-threaded hammering.

use proptest::prelude::*;
use sift_obs::{Counter, Histogram, HistogramSpec};

/// The bucket (by index, `bounds.len()` = overflow) a value falls into,
/// mirroring the `le` semantics of the histogram itself.
fn bucket_of(bounds: &[f64], v: f64) -> usize {
    bounds.partition_point(|b| v > *b)
}

/// The exact `q`-quantile of `values` by sorted order statistic, using the
/// same rank convention as `HistogramState::quantile`.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram estimate for `q` is within one bucket boundary of
/// the exact quantile: both land in the same bucket, except that exact
/// values past the last bound are reported as the last bound.
fn assert_within_one_bucket(
    h: &Histogram,
    bounds: &[f64],
    values: &[f64],
    q: f64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let exact = exact_quantile(values, q);
    let est = h.quantile(q);
    if bucket_of(bounds, exact) == bounds.len() {
        // Overflow bucket is unbounded: the estimate clamps to the last
        // bound, which is below the exact value by construction.
        let last = *bounds.last().expect("non-empty bounds");
        prop_assert_eq!(est, last);
        prop_assert!(exact >= last);
    } else {
        prop_assert_eq!(
            bucket_of(bounds, est),
            bucket_of(bounds, exact),
            "q={} est={} exact={}",
            q,
            est,
            exact
        );
    }
    Ok(())
}

proptest! {
    /// p50 and p99 estimates of the default duration layout land in the
    /// same bucket as the exact sorted-order quantiles.
    #[test]
    fn quantile_estimate_within_one_bucket_duration_layout(
        values in proptest::collection::vec(0.000001f64..80.0, 1..300),
    ) {
        let spec = HistogramSpec::duration_seconds();
        let h = Histogram::with_spec(&spec);
        for v in &values {
            h.observe(*v);
        }
        assert_within_one_bucket(&h, spec.bounds(), &values, 0.5)?;
        assert_within_one_bucket(&h, spec.bounds(), &values, 0.99)?;
    }

    /// The same bound holds for arbitrary explicit layouts, including
    /// observations past the last bucket.
    #[test]
    fn quantile_estimate_within_one_bucket_explicit_layout(
        start in 0.001f64..1.0,
        factor in 1.5f64..4.0,
        count in 3usize..12,
        values in proptest::collection::vec(0.0001f64..1000.0, 1..200),
    ) {
        let spec = HistogramSpec::log(start, factor, count);
        let h = Histogram::with_spec(&spec);
        for v in &values {
            h.observe(*v);
        }
        assert_within_one_bucket(&h, spec.bounds(), &values, 0.5)?;
        assert_within_one_bucket(&h, spec.bounds(), &values, 0.99)?;
    }

    /// The estimated quantile is monotone in `q` — sanity for any layout.
    #[test]
    fn quantile_estimate_is_monotone(
        values in proptest::collection::vec(0.000001f64..80.0, 1..200),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        prop_assume!(lo <= hi);
        let h = Histogram::with_spec(&HistogramSpec::duration_seconds());
        for v in &values {
            h.observe(*v);
        }
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }
}

/// Eight threads hammering shared handles: every increment is accounted,
/// with no locking on the hot path to lose one.
#[test]
fn hammered_counter_and_histogram_totals_are_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 25_000;

    let counter = Counter::new();
    let histogram = Histogram::with_spec(&HistogramSpec::explicit(vec![1.0, 2.0]));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                    counter.add(2);
                    // 1.5 is exactly representable, so the CAS-accumulated
                    // sum must come out exact, not merely close.
                    histogram.observe(1.5);
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), 3 * total);
    let state = histogram.state();
    assert_eq!(state.count, total);
    assert_eq!(state.buckets, vec![0, total, 0]);
    assert_eq!(state.sum, 1.5 * total as f64);
}

//! Lightweight span timers.
//!
//! A span measures one stage of work. Entering pushes the span onto a
//! thread-local stack (so events and nested spans know their context);
//! dropping the guard records the elapsed time into the global histogram
//! `sift_span_seconds{span="<name>"}`.

use crate::metrics::HistogramSpec;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// The histogram every span records into, labelled by span name.
pub const SPAN_METRIC: &str = "sift_span_seconds";

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An in-progress span; dropping it records the duration. Create with
/// [`crate::span`].
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
}

impl Span {
    pub(crate) fn enter(name: &str) -> Span {
        STACK.with(|s| s.borrow_mut().push(name.to_owned()));
        Span {
            name: name.to_owned(),
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time since the span was entered.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop LIFO in correct code; tolerate out-of-order
            // drops by removing the nearest matching frame.
            if let Some(pos) = stack.iter().rposition(|n| n == &self.name) {
                stack.remove(pos);
            }
        });
        crate::global()
            .histogram(
                SPAN_METRIC,
                &[("span", &self.name)],
                &HistogramSpec::duration_seconds(),
            )
            .observe_duration(elapsed);
    }
}

/// The `/`-joined path of spans currently open on this thread (empty
/// string outside any span).
pub fn current_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let before = crate::global()
            .histogram_states(SPAN_METRIC)
            .into_iter()
            .find(|(labels, _)| labels == &[("span".to_owned(), "outer-test".to_owned())])
            .map(|(_, s)| s.count)
            .unwrap_or(0);
        {
            let _outer = crate::span("outer-test");
            assert_eq!(current_path(), "outer-test");
            {
                let _inner = crate::span("inner-test");
                assert_eq!(current_path(), "outer-test/inner-test");
            }
            assert_eq!(current_path(), "outer-test");
        }
        assert_eq!(current_path(), "");
        let after = crate::global()
            .histogram_states(SPAN_METRIC)
            .into_iter()
            .find(|(labels, _)| labels == &[("span".to_owned(), "outer-test".to_owned())])
            .map(|(_, s)| s.count)
            .unwrap_or(0);
        assert_eq!(after, before + 1);
    }

    #[test]
    fn elapsed_is_monotonic() {
        let span = Span::enter("elapsed-test");
        let a = span.elapsed();
        let b = span.elapsed();
        assert!(b >= a);
    }
}

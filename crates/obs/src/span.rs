//! Trace-aware span timers.
//!
//! A span measures one stage of work *and* places it in a causal trace
//! tree: every span carries a trace id, its own span id and its parent's
//! id. Entering pushes the span onto a thread-local stack (so events,
//! nested spans and attributed counters know their context); dropping
//! the guard records the elapsed time into the global histogram
//! `sift_span_seconds{span="<name>"}` and deposits a
//! [`crate::trace::SpanRecord`] into the trace store.
//!
//! Parentage follows the thread-local stack by default. Across
//! boundaries where that stack is severed — worker threads, HTTP — the
//! caller captures [`SpanContext::current`] and reopens with
//! [`crate::span_in`] (or ships the context in the `X-Sift-Trace`
//! header via [`SpanContext::to_header`]). Counters such as bytes
//! fetched or frames stitched attach to the innermost span via
//! [`attr_add`] / [`attr_set`].

use crate::metrics::HistogramSpec;
use crate::trace::{self, SpanRecord};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The histogram every span records into, labelled by span name.
pub const SPAN_METRIC: &str = "sift_span_seconds";

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A span's position in its trace: enough to parent further spans onto
/// it, locally ([`crate::span_in`]) or across a process boundary
/// ([`SpanContext::to_header`] / [`SpanContext::from_header`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id; children set it as their parent id.
    pub span_id: u64,
}

impl SpanContext {
    /// The context of the innermost span open on this thread.
    pub fn current() -> Option<SpanContext> {
        STACK.with(|s| {
            s.borrow().last().map(|f| SpanContext {
                trace_id: f.trace_id,
                span_id: f.span_id,
            })
        })
    }

    /// Wire encoding for the `X-Sift-Trace` header:
    /// `<trace_id hex16>-<span_id hex16>`.
    pub fn to_header(self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.span_id)
    }

    /// Parses the [`SpanContext::to_header`] encoding; `None` on any
    /// malformed or zero-id value (a bad header must never sever a
    /// request, only detach its trace).
    pub fn from_header(value: &str) -> Option<SpanContext> {
        let (t, s) = value.trim().split_once('-')?;
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(s, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(SpanContext { trace_id, span_id })
    }
}

struct Frame {
    name: String,
    trace_id: u64,
    span_id: u64,
    args: Vec<(&'static str, u64)>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An in-progress span; dropping it records the duration and its trace
/// record. Create with [`crate::span`] (child of the thread's innermost
/// span, or a fresh trace root), [`crate::span_in`] (child of an
/// explicit context) or [`crate::span_root`] (always a fresh root).
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
    start_us: u64,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
}

impl Span {
    /// Opens a span as a child of this thread's innermost open span (a
    /// fresh trace root when the stack is empty). Prefer the crate-level
    /// [`crate::span`] / [`crate::span_in`] helpers: strict-path crates
    /// (`core`, `fetcher`) are lint-required (`trace-span`) to use the
    /// context-carrying API so worker threads cannot silently sever
    /// parentage.
    pub fn enter(name: &str) -> Span {
        Span::open(name, SpanContext::current())
    }

    pub(crate) fn open(name: &str, parent: Option<SpanContext>) -> Span {
        let span_id = next_id();
        let (trace_id, parent_id) = match parent {
            Some(p) => (p.trace_id, Some(p.span_id)),
            None => (next_id(), None),
        };
        trace::span_opened(trace_id);
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                name: name.to_owned(),
                trace_id,
                span_id,
                args: Vec::new(),
            })
        });
        Span {
            name: name.to_owned(),
            start: Instant::now(),
            start_us: trace::epoch_micros(),
            trace_id,
            span_id,
            parent_id,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time since the span was entered.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The span's trace position, for parenting further spans onto it.
    pub fn context(&self) -> SpanContext {
        SpanContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        // Guards drop LIFO in correct code; tolerate out-of-order drops
        // by removing the exact frame wherever it sits.
        let args = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            match stack.iter().rposition(|f| f.span_id == self.span_id) {
                Some(pos) => stack.remove(pos).args,
                None => Vec::new(),
            }
        });
        crate::global()
            .histogram(
                SPAN_METRIC,
                &[("span", &self.name)],
                &HistogramSpec::duration_seconds(),
            )
            .observe_duration(elapsed);
        trace::span_closed(SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            tid: trace::thread_ordinal(),
            args,
        });
    }
}

/// The `/`-joined path of spans currently open on this thread (empty
/// string outside any span).
pub fn current_path() -> String {
    STACK.with(|s| {
        s.borrow()
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>()
            .join("/")
    })
}

/// Adds `n` to the counter `key` on this thread's innermost open span
/// (no-op outside any span). Keys are static, low-cardinality names —
/// `"bytes"`, `"frames_stitched"`, `"retries"` — surfaced in the
/// exported trace's `args`.
pub fn attr_add(key: &'static str, n: u64) {
    STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().last_mut() {
            match frame.args.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = slot.1.saturating_add(n),
                None => frame.args.push((key, n)),
            }
        }
    });
}

/// Sets the counter `key` on this thread's innermost open span to `v`
/// (no-op outside any span) — for values that are assignments rather
/// than accumulations, such as an attempt number.
pub fn attr_set(key: &'static str, v: u64) {
    STACK.with(|s| {
        if let Some(frame) = s.borrow_mut().last_mut() {
            match frame.args.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = v,
                None => frame.args.push((key, v)),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let before = crate::global()
            .histogram_states(SPAN_METRIC)
            .into_iter()
            .find(|(labels, _)| labels == &[("span".to_owned(), "outer-test".to_owned())])
            .map(|(_, s)| s.count)
            .unwrap_or(0);
        {
            let _outer = crate::span("outer-test");
            assert_eq!(current_path(), "outer-test");
            {
                let _inner = crate::span("inner-test");
                assert_eq!(current_path(), "outer-test/inner-test");
            }
            assert_eq!(current_path(), "outer-test");
        }
        assert_eq!(current_path(), "");
        let after = crate::global()
            .histogram_states(SPAN_METRIC)
            .into_iter()
            .find(|(labels, _)| labels == &[("span".to_owned(), "outer-test".to_owned())])
            .map(|(_, s)| s.count)
            .unwrap_or(0);
        assert_eq!(after, before + 1);
    }

    #[test]
    fn elapsed_is_monotonic() {
        let span = Span::enter("elapsed-test");
        let a = span.elapsed();
        let b = span.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn nested_spans_share_a_trace_and_chain_parents() {
        let root = crate::span_root("trace-root-test");
        let root_ctx = root.context();
        let child = crate::span("trace-child-test");
        assert_eq!(child.context().trace_id, root_ctx.trace_id);
        drop(child);
        drop(root);
        let trace = crate::trace::completed(root_ctx.trace_id).expect("trace completed");
        assert_eq!(trace.spans.len(), 2);
        let child_rec = trace
            .spans
            .iter()
            .find(|s| s.name == "trace-child-test")
            .expect("child recorded");
        assert_eq!(child_rec.parent_id, Some(root_ctx.span_id));
        assert!(trace.orphans().is_empty());
    }

    #[test]
    fn span_in_adopts_context_across_threads() {
        let root = crate::span_root("handoff-root-test");
        let ctx = root.context();
        std::thread::scope(|s| {
            s.spawn(move || {
                let worker = crate::span_in(ctx, "handoff-worker-test");
                assert_eq!(worker.context().trace_id, ctx.trace_id);
                assert_eq!(current_path(), "handoff-worker-test");
            });
        });
        drop(root);
        let trace = crate::trace::completed(ctx.trace_id).expect("trace completed");
        let worker = trace
            .spans
            .iter()
            .find(|s| s.name == "handoff-worker-test")
            .expect("worker span joined the trace");
        assert_eq!(worker.parent_id, Some(ctx.span_id));
        assert!(trace.orphans().is_empty());
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let ctx = SpanContext {
            trace_id: 0xdead_beef,
            span_id: 42,
        };
        assert_eq!(SpanContext::from_header(&ctx.to_header()), Some(ctx));
        assert_eq!(SpanContext::from_header(""), None);
        assert_eq!(SpanContext::from_header("zz-11"), None);
        assert_eq!(SpanContext::from_header("0-0"), None);
        assert_eq!(SpanContext::from_header("123"), None);
    }

    #[test]
    fn attrs_attach_to_innermost_span() {
        let root = crate::span_root("attr-root-test");
        let ctx = root.context();
        {
            let _inner = crate::span("attr-inner-test");
            attr_add("bytes", 10);
            attr_add("bytes", 5);
            attr_set("attempt", 3);
        }
        attr_add("frames_stitched", 2);
        drop(root);
        let trace = crate::trace::completed(ctx.trace_id).expect("trace completed");
        let inner = trace
            .spans
            .iter()
            .find(|s| s.name == "attr-inner-test")
            .expect("inner");
        assert_eq!(inner.arg("bytes"), Some(15));
        assert_eq!(inner.arg("attempt"), Some(3));
        let root_rec = trace
            .spans
            .iter()
            .find(|s| s.name == "attr-root-test")
            .expect("root");
        assert_eq!(root_rec.arg("frames_stitched"), Some(2));
    }
}

//! The metric registry and Prometheus text exposition.
//!
//! Handle resolution (`counter`/`gauge`/`histogram`) takes a read lock,
//! and a write lock on first registration of a series; instrumented code
//! resolves handles once (or per thread, see [`crate::counter`]) and the
//! increments themselves never touch the registry again.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSpec, HistogramState};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default bound on the number of series (distinct label sets) one
/// metric name may register. Per-identity and per-endpoint labels grow
/// with traffic; past the cap new label sets get detached instruments
/// and are tallied in `sift_obs_labels_dropped_total{metric=…}`.
pub const DEFAULT_SERIES_CAP_PER_NAME: usize = 512;

/// The overflow counter label-capped registrations are tallied in.
pub const LABELS_DROPPED_METRIC: &str = "sift_obs_labels_dropped_total";

/// A metric series identifier: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels for canonical identity.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A collection of metric series, rendered together as Prometheus text.
///
/// Cardinality is bounded: each metric name may register at most
/// [`DEFAULT_SERIES_CAP_PER_NAME`] label sets (configurable via
/// [`Registry::set_series_cap`]). Registrations past the cap return a
/// working but *detached* instrument — callers never crash, the series
/// just stays out of the exposition — and increment
/// `sift_obs_labels_dropped_total{metric=…}`.
#[derive(Debug)]
pub struct Registry {
    // BTreeMap keeps exposition deterministic and groups a metric's series
    // (same name, different labels) together.
    series: RwLock<BTreeMap<MetricKey, Instrument>>,
    per_name_cap: AtomicUsize,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            series: RwLock::new(BTreeMap::new()),
            per_name_cap: AtomicUsize::new(DEFAULT_SERIES_CAP_PER_NAME),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Sets the per-metric-name series cap (`0` disables the bound).
    pub fn set_series_cap(&self, cap: usize) {
        self.per_name_cap.store(cap, Ordering::Relaxed);
    }

    /// True when registering `key` must be refused: its metric name is
    /// at the cap and `key` is not among the existing series. Tallies
    /// the refusal in `sift_obs_labels_dropped_total{metric=…}`
    /// (inserted directly, itself exempt from the cap).
    fn over_cap(&self, series: &mut BTreeMap<MetricKey, Instrument>, key: &MetricKey) -> bool {
        let cap = self.per_name_cap.load(Ordering::Relaxed);
        if cap == 0 || series.contains_key(key) {
            return false;
        }
        let count = series
            .range(MetricKey::new(key.name(), &[])..)
            .take_while(|(k, _)| k.name() == key.name())
            .count();
        if count < cap {
            return false;
        }
        let dropped = MetricKey::new(LABELS_DROPPED_METRIC, &[("metric", key.name())]);
        if let Instrument::Counter(c) = series
            .entry(dropped)
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            c.inc();
        }
        true
    }

    /// The counter for `name` + `labels`, registering it on first use.
    ///
    /// Panics if the series is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        if let Some(i) = self.series.read().get(&key) {
            return match i {
                Instrument::Counter(c) => c.clone(),
                other => panic!("{name} already registered as a {}", other.kind()), // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug
            };
        }
        let mut series = self.series.write();
        if self.over_cap(&mut series, &key) {
            return Counter::new();
        }
        match series
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.clone(),
            other => panic!("{name} already registered as a {}", other.kind()), // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug
        }
    }

    /// The gauge for `name` + `labels`, registering it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        if let Some(i) = self.series.read().get(&key) {
            return match i {
                Instrument::Gauge(g) => g.clone(),
                other => panic!("{name} already registered as a {}", other.kind()), // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug
            };
        }
        let mut series = self.series.write();
        if self.over_cap(&mut series, &key) {
            return Gauge::new();
        }
        match series
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.clone(),
            other => panic!("{name} already registered as a {}", other.kind()), // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug
        }
    }

    /// The histogram for `name` + `labels`, registering it with `spec` on
    /// first use (later calls keep the original layout).
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        spec: &HistogramSpec,
    ) -> Histogram {
        let key = MetricKey::new(name, labels);
        if let Some(i) = self.series.read().get(&key) {
            return match i {
                Instrument::Histogram(h) => h.clone(),
                other => panic!("{name} already registered as a {}", other.kind()), // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug
            };
        }
        let mut series = self.series.write();
        if self.over_cap(&mut series, &key) {
            return Histogram::with_spec(spec);
        }
        match series
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Histogram::with_spec(spec)))
        {
            Instrument::Histogram(h) => h.clone(),
            other => panic!("{name} already registered as a {}", other.kind()), // sift-lint: allow(no-panic) — documented: kind mismatch is a caller bug
        }
    }

    /// Point-in-time states of every histogram series named `name`,
    /// keyed by label pairs.
    pub fn histogram_states(&self, name: &str) -> Vec<(Vec<(String, String)>, HistogramState)> {
        self.series
            .read()
            .iter()
            .filter(|(k, _)| k.name() == name)
            .filter_map(|(k, i)| match i {
                Instrument::Histogram(h) => Some((k.labels().to_vec(), h.state())),
                _ => None,
            })
            .collect()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.read().len()
    }

    /// True when no series are registered.
    pub fn is_empty(&self) -> bool {
        self.series.read().is_empty()
    }

    /// Renders every series in the Prometheus text exposition format
    /// (`# TYPE` comments, `_bucket{le=…}`/`_sum`/`_count` for
    /// histograms), deterministically ordered.
    pub fn render_prometheus(&self) -> String {
        let series = self.series.read();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, instrument) in series.iter() {
            if last_name != Some(key.name()) {
                let _ = writeln!(out, "# TYPE {} {}", key.name(), instrument.kind());
                last_name = Some(key.name());
            }
            match instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name(),
                        label_block(key.labels(), None),
                        c.get()
                    );
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name(),
                        label_block(key.labels(), None),
                        g.get()
                    );
                }
                Instrument::Histogram(h) => {
                    let state = h.state();
                    let mut cumulative = 0u64;
                    for (bound, n) in state.bounds.iter().zip(&state.buckets) {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name(),
                            label_block(key.labels(), Some(&format_bound(*bound))),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name(),
                        label_block(key.labels(), Some("+Inf")),
                        state.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name(),
                        label_block(key.labels(), None),
                        state.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name(),
                        label_block(key.labels(), None),
                        state.count
                    );
                }
            }
        }
        out
    }
}

/// Renders `{k="v",…}` (empty string when no labels and no `le`).
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_bound(b: f64) -> String {
    // Shortest-roundtrip Display keeps the exposition stable and readable.
    format!("{b}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_instrument() {
        let r = Registry::new();
        let a = r.counter("reqs_total", &[("route", "/x")]);
        // Label order must not matter.
        let b = r.counter("reqs_total", &[("route", "/x")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("m", &[]);
        let _ = r.gauge("m", &[]);
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter("a_total", &[("route", "/f"), ("status", "200")])
            .add(3);
        r.gauge("b_active", &[]).set(-2);
        let h = r.histogram("c_seconds", &[], &HistogramSpec::explicit(vec![0.5, 1.0]));
        h.observe(0.25);
        h.observe(0.75);
        h.observe(9.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE a_total counter"), "{text}");
        assert!(
            text.contains("a_total{route=\"/f\",status=\"200\"} 3"),
            "{text}"
        );
        assert!(text.contains("b_active -2"), "{text}");
        assert!(text.contains("c_seconds_bucket{le=\"0.5\"} 1"), "{text}");
        assert!(text.contains("c_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("c_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("c_seconds_sum 10"), "{text}");
        assert!(text.contains("c_seconds_count 3"), "{text}");
    }

    #[test]
    fn label_values_escaped() {
        let r = Registry::new();
        r.counter("esc_total", &[("q", "say \"hi\"\\n")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"q="say \"hi\"\\n""#), "{text}");
    }

    #[test]
    fn series_cap_bounds_cardinality_and_counts_drops() {
        let r = Registry::new();
        r.set_series_cap(2);
        let a = r.counter("capped_total", &[("id", "1")]);
        let b = r.counter("capped_total", &[("id", "2")]);
        // Third label set: refused, detached, tallied.
        let c = r.counter("capped_total", &[("id", "3")]);
        a.inc();
        b.inc();
        c.add(7); // must not crash, must not render
                  // Existing series resolve normally even at the cap.
        let a2 = r.counter("capped_total", &[("id", "1")]);
        a2.inc();
        assert_eq!(a.get(), 2);
        let text = r.render_prometheus();
        assert!(text.contains("capped_total{id=\"1\"} 2"), "{text}");
        assert!(text.contains("capped_total{id=\"2\"} 1"), "{text}");
        assert!(!text.contains("id=\"3\""), "{text}");
        assert!(
            text.contains("sift_obs_labels_dropped_total{metric=\"capped_total\"} 1"),
            "{text}"
        );
        // Repeated refusals keep counting.
        let _ = r.counter("capped_total", &[("id", "4")]);
        assert_eq!(
            r.counter(LABELS_DROPPED_METRIC, &[("metric", "capped_total")])
                .get(),
            2
        );
    }

    #[test]
    fn series_cap_applies_to_gauges_and_histograms() {
        let r = Registry::new();
        r.set_series_cap(1);
        let _ = r.gauge("g_active", &[("e", "a")]);
        let detached = r.gauge("g_active", &[("e", "b")]);
        detached.set(9);
        let spec = HistogramSpec::explicit(vec![1.0]);
        let _ = r.histogram("h_seconds", &[("e", "a")], &spec);
        let dropped_h = r.histogram("h_seconds", &[("e", "b")], &spec);
        dropped_h.observe(0.5);
        let text = r.render_prometheus();
        assert!(!text.contains("e=\"b\""), "{text}");
        assert!(
            text.contains("sift_obs_labels_dropped_total{metric=\"g_active\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sift_obs_labels_dropped_total{metric=\"h_seconds\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn zero_cap_disables_the_bound() {
        let r = Registry::new();
        r.set_series_cap(0);
        for i in 0..600 {
            r.counter("unbounded_total", &[("i", &i.to_string())]).inc();
        }
        assert_eq!(r.len(), 600);
    }

    #[test]
    fn histogram_states_filters_by_name() {
        let r = Registry::new();
        let spec = HistogramSpec::explicit(vec![1.0]);
        r.histogram("spans", &[("span", "a")], &spec).observe(0.5);
        r.histogram("spans", &[("span", "b")], &spec).observe(2.0);
        r.counter("other_total", &[]).inc();
        let states = r.histogram_states("spans");
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].0, vec![("span".to_owned(), "a".to_owned())]);
        assert_eq!(states[0].1.count, 1);
    }
}

//! Trace assembly, export and critical-path analysis.
//!
//! Spans ([`crate::span`]) carry a trace id, a span id and a parent id;
//! every closed span deposits a [`SpanRecord`] here, grouped by trace id.
//! A trace is *completed* when its last open span closes (the open-span
//! count reaches zero), which tolerates out-of-order closes across
//! threads — a server-side span racing the client's root close still
//! lands in the same tree. Completed traces sit in a bounded ring,
//! served as JSON by `GET /trace/recent` and exportable as
//! Chrome trace-event JSON ([`chrome_trace_json`], Perfetto-loadable).
//!
//! [`critical_path`] walks a finished tree backwards from the root —
//! always descending into the child that finished last — and attributes
//! every microsecond of the root's duration to exactly one span's
//! self-time, so per-stage shares sum to the end-to-end wall time.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Per-trace cap on recorded spans; beyond it spans still time and hit
/// `sift_span_seconds`, but their records are dropped and counted in
/// `sift_obs_trace_spans_dropped_total`.
pub const TRACE_SPAN_CAP: usize = 100_000;

/// How many completed traces the recent ring keeps.
pub const RECENT_TRACE_CAP: usize = 32;

/// One closed span inside a trace tree.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id, unique within the process.
    pub span_id: u64,
    /// Parent span id; `None` marks a trace root.
    pub parent_id: Option<u64>,
    /// Span name (low-cardinality; per-item detail goes in `args`).
    pub name: String,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Ordinal of the OS thread the span ran on.
    pub tid: u64,
    /// Counters attributed to the span while it was the innermost one
    /// (bytes fetched, frames stitched, retries, attempt numbers, …).
    pub args: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// End offset in microseconds since the trace epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// The value of one attributed counter, if present.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// A completed trace: every closed span that shares one trace id,
/// sorted by start time.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The shared trace id.
    pub trace_id: u64,
    /// All spans of the tree, sorted by `(start_us, span_id)`.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The root span (no parent). With several parentless spans —
    /// a malformed tree — the longest one wins.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent_id.is_none())
            .max_by_key(|s| s.dur_us)
    }

    /// Spans whose parent id is absent from the tree *and* that are not
    /// roots: severed parentage that the propagation layer should have
    /// prevented.
    pub fn orphans(&self) -> Vec<&SpanRecord> {
        let ids: HashMap<u64, ()> = self.spans.iter().map(|s| (s.span_id, ())).collect();
        self.spans
            .iter()
            .filter(|s| s.parent_id.is_some_and(|p| !ids.contains_key(&p)))
            .collect()
    }
}

struct ActiveTrace {
    open: usize,
    dropped: u64,
    spans: Vec<SpanRecord>,
}

struct Store {
    active: Mutex<HashMap<u64, ActiveTrace>>,
    recent: Mutex<VecDeque<Trace>>,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        active: Mutex::new(HashMap::new()),
        recent: Mutex::new(VecDeque::new()),
    })
}

/// Microseconds since the process-wide trace epoch (first use). All
/// spans in a process share this timebase, so client and server spans
/// of an in-process round-trip align on one Perfetto timeline.
pub fn epoch_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Stable small ordinal for the current OS thread (trace `tid` field).
pub(crate) fn thread_ordinal() -> u64 {
    TID.with(|t| *t)
}

/// Bumps the open-span count of `trace_id` (called on span enter).
pub(crate) fn span_opened(trace_id: u64) {
    let mut active = store().active.lock();
    active
        .entry(trace_id)
        .or_insert_with(|| ActiveTrace {
            open: 0,
            dropped: 0,
            spans: Vec::new(),
        })
        .open += 1;
}

/// Records a closed span; completes the trace when it was the last open
/// span.
pub(crate) fn span_closed(rec: SpanRecord) {
    let trace_id = rec.trace_id;
    let finished = {
        let mut active = store().active.lock();
        let t = active.entry(trace_id).or_insert_with(|| ActiveTrace {
            open: 1,
            dropped: 0,
            spans: Vec::new(),
        });
        t.open = t.open.saturating_sub(1);
        if t.spans.len() < TRACE_SPAN_CAP {
            t.spans.push(rec);
        } else {
            t.dropped += 1;
        }
        if t.open == 0 {
            active.remove(&trace_id)
        } else {
            None
        }
    };
    let Some(done) = finished else { return };
    if done.dropped > 0 {
        crate::counter("sift_obs_trace_spans_dropped_total", &[]).add(done.dropped);
    }
    let mut spans = done.spans;
    let mut recent = store().recent.lock();
    if let Some(existing) = recent.iter_mut().find(|t| t.trace_id == trace_id) {
        // A late span re-opened an already-completed trace (e.g. a
        // server worker closing after the client's root): merge rather
        // than duplicate the tree.
        existing.spans.append(&mut spans);
        existing.spans.sort_by_key(|s| (s.start_us, s.span_id));
        return;
    }
    spans.sort_by_key(|s| (s.start_us, s.span_id));
    recent.push_back(Trace { trace_id, spans });
    while recent.len() > RECENT_TRACE_CAP {
        recent.pop_front();
    }
}

/// The completed traces currently in the ring, oldest first.
pub fn recent_traces() -> Vec<Trace> {
    store().recent.lock().iter().cloned().collect()
}

/// A completed trace by id, if still in the ring.
pub fn completed(trace_id: u64) -> Option<Trace> {
    store()
        .recent
        .lock()
        .iter()
        .find(|t| t.trace_id == trace_id)
        .cloned()
}

/// Waits (polling) until `trace_id` completes — spans on other threads
/// may close a beat after the root guard drops — up to `timeout`.
pub fn wait_completed(trace_id: u64, timeout: Duration) -> Option<Trace> {
    let deadline = Instant::now() + timeout;
    loop {
        let still_open = store()
            .active
            .lock()
            .get(&trace_id)
            .is_some_and(|t| t.open > 0);
        if !still_open {
            if let Some(t) = completed(trace_id) {
                return t.into();
            }
        }
        if Instant::now() >= deadline {
            return completed(trace_id);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders one trace in the Chrome trace-event JSON format (an object
/// with a `traceEvents` array of `ph:"X"` complete events), loadable in
/// Perfetto / `chrome://tracing`. Trace, span and parent ids travel in
/// each event's `args` alongside the attributed counters.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            esc(&s.name),
            s.start_us,
            s.dur_us,
            s.tid
        );
        let _ = write!(
            out,
            ",\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\"",
            s.trace_id, s.span_id
        );
        if let Some(p) = s.parent_id {
            let _ = write!(out, ",\"parent_id\":\"{p:016x}\"");
        }
        for (k, v) in &s.args {
            let _ = write!(out, ",\"{}\":{}", esc(k), v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders completed traces as a JSON array of trace objects (the
/// `GET /trace/recent` body): span-id fields are hex strings, counters
/// nest under `args`.
pub fn traces_json(traces: &[Trace]) -> String {
    let mut out = String::from("[");
    for (ti, t) in traces.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"trace_id\":\"{:016x}\",\"spans\":[", t.trace_id);
        for (i, s) in t.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"span_id\":\"{:016x}\",\"parent_id\":", s.span_id);
            match s.parent_id {
                Some(p) => {
                    let _ = write!(out, "\"{p:016x}\"");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"tid\":{},\"args\":{{",
                esc(&s.name),
                s.start_us,
                s.dur_us,
                s.tid
            );
            for (ai, (k, v)) in s.args.iter().enumerate() {
                if ai > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", esc(k), v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Self-time attribution of a trace's critical path: every microsecond
/// of the root's duration is charged to exactly one span name.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Duration of the root span in microseconds (= the sum of all
    /// `by_name` self-times).
    pub total_us: u64,
    /// Self-time on the critical path per span name, descending.
    pub by_name: Vec<(String, u64)>,
}

impl CriticalPath {
    /// Summed self-time of the named spans, in microseconds.
    pub fn named_us(&self, names: &[&str]) -> u64 {
        self.by_name
            .iter()
            .filter(|(n, _)| names.contains(&n.as_str()))
            .map(|(_, us)| us)
            .sum()
    }

    /// Fraction of the root duration spent in the named spans.
    pub fn share(&self, names: &[&str]) -> f64 {
        if self.total_us == 0 {
            return 0.0;
        }
        to_f64(self.named_us(names)) / to_f64(self.total_us)
    }
}

/// `u64 → f64` for ratios of microsecond totals; exact below 2⁵³ µs
/// (≈ 285 years), far beyond any run.
fn to_f64(us: u64) -> f64 {
    us as f64
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "critical path: {:.3}s end-to-end",
            to_f64(self.total_us) / 1e6
        )?;
        for (name, us) in &self.by_name {
            writeln!(
                f,
                "  {name:<18} {:>9.3}s  {:>5.1}%",
                to_f64(*us) / 1e6,
                100.0 * to_f64(*us) / to_f64(self.total_us.max(1))
            )?;
        }
        Ok(())
    }
}

/// Walks a completed trace backwards from its root, always descending
/// into the child that finished last, and attributes the uncovered gaps
/// to the parent's self-time. The attribution telescopes: the returned
/// self-times sum exactly to the root's duration. Returns `None` for a
/// rootless trace.
pub fn critical_path(trace: &Trace) -> Option<CriticalPath> {
    let root = trace.root()?;
    let root_idx = trace.spans.iter().position(|s| s.span_id == root.span_id)?;

    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        if let Some(p) = s.parent_id {
            children.entry(p).or_default().push(i);
        }
    }

    let mut consumed = vec![false; trace.spans.len()];
    let mut self_us: HashMap<&str, u64> = HashMap::new();
    // (span index, cursor end, clamped start floor)
    let mut work: Vec<(usize, u64, u64)> = vec![(root_idx, root.end_us(), root.start_us)];

    while let Some((i, cursor, floor)) = work.pop() {
        let span = &trace.spans[i];
        // The unconsumed child that finished last before the cursor,
        // clamped into the parent's remaining window.
        let mut best: Option<(usize, u64, u64)> = None;
        if let Some(kids) = children.get(&span.span_id) {
            for &c in kids {
                if consumed[c] {
                    continue;
                }
                let child = &trace.spans[c];
                let ce = child.end_us().min(cursor);
                let cs = child.start_us.max(floor);
                if ce <= cs {
                    continue;
                }
                if best.map_or(true, |(_, be, bs)| (ce, cs) > (be, bs)) {
                    best = Some((c, ce, cs));
                }
            }
        }
        match best {
            None => {
                *self_us.entry(span.name.as_str()).or_default() += cursor.saturating_sub(floor);
            }
            Some((c, ce, cs)) => {
                consumed[c] = true;
                *self_us.entry(span.name.as_str()).or_default() += cursor.saturating_sub(ce);
                work.push((i, cs, floor));
                work.push((c, ce, cs));
            }
        }
    }

    let mut by_name: Vec<(String, u64)> = self_us
        .into_iter()
        .map(|(n, us)| (n.to_owned(), us))
        .collect();
    by_name.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Some(CriticalPath {
        total_us: root.dur_us,
        by_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        trace_id: u64,
        span_id: u64,
        parent_id: Option<u64>,
        name: &str,
        start_us: u64,
        dur_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name: name.to_owned(),
            start_us,
            dur_us,
            tid: 1,
            args: vec![],
        }
    }

    #[test]
    fn critical_path_telescopes_to_root_duration() {
        // root [0,100) with children a [10,40) and b [50,90); a has a
        // child c [20,40). Path: root(100→90) → b(90→50) → root(50→40)
        // → a(40→20 via c, 20→10 self) → root(10→0).
        let trace = Trace {
            trace_id: 9,
            spans: vec![
                rec(9, 1, None, "root", 0, 100),
                rec(9, 2, Some(1), "a", 10, 30),
                rec(9, 3, Some(1), "b", 50, 40),
                rec(9, 4, Some(2), "c", 20, 20),
            ],
        };
        let cp = critical_path(&trace).expect("has root");
        assert_eq!(cp.total_us, 100);
        let sum: u64 = cp.by_name.iter().map(|(_, us)| us).sum();
        assert_eq!(sum, 100, "{:?}", cp.by_name);
        let get = |n: &str| cp.named_us(&[n]);
        assert_eq!(get("root"), 30); // gaps [90,100) + [40,50) + [0,10)
        assert_eq!(get("b"), 40);
        assert_eq!(get("a"), 10); // [10,20) before its child c
        assert_eq!(get("c"), 20);
        assert!((cp.share(&["a", "b", "c"]) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn critical_path_prefers_latest_finishing_child() {
        // Two parallel children; the one that ends later carries the
        // path, the earlier one is invisible to it.
        let trace = Trace {
            trace_id: 5,
            spans: vec![
                rec(5, 1, None, "root", 0, 100),
                rec(5, 2, Some(1), "slow", 0, 95),
                rec(5, 3, Some(1), "fast", 0, 60),
            ],
        };
        let cp = critical_path(&trace).expect("has root");
        assert_eq!(cp.named_us(&["slow"]), 95);
        assert_eq!(cp.named_us(&["fast"]), 0);
        assert_eq!(cp.named_us(&["root"]), 5);
    }

    #[test]
    fn chrome_export_is_valid_event_array() {
        let mut r = rec(7, 1, None, "root", 3, 11);
        r.args.push(("bytes", 42));
        let trace = Trace {
            trace_id: 7,
            spans: vec![r, rec(7, 2, Some(1), "child", 4, 5)],
        };
        let text = chrome_trace_json(&trace);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        let serde_json::Value::Object(obj) = v else {
            panic!("not an object")
        };
        assert!(obj.iter().any(|(k, _)| k == "traceEvents"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"parent_id\":\"0000000000000001\""));
        assert!(text.contains("\"bytes\":42"));
    }

    #[test]
    fn traces_json_round_trips_through_parser() {
        let trace = Trace {
            trace_id: 8,
            spans: vec![rec(8, 1, None, "root", 0, 10)],
        };
        let text = traces_json(&[trace]);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert!(matches!(v, serde_json::Value::Array(_)));
        assert!(text.contains("\"parent_id\":null"));
    }

    #[test]
    fn orphans_are_detected() {
        let trace = Trace {
            trace_id: 4,
            spans: vec![
                rec(4, 1, None, "root", 0, 10),
                rec(4, 2, Some(1), "ok", 1, 2),
                rec(4, 3, Some(99), "lost", 3, 2),
            ],
        };
        let orphans = trace.orphans();
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].name, "lost");
    }
}

//! Metric instruments: counters, gauges and log-bucketed histograms.
//!
//! Every instrument is a cheap clonable handle over shared atomics, so a
//! handle can be resolved once (through the registry) and incremented from
//! any thread without locking: the hot path of every instrument is a
//! single atomic RMW operation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (registries hand out shared ones).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (which may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Increments now and decrements when the returned guard drops — for
    /// "currently active" gauges such as open connections.
    pub fn track(&self) -> GaugeGuard {
        self.add(1);
        GaugeGuard {
            gauge: self.clone(),
        }
    }
}

/// RAII guard from [`Gauge::track`]; decrements on drop.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

/// Bucket layout of a histogram: a strictly increasing list of upper
/// bounds. Observations above the last bound land in an implicit overflow
/// (`+Inf`) bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSpec {
    bounds: Vec<f64>,
}

impl HistogramSpec {
    /// Log-spaced bounds: `start, start*factor, start*factor², …` with
    /// `count` bounds in total. Requires `start > 0`, `factor > 1`.
    pub fn log(start: f64, factor: f64, count: usize) -> HistogramSpec {
        assert!(start > 0.0 && start.is_finite(), "start must be positive");
        assert!(factor > 1.0 && factor.is_finite(), "factor must exceed 1");
        assert!(count >= 1, "at least one bound required");
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        HistogramSpec { bounds }
    }

    /// Explicit bounds (must be strictly increasing and finite).
    pub fn explicit(bounds: Vec<f64>) -> HistogramSpec {
        assert!(!bounds.is_empty(), "at least one bound required");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bounds must be strictly increasing and finite"
        );
        HistogramSpec { bounds }
    }

    /// The default duration layout: 1 µs to ~69 s at ×2 per bucket. Wide
    /// enough for a frame round-trip or a whole study stage.
    pub fn duration_seconds() -> HistogramSpec {
        HistogramSpec::log(1e-6, 2.0, 36)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

impl Default for HistogramSpec {
    fn default() -> HistogramSpec {
        HistogramSpec::duration_seconds()
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits and updated by CAS so the
    /// hot path stays lock-free.
    sum_bits: AtomicU64,
}

/// A log-bucketed histogram with quantile estimation.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A fresh, unregistered histogram with the given bucket layout.
    pub fn with_spec(spec: &HistogramSpec) -> Histogram {
        let buckets = (0..=spec.bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: spec.bounds.clone(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Records one observation. Lock-free: two atomic adds and one CAS
    /// loop on the sum.
    pub fn observe(&self, v: f64) {
        let idx = self.bucket_index(v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// The bucket an observation falls into (`bounds.len()` = overflow).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.core.bounds.partition_point(|b| v > *b)
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket holding that rank. The estimate lands in the same
    /// bucket as the exact quantile, so its error is bounded by one bucket
    /// width. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        self.state().quantile(q)
    }

    /// A point-in-time copy of the histogram's contents.
    pub fn state(&self) -> HistogramState {
        HistogramState {
            bounds: self.core.bounds.clone(),
            buckets: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A snapshot of a histogram's buckets, used for exposition, quantile
/// estimation and before/after differencing.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramState {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (last slot = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramState {
    /// The observations recorded since `earlier` (which must be a snapshot
    /// of the same histogram, taken before this one).
    pub fn since(&self, earlier: &HistogramState) -> HistogramState {
        assert_eq!(
            self.bounds, earlier.bounds,
            "snapshots of different layouts"
        );
        HistogramState {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
        }
    }

    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        // 1-based rank of the order statistic we are after.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(b) => *b,
                    // Overflow bucket is unbounded; the last bound is the
                    // best defensible answer.
                    // sift-lint: allow(no-panic) — spec construction guarantees at least one bound
                    None => return *self.bounds.last().expect("non-empty bounds"),
                };
                let into = (rank - cumulative) as f64 / *n as f64;
                // The interpolation can round one ulp past the bucket's
                // upper bound when `into` is 1; clamp so the estimate
                // always stays inside the bucket holding the exact rank.
                return (lower + (upper - lower) * into).min(upper);
            }
            cumulative += n;
        }
        // sift-lint: allow(no-panic) — spec construction guarantees at least one bound
        *self.bounds.last().expect("non-empty bounds")
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        {
            let _a = g.track();
            let _b = g.track();
            assert_eq!(g.get(), 0);
        }
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::with_spec(&HistogramSpec::explicit(vec![1.0, 2.0, 4.0]));
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.state();
        // le semantics: 1.0 falls into the first bucket.
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 106.0).abs() < 1e-9);
        assert!((s.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_bucket() {
        let h = Histogram::with_spec(&HistogramSpec::explicit(vec![1.0, 2.0, 4.0]));
        for _ in 0..10 {
            h.observe(1.5); // all mass in (1, 2]
        }
        let q = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&q), "{q}");
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
    }

    #[test]
    fn overflow_quantile_reports_last_bound() {
        let h = Histogram::with_spec(&HistogramSpec::explicit(vec![1.0, 2.0]));
        h.observe(50.0);
        assert!((h.quantile(0.99) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn state_since_subtracts() {
        let h = Histogram::with_spec(&HistogramSpec::explicit(vec![1.0]));
        h.observe(0.5);
        let before = h.state();
        h.observe(0.7);
        h.observe(9.0);
        let delta = h.state().since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets, vec![1, 1]);
        assert!((delta.sum - 9.7).abs() < 1e-9);
    }

    #[test]
    fn log_spec_layout() {
        let spec = HistogramSpec::log(1e-3, 10.0, 4);
        assert_eq!(spec.bounds().len(), 4);
        assert!((spec.bounds()[3] - 1.0).abs() < 1e-12);
    }
}

//! Observability substrate: metrics, span timers and structured events.
//!
//! SIFT's pipeline spans a live HTTP service, a rate-limited fetcher fleet
//! and a multi-round detection study; understanding where a run spends its
//! budget (and what the service rejected) needs instrumentation, and no
//! metrics crate is in the sanctioned dependency set. This crate is that
//! subsystem, hand-rolled over atomics:
//!
//! * [`metrics`] — labeled [`Counter`]/[`Gauge`] and a log-bucketed
//!   [`Histogram`] with quantile estimation; every increment is a single
//!   lock-free atomic RMW.
//! * [`registry`] — a global [`Registry`] keyed by metric name + labels,
//!   rendering the Prometheus text exposition format for `GET /metrics`.
//! * [`span`] — RAII [`Span`] timers forming causal trace trees: each
//!   span carries a trace id, span id and parent id on a thread-local
//!   context stack; drops record into `sift_span_seconds{span=…}` and
//!   deposit a record into the trace store. [`SpanContext`] hands the
//!   tree across worker threads ([`span_in`]) and across HTTP (the
//!   `X-Sift-Trace` header).
//! * [`trace`] — assembly of completed trace trees, a Chrome
//!   trace-event JSON exporter ([`trace::chrome_trace_json`],
//!   Perfetto-loadable) and a critical-path analyzer
//!   ([`trace::critical_path`]).
//! * [`event`] — a leveled, structured JSON-lines [`EventLog`] (bounded
//!   ring buffer by default, switchable to stderr).
//! * [`telemetry`] — serializable per-stage timing summaries
//!   ([`TelemetrySnapshot`]) built by diffing span histograms, embedded in
//!   study results and printed as tables by the bench binaries.
//!
//! The usual entry points are the crate-level helpers: [`counter`],
//! [`gauge`], [`histogram`] (global registry, thread-locally cached
//! handles), [`span`], [`span_in`], [`attr_add`] and [`event`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use event::{EventLog, Level};
pub use metrics::{Counter, Gauge, GaugeGuard, Histogram, HistogramSpec, HistogramState};
pub use registry::{MetricKey, Registry};
pub use span::{attr_add, attr_set, current_path, Span, SpanContext, SPAN_METRIC};
pub use telemetry::{SpanBaseline, StageTiming, TelemetrySnapshot};
pub use trace::{chrome_trace_json, critical_path, CriticalPath, SpanRecord, Trace};

use serde_json::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The process-wide metric registry backing `GET /metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide event log.
pub fn events() -> &'static EventLog {
    static EVENTS: OnceLock<EventLog> = OnceLock::new();
    EVENTS.get_or_init(EventLog::new)
}

// Per-thread handle cache: long-lived worker threads hit the registry
// lock once per series and a local HashMap thereafter.
thread_local! {
    static COUNTERS: RefCell<HashMap<MetricKey, Counter>> = RefCell::new(HashMap::new());
    static GAUGES: RefCell<HashMap<MetricKey, Gauge>> = RefCell::new(HashMap::new());
    static HISTOGRAMS: RefCell<HashMap<MetricKey, Histogram>> = RefCell::new(HashMap::new());
}

/// The global counter `name{labels}`, registered on first use.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    let key = MetricKey::new(name, labels);
    COUNTERS.with(|cache| {
        cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| global().counter(name, labels))
            .clone()
    })
}

/// The global gauge `name{labels}`, registered on first use.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    let key = MetricKey::new(name, labels);
    GAUGES.with(|cache| {
        cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| global().gauge(name, labels))
            .clone()
    })
}

/// The global histogram `name{labels}` with the default
/// [`HistogramSpec::duration_seconds`] layout, registered on first use.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Histogram {
    histogram_with_spec(name, labels, &HistogramSpec::duration_seconds())
}

/// Like [`histogram`] with an explicit bucket layout (used only if this
/// call is the first registration of the series).
pub fn histogram_with_spec(name: &str, labels: &[(&str, &str)], spec: &HistogramSpec) -> Histogram {
    let key = MetricKey::new(name, labels);
    HISTOGRAMS.with(|cache| {
        cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| global().histogram(name, labels, spec))
            .clone()
    })
}

/// Opens a span as a child of this thread's innermost open span (or as
/// a fresh trace root when none is open); dropping the returned guard
/// records its duration into the global
/// `sift_span_seconds{span="<name>"}` histogram and its record into the
/// trace store.
pub fn span(name: &str) -> Span {
    Span::enter(name)
}

/// Opens a span as a child of an explicit [`SpanContext`] — the handoff
/// API for crossing thread or process boundaries, where the thread-local
/// stack would otherwise sever parentage.
pub fn span_in(ctx: SpanContext, name: &str) -> Span {
    Span::open(name, Some(ctx))
}

/// Opens a span as the root of a fresh trace, regardless of any span
/// already open on this thread.
pub fn span_root(name: &str) -> Span {
    Span::open(name, None)
}

/// Emits one structured event to the global log.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    events().emit(level, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_hit_the_global_registry() {
        counter("lib_test_total", &[("k", "v")]).inc();
        counter("lib_test_total", &[("k", "v")]).add(2);
        assert_eq!(global().counter("lib_test_total", &[("k", "v")]).get(), 3);
    }

    #[test]
    fn cached_handles_share_state_across_threads() {
        let n = 8;
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter("lib_thread_total", &[]).inc();
                    }
                });
            }
        });
        assert_eq!(counter("lib_thread_total", &[]).get(), n * 1000);
    }

    #[test]
    fn event_helper_reaches_global_log() {
        events().set_min_level(Level::Debug);
        event(Level::Info, "obs.test", "hello", &[("x", Value::Int(1))]);
        let lines = events().drain();
        assert!(lines.iter().any(|l| l.contains("obs.test")), "{lines:?}");
    }
}

//! Serializable telemetry snapshots: per-stage span timings.
//!
//! [`SpanBaseline`] captures the global span histograms at a point in
//! time; [`TelemetrySnapshot::since`] diffs against it, yielding exactly
//! the spans recorded in between — suitable for embedding in result
//! structs (e.g. `StudyStats`) and printing as a timing table.

use crate::metrics::HistogramState;
use crate::span::SPAN_METRIC;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Point-in-time capture of every span histogram, used as the "before"
/// side of a diff.
#[derive(Clone, Debug, Default)]
pub struct SpanBaseline {
    states: BTreeMap<String, HistogramState>,
}

impl SpanBaseline {
    /// Captures the current global span histograms.
    pub fn capture() -> SpanBaseline {
        let mut states = BTreeMap::new();
        for (labels, state) in crate::global().histogram_states(SPAN_METRIC) {
            if let Some((_, name)) = labels.iter().find(|(k, _)| k == "span") {
                states.insert(name.clone(), state);
            }
        }
        SpanBaseline { states }
    }
}

/// Timing summary of one span (stage).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Span name.
    pub name: String,
    /// Times the span ran.
    pub count: u64,
    /// Total seconds across runs.
    pub total_seconds: f64,
    /// Mean seconds per run.
    pub mean_seconds: f64,
    /// Estimated median, from the span histogram.
    pub p50_seconds: f64,
    /// Estimated 99th percentile, from the span histogram.
    pub p99_seconds: f64,
}

/// Per-stage timing summary over a window of work.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// One entry per span name that ran, ordered by total time descending.
    pub stages: Vec<StageTiming>,
}

impl TelemetrySnapshot {
    /// Summarizes every span recorded globally since `baseline`.
    pub fn since(baseline: &SpanBaseline) -> TelemetrySnapshot {
        let mut stages = Vec::new();
        for (labels, now) in crate::global().histogram_states(SPAN_METRIC) {
            let Some((_, name)) = labels.iter().find(|(k, _)| k == "span") else {
                continue;
            };
            let delta = match baseline.states.get(name) {
                Some(earlier) => now.since(earlier),
                None => now,
            };
            if delta.count == 0 {
                continue;
            }
            stages.push(StageTiming {
                name: name.clone(),
                count: delta.count,
                total_seconds: delta.sum,
                mean_seconds: delta.mean(),
                p50_seconds: delta.quantile(0.5),
                p99_seconds: delta.quantile(0.99),
            });
        }
        stages.sort_by(|a, b| {
            b.total_seconds
                .partial_cmp(&a.total_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        TelemetrySnapshot { stages }
    }

    /// Summarizes all spans ever recorded (empty baseline).
    pub fn capture_all() -> TelemetrySnapshot {
        TelemetrySnapshot::since(&SpanBaseline::default())
    }
}

impl fmt::Display for TelemetrySnapshot {
    /// Renders a fixed-width timing table, one row per stage.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<24} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "stage", "count", "total", "mean", "p50", "p99"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<24} {:>8} {:>11.3}s {:>11.6}s {:>11.6}s {:>11.6}s",
                s.name, s.count, s.total_seconds, s.mean_seconds, s.p50_seconds, s.p99_seconds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diffs_against_baseline() {
        {
            let _s = crate::span("telemetry-stage-a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let baseline = SpanBaseline::capture();
        {
            let _s = crate::span("telemetry-stage-a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _s = crate::span("telemetry-stage-b");
        }
        let snap = TelemetrySnapshot::since(&baseline);
        let a = snap
            .stages
            .iter()
            .find(|s| s.name == "telemetry-stage-a")
            .expect("stage a present");
        assert_eq!(a.count, 1, "only the run after the baseline counts");
        assert!(a.total_seconds > 0.0);
        assert!(snap.stages.iter().any(|s| s.name == "telemetry-stage-b"));
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let snap = TelemetrySnapshot {
            stages: vec![StageTiming {
                name: "fetch".into(),
                count: 3,
                total_seconds: 1.5,
                mean_seconds: 0.5,
                p50_seconds: 0.4,
                p99_seconds: 0.9,
            }],
        };
        let text = serde_json::to_string(&snap).expect("encode");
        let back: TelemetrySnapshot = serde_json::from_str(&text).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn display_renders_table() {
        let snap = TelemetrySnapshot {
            stages: vec![StageTiming {
                name: "detect".into(),
                count: 2,
                total_seconds: 0.25,
                mean_seconds: 0.125,
                p50_seconds: 0.1,
                p99_seconds: 0.2,
            }],
        };
        let text = snap.to_string();
        assert!(text.contains("stage"), "{text}");
        assert!(text.contains("detect"), "{text}");
    }
}

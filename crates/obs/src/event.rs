//! Leveled, structured JSON-lines event log.
//!
//! Events are one JSON object per line: sequence number, level, target,
//! message, the current span path, and free-form fields. The default sink
//! is a bounded in-memory ring buffer (drainable in tests and dumpable on
//! demand); it can be switched to stderr for live runs. Event emission
//! takes one short mutex on the sink — events are diagnostics, not the
//! metrics hot path.

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained diagnostics.
    Debug = 0,
    /// Normal operational events.
    Info = 1,
    /// Something degraded (backoff, retry, rejection).
    Warn = 2,
    /// Something failed.
    Error = 3,
}

impl Level {
    fn as_u8(self) -> u8 {
        // sift-lint: allow(lossy-cast) — discriminants are 0..=3 by definition
        self as u8
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

#[derive(Debug)]
enum Sink {
    Buffer { lines: VecDeque<String>, cap: usize },
    Stderr,
}

/// The event log. One global instance exists (see [`crate::events`]).
#[derive(Debug)]
pub struct EventLog {
    min_level: AtomicU8,
    seq: AtomicU64,
    started: Instant,
    sink: Mutex<Sink>,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog {
            min_level: AtomicU8::new(Level::Info.as_u8()),
            seq: AtomicU64::new(0),
            started: Instant::now(),
            sink: Mutex::new(Sink::Buffer {
                lines: VecDeque::new(),
                cap: 4096,
            }),
        }
    }
}

impl EventLog {
    /// A fresh log buffering up to 4096 lines at `Info`.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Drops events below `level`.
    pub fn set_min_level(&self, level: Level) {
        self.min_level.store(level.as_u8(), Ordering::Relaxed);
    }

    /// The current minimum level.
    pub fn min_level(&self) -> Level {
        Level::from_u8(self.min_level.load(Ordering::Relaxed))
    }

    /// Switches the sink to stderr (for live runs).
    pub fn log_to_stderr(&self) {
        *self.sink.lock() = Sink::Stderr;
    }

    /// Emits one event. `fields` become additional JSON members.
    pub fn emit(&self, level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
        if level < self.min_level() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let uptime_ms = self.started.elapsed().as_millis() as u64;
        let mut members: Vec<(String, Value)> = vec![
            ("seq".into(), Value::UInt(seq)),
            ("uptime_ms".into(), Value::UInt(uptime_ms)),
            ("level".into(), Value::Str(level.as_str().into())),
            ("target".into(), Value::Str(target.into())),
            ("msg".into(), Value::Str(msg.into())),
        ];
        let span = crate::current_path();
        if !span.is_empty() {
            members.push(("span".into(), Value::Str(span)));
        }
        for (k, v) in fields {
            members.push(((*k).to_owned(), v.clone()));
        }
        let line = serde_json::to_string(&Value::Object(members))
            // sift-lint: allow(no-panic) — serializing a serde_json::Value tree is infallible
            .expect("a Value tree always serializes");
        match &mut *self.sink.lock() {
            Sink::Buffer { lines, cap } => {
                if lines.len() == *cap {
                    lines.pop_front();
                }
                lines.push_back(line);
            }
            Sink::Stderr => eprintln!("{line}"),
        }
    }

    /// Removes and returns every buffered line (empty for a stderr sink).
    pub fn drain(&self) -> Vec<String> {
        match &mut *self.sink.lock() {
            Sink::Buffer { lines, .. } => lines.drain(..).collect(),
            Sink::Stderr => Vec::new(),
        }
    }

    /// Copies the buffered lines without draining.
    pub fn lines(&self) -> Vec<String> {
        match &*self.sink.lock() {
            Sink::Buffer { lines, .. } => lines.iter().cloned().collect(),
            Sink::Stderr => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_json_lines_with_levels() {
        let log = EventLog::new();
        log.emit(Level::Debug, "t", "dropped", &[]);
        log.emit(
            Level::Warn,
            "net.client",
            "backing off",
            &[("wait_ms", Value::UInt(250)), ("attempt", Value::UInt(2))],
        );
        let lines = log.drain();
        assert_eq!(lines.len(), 1, "debug below default min level");
        let v: Value = serde_json::from_str(&lines[0]).expect("valid json line");
        let obj = serde::de::as_object(&v, "event line").expect("object");
        let get = |k: &str| serde::de::get(obj, k).cloned().expect(k);
        assert_eq!(get("level"), Value::Str("warn".into()));
        assert_eq!(get("target"), Value::Str("net.client".into()));
        // The shim parser reads integers that fit as `Int`.
        assert_eq!(get("wait_ms"), Value::Int(250));
    }

    #[test]
    fn min_level_is_adjustable() {
        let log = EventLog::new();
        log.set_min_level(Level::Debug);
        log.emit(Level::Debug, "t", "kept", &[]);
        assert_eq!(log.drain().len(), 1);
        log.set_min_level(Level::Error);
        log.emit(Level::Warn, "t", "dropped", &[]);
        assert!(log.drain().is_empty());
    }

    #[test]
    fn buffer_is_bounded() {
        let log = EventLog::new();
        for i in 0..5000 {
            log.emit(Level::Info, "t", &format!("m{i}"), &[]);
        }
        let lines = log.lines();
        assert_eq!(lines.len(), 4096);
        assert!(lines[0].contains("m904"), "oldest lines evicted");
    }
}

//! hot-alloc fixture: per-iteration allocation, hotness through a call,
//! and the scratch-buffer shapes that are the fix rather than the finding.

fn stitch(frames: &[Frame], out: &mut Vec<u32>) {
    out.clear();
    for frame in frames {
        let scaled = frame.values.to_vec(); //~strict hot-alloc
        out.extend_from_slice(&scaled);
    }
}

fn leaf(values: &[u32]) -> Vec<u32> {
    values.iter().map(double).collect() //~strict hot-alloc
}

fn drive(rounds: &[Round], out: &mut Vec<u32>) {
    for round in rounds {
        absorb(out, leaf(&round.values));
    }
}

fn reuse(rounds: &[Round], scratch: &mut Vec<u32>) {
    for round in rounds {
        scratch.clear();
        scratch.extend_from_slice(&round.values);
        absorb_slice(scratch);
    }
}

fn setup() -> Vec<u32> {
    let mut v = Vec::with_capacity(8);
    v.push(1);
    v
}

//! Fixture for the `trace-span` rule: bare `Span::enter` in pipeline
//! code. Every finding here is strict-only — the rule is silent unless
//! the file sits on the rule's `strict_paths`.

use sift_obs::{Span, SpanContext};

pub fn bad_bare_enter() -> Span {
    Span::enter("stage") //~strict trace-span
}

pub fn bad_qualified_enter() -> sift_obs::Span {
    sift_obs::Span::enter("stage") //~strict trace-span
}

pub fn fine_context_carrying(ctx: SpanContext) {
    let _same_thread = sift_obs::span("stage");
    let _across_boundary = sift_obs::span_in(ctx, "stage");
    let _deliberate_root = sift_obs::span_root("run");
}

pub fn suppressed() -> Span {
    // sift-lint: allow(trace-span) — fixture exercises suppression
    Span::enter("stage")
}

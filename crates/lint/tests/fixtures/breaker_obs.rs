//! Fixture for the `breaker-obs` rule: every `BreakerState` variant needs
//! its snake_case label string in non-test code, plus the registered
//! `sift_client_breaker_state` gauge. `Closed` and `Open` are labelled
//! below; `Stuck` never is, so the enum site is flagged once.

pub enum BreakerState { //~ breaker-obs
    Closed,
    Open,
    Stuck,
}

pub fn wire(state: BreakerState) {
    sift_obs::gauge("sift_client_breaker_state", &[]).set(0);
    let _label = match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::Stuck => "jammed", // wrong label on purpose
    };
}

//! lock-order fixture: the classic ABBA inversion, a self-deadlock, and
//! a pair that is only ever taken in one order.

struct Shared {
    roster: Mutex<u32>,
    stats: Mutex<u32>,
    journal: Mutex<u32>,
}

fn forward(s: &Shared) {
    let roster = s.roster.lock();
    let stats = s.stats.lock(); //~ lock-order
    combine(roster, stats);
}

fn backward(s: &Shared) {
    let stats = s.stats.lock();
    let roster = s.roster.lock(); //~ lock-order
    combine(roster, stats);
}

fn reentrant(s: &Shared) {
    let first = s.journal.lock();
    let second = s.journal.lock(); //~ lock-order
    combine(first, second);
}

fn ordered(s: &Shared) {
    let roster = s.roster.lock();
    let journal = s.journal.lock();
    combine(roster, journal);
}

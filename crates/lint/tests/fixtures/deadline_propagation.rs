//! deadline-propagation fixture: unbounded egress, deadline-bounded
//! egress, type-level binding, channel handoffs, and a justified allow.

fn relay(client: &Client, request: &Request) {
    client.send(request); //~strict deadline-propagation
}

fn bounded(client: &Client, request: &Request, deadline: SimInstant) {
    client.send_with_retry(request, deadline);
}

impl Courier {
    fn with_deadline(mut self, deadline: SimInstant) -> Courier {
        self.deadline = deadline;
        self
    }
}

impl Courier {
    fn dispatch(&self, request: &Request) -> Outcome {
        self.http.post_json("/q", request)
    }
}

fn pump(work_tx: &Sender<Job>, job: Job) {
    work_tx.send(job);
}

fn probe(client: &Client, request: &Request) {
    // sift-lint: allow(deadline-propagation) — probe tool: waiting forever IS the measurement
    client.fetch_frame(request);
}

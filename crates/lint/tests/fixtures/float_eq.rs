//! Fixture for the `float-eq` rule: exact equality against float
//! literals, in library and test code alike.

pub fn bad_eq(x: f64) -> bool {
    x == 0.0 //~ float-eq
}

pub fn bad_ne(x: f32) -> bool {
    x != 1.5 //~ float-eq
}

pub fn bad_literal_first(x: f64) -> bool {
    3.25 == x //~ float-eq
}

pub fn bad_negative_literal(x: f64) -> bool {
    x == -1.0 //~ float-eq
}

pub fn fine_threshold(x: f64) -> bool {
    x <= 0.0
}

pub fn fine_epsilon(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9
}

pub fn fine_integer_compare(n: u32) -> bool {
    n == 100
}

pub fn suppressed(x: f64) -> bool {
    x == 0.0 // sift-lint: allow(float-eq) — fixture exercises suppression
}

#[cfg(test)]
mod tests {
    fn measure() -> f64 {
        0.1 + 0.2
    }

    #[test]
    fn bad_assert_in_test() {
        assert_eq!(measure(), 0.3); //~ float-eq
        assert_ne!(measure(), -0.5); //~ float-eq
    }

    #[test]
    fn fine_asserts() {
        assert!((measure() - 0.3).abs() < 1e-12);
        // A float literal nested inside a call is an argument, not an
        // exact float comparison.
        assert_eq!(measure().total_cmp(&0.3), std::cmp::Ordering::Less);
    }
}

//! Fixture for the `durable-write` rule: raw file installs in a
//! persistence module. Every finding here is strict-only — the rule is
//! silent unless the file sits on the rule's `strict_paths`.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

pub fn bad_create(path: &Path) -> std::io::Result<File> {
    File::create(path) //~strict durable-write
}

pub fn bad_qualified_create(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path) //~strict durable-write
}

pub fn bad_fs_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes) //~strict durable-write
}

pub fn bad_unqualified_fs_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes) //~strict durable-write
}

pub fn fine_reading(path: &Path) -> std::io::Result<Vec<u8>> {
    let _ = File::open(path)?;
    fs::read(path)
}

pub fn fine_writer_methods(mut f: File, bytes: &[u8]) -> std::io::Result<()> {
    f.write_all(bytes)?;
    f.write(bytes).map(|_| ())
}

pub fn suppressed(path: &Path) -> std::io::Result<File> {
    // sift-lint: allow(durable-write) — fixture exercises suppression
    File::create(path)
}

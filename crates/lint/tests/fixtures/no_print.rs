//! Fixture for the `no-print` rule: stdout/stderr writes in library
//! crates must go through `sift-obs` events instead.

pub fn bad_println(x: u32) {
    println!("value: {x}") //~ no-print
}

pub fn bad_eprintln(x: u32) {
    eprintln!("error: {x}") //~ no-print
}

pub fn bad_print() {
    print!("partial") //~ no-print
}

pub fn bad_dbg(x: u32) -> u32 {
    dbg!(x) //~ no-print
}

pub fn fine_writeln(out: &mut String, x: u32) -> std::fmt::Result {
    use std::fmt::Write;
    writeln!(out, "value: {x}")
}

pub fn fine_in_string() -> &'static str {
    "println!(not code)"
}

pub fn suppressed() {
    println!("banner") // sift-lint: allow(no-print) — fixture exercises suppression
}

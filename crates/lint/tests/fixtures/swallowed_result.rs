//! swallowed-result fixture: discarded `Result`s versus legal discards.

fn flush(sink: &mut Sink) -> Result<(), Error> {
    sink.flush_all()
}

fn discards(sink: &mut Sink) {
    let _ = flush(sink); //~ swallowed-result
    flush(sink).ok(); //~ swallowed-result
    match flush(sink) {
        Ok(()) => {}
        Err(e) => record(e),
    }
}

fn legal(sink: &mut Sink, witness: Guard) -> Result<(), Error> {
    let _ = witness;
    let _ = open_handle(sink)?;
    let kept = flush(sink).ok();
    consume(kept);
    let mut s = String::new();
    let _ = write!(s, "n={}", 1);
    consume_str(s);
}

fn excused(sink: &mut Sink) {
    // sift-lint: allow(swallowed-result) — crash staging: the process exits either way
    let _ = flush(sink);
}

//! Fixture for the `wall-clock` rule: reading real time or sleeping in
//! simulation code.

use std::time::{Duration, Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() //~ wall-clock
}

pub fn bad_qualified() -> std::time::Instant {
    std::time::Instant::now() //~ wall-clock
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() //~ wall-clock
}

pub fn bad_sleep() {
    std::thread::sleep(Duration::from_millis(5)) //~ wall-clock
}

pub fn fine_holding_an_instant(at: Instant) -> Duration {
    at.elapsed()
}

pub fn fine_duration_math() -> Duration {
    Duration::from_secs(1) * 3
}

pub fn suppressed() -> Instant {
    // sift-lint: allow(wall-clock) — fixture exercises suppression
    Instant::now()
}

//! Fixture for the `route-obs` rule: every registered route needs an obs
//! counter mentioning its final path segment. `/covered` is satisfied by
//! the counter below; `/orphan` has none.

use crate::{Method, Router};

pub fn build(router: Router) -> Router {
    router
        .route(Method::Get, "/api/covered", |_| ok())
        .route(Method::Get, "/orphan", |_| ok()) //~ route-obs
}

pub fn serve_covered() {
    sift_obs::counter("fixture_covered_requests_total", &[]).inc();
}

//! Fixture for the `serve-obs` rule: every `DegradeReason` variant needs
//! its snake_case label as a string literal somewhere in non-test code
//! (plus a registered `sift_serve_degraded_reads_total` counter).
//! `BreakerOpen` is covered by the label below; `Ghost` has none.

pub enum DegradeReason { //~ serve-obs
    BreakerOpen,
    Ghost,
}

pub fn count_degraded_read(reason: &str) {
    sift_obs::counter("sift_serve_degraded_reads_total", &[("reason", reason)]).inc();
}

pub fn breaker_label() -> &'static str {
    "breaker_open"
}

//! Fixture for the `no-panic` rule. Lines carrying a tilde marker must
//! be reported at exactly that line; untagged lines must stay silent.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() //~ no-panic
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("boom") //~ no-panic
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("unreachable by design") //~ no-panic
    }
}

pub fn fine_unwrap_or(x: Option<u32>) -> u32 {
    x.unwrap_or(7)
}

pub fn fine_unwrap_or_else(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 7)
}

pub fn fine_in_string() -> &'static str {
    "call .unwrap() and panic!(now)"
}

// A comment mentioning x.unwrap() and panic!() never fires.

pub fn suppressed(x: Option<u32>) -> u32 {
    x.unwrap() // sift-lint: allow(no-panic) — fixture exercises suppression
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

//! Fixture for the `lossy-cast` rule. Narrow destinations are flagged
//! everywhere; wide destinations only on strict paths (the harness runs
//! this file twice, once with the path configured strict).

pub fn bad_narrow_u32(x: u64) -> u32 {
    x as u32 //~ lossy-cast
}

pub fn bad_narrow_u8(x: usize) -> u8 {
    x as u8 //~ lossy-cast
}

pub fn bad_narrow_f32(x: f64) -> f32 {
    x as f32 //~ lossy-cast
}

pub fn wide_u64(x: u32) -> u64 {
    x as u64 //~strict lossy-cast
}

pub fn wide_f64(x: u64) -> f64 {
    x as f64 //~strict lossy-cast
}

pub fn fine_try_from(x: u64) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

pub fn fine_from(x: u8) -> u32 {
    u32::from(x)
}

pub fn fine_as_pattern(x: Option<u32>) {
    // `as` in a use declaration or pattern context has no numeric type
    // after it, so it never matches.
    if let Some(y) = x {
        let _ = y;
    }
}

pub fn suppressed(x: u64) -> u32 {
    x as u32 // sift-lint: allow(lossy-cast) — fixture exercises suppression
}

//! The lint's own acceptance gate: the workspace it ships in must be
//! clean under its shipped `Lint.toml`, and the README's rule table must
//! match the registry.

use sift_lint::{
    lint_workspace, load_config, render_text, rules_markdown, validate_rule_ids, Severity,
};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg = load_config(&root).expect("Lint.toml parses");
    validate_rule_ids(&cfg).expect("Lint.toml names only known rules");
    let findings = lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    let deny: Vec<_> = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .cloned()
        .collect();
    assert!(
        deny.is_empty(),
        "workspace has deny findings:\n{}",
        render_text(&deny)
    );
}

#[test]
fn readme_rule_table_matches_registry() {
    let readme = std::fs::read_to_string(workspace_root().join("README.md"))
        .expect("README.md exists at the workspace root");
    for line in rules_markdown().lines().filter(|l| !l.trim().is_empty()) {
        assert!(
            readme.contains(line),
            "README.md rule reference is stale; regenerate with \
             `cargo run -p sift-lint -- --rules-md`.\nmissing line: {line}"
        );
    }
}

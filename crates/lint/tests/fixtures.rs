//! Fixture-driven rule tests.
//!
//! Each fixture under `tests/fixtures/` seeds deliberate violations on
//! lines tagged `//~ <rule>` (or `//~strict <rule>` for findings that
//! only appear when the file is on a `strict_paths` glob). The harness
//! lints the fixture under a library-crate path and demands the reported
//! `(line, rule)` set match the tags *exactly* — so positives must fire
//! at the right line, and negatives/suppressions must stay silent.

use sift_lint::{lint_sources, Config, Finding};

fn expected_findings(src: &str, strict: bool) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let Some(rest) = line.split("//~").nth(1) else {
            continue;
        };
        let line_no = u32::try_from(i).unwrap_or(u32::MAX) + 1;
        if let Some(rule) = rest.strip_prefix("strict ") {
            if strict {
                out.push((line_no, rule.trim().to_owned()));
            }
        } else {
            out.push((line_no, rest.trim().to_owned()));
        }
    }
    out.sort();
    out
}

fn reported(findings: &[Finding], path: &str) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = findings
        .iter()
        .filter(|f| f.path == path)
        .map(|f| (f.line, f.rule.to_owned()))
        .collect();
    out.sort();
    out
}

fn check(name: &str, src: &str, cfg: &Config, strict: bool) {
    let path = format!("crates/fixture/src/{name}.rs");
    let findings = lint_sources(&[(path.clone(), src.to_owned())], cfg);
    assert_eq!(
        reported(&findings, &path),
        expected_findings(src, strict),
        "fixture {name} reported a different finding set"
    );
}

#[test]
fn no_panic_fixture() {
    check(
        "no_panic",
        include_str!("fixtures/no_panic.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn wall_clock_fixture() {
    check(
        "wall_clock",
        include_str!("fixtures/wall_clock.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn lossy_cast_fixture() {
    // Default path: only narrow destinations are flagged.
    check(
        "lossy_cast",
        include_str!("fixtures/lossy_cast.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn lossy_cast_strict_fixture() {
    // Same file on a strict path: wide destinations are flagged too.
    let mut cfg = Config::default();
    cfg.rules
        .entry("lossy-cast".to_owned())
        .or_default()
        .strict_paths = vec!["crates/fixture/src/lossy_cast.rs".to_owned()];
    check(
        "lossy_cast",
        include_str!("fixtures/lossy_cast.rs"),
        &cfg,
        true,
    );
}

#[test]
fn durable_write_fixture() {
    // Default path: not a persistence module, so the rule stays silent.
    check(
        "durable_write",
        include_str!("fixtures/durable_write.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn durable_write_strict_fixture() {
    // Same file named as a persistence module: raw installs are flagged.
    let mut cfg = Config::default();
    cfg.rules
        .entry("durable-write".to_owned())
        .or_default()
        .strict_paths = vec!["crates/fixture/src/durable_write.rs".to_owned()];
    check(
        "durable_write",
        include_str!("fixtures/durable_write.rs"),
        &cfg,
        true,
    );
}

#[test]
fn trace_span_fixture() {
    // Default path: not a pipeline module, so the rule stays silent.
    check(
        "trace_span",
        include_str!("fixtures/trace_span.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn trace_span_strict_fixture() {
    // Same file named as a pipeline module: bare enters are flagged.
    let mut cfg = Config::default();
    cfg.rules
        .entry("trace-span".to_owned())
        .or_default()
        .strict_paths = vec!["crates/fixture/src/trace_span.rs".to_owned()];
    check(
        "trace_span",
        include_str!("fixtures/trace_span.rs"),
        &cfg,
        true,
    );
}

#[test]
fn float_eq_fixture() {
    check(
        "float_eq",
        include_str!("fixtures/float_eq.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn no_print_fixture() {
    check(
        "no_print",
        include_str!("fixtures/no_print.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn route_obs_fixture() {
    check(
        "route_obs",
        include_str!("fixtures/route_obs.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn breaker_obs_fixture() {
    check(
        "breaker_obs",
        include_str!("fixtures/breaker_obs.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn serve_obs_fixture() {
    check(
        "serve_obs",
        include_str!("fixtures/serve_obs.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn swallowed_result_fixture() {
    check(
        "swallowed_result",
        include_str!("fixtures/swallowed_result.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn lock_order_fixture() {
    check(
        "lock_order",
        include_str!("fixtures/lock_order.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn lock_order_abba_fails_the_gate() {
    // The ABBA pair must come out at deny severity — the exit-1 gate.
    let src = include_str!("fixtures/lock_order.rs");
    let path = "crates/fixture/src/lock_order.rs".to_owned();
    let findings = lint_sources(&[(path, src.to_owned())], &Config::default());
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "lock-order" && f.severity == sift_lint::Severity::Deny),
        "an ABBA inversion must be a deny finding"
    );
}

#[test]
fn hot_alloc_fixture() {
    // Default path: not a strict perf path, so the rule stays silent.
    check(
        "hot_alloc",
        include_str!("fixtures/hot_alloc.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn hot_alloc_strict_fixture() {
    // Same file on a strict perf path: per-iteration allocs are flagged.
    let mut cfg = Config::default();
    cfg.rules
        .entry("hot-alloc".to_owned())
        .or_default()
        .strict_paths = vec!["crates/fixture/src/hot_alloc.rs".to_owned()];
    check(
        "hot_alloc",
        include_str!("fixtures/hot_alloc.rs"),
        &cfg,
        true,
    );
}

#[test]
fn deadline_propagation_fixture() {
    // Default path: not an egress path, so the rule stays silent.
    check(
        "deadline_propagation",
        include_str!("fixtures/deadline_propagation.rs"),
        &Config::default(),
        false,
    );
}

#[test]
fn deadline_propagation_strict_fixture() {
    // Same file on an egress path: undeadlined sends are flagged.
    let mut cfg = Config::default();
    cfg.rules
        .entry("deadline-propagation".to_owned())
        .or_default()
        .strict_paths = vec!["crates/fixture/src/deadline_propagation.rs".to_owned()];
    check(
        "deadline_propagation",
        include_str!("fixtures/deadline_propagation.rs"),
        &cfg,
        true,
    );
}

#[test]
fn fixtures_are_quiet_under_test_paths() {
    // The same violations under a `tests/` path: only rules that apply in
    // tests may fire. `no_panic.rs` seeds none of those, so it goes quiet.
    let src = include_str!("fixtures/no_panic.rs");
    let path = "crates/fixture/tests/no_panic.rs".to_owned();
    let findings = lint_sources(&[(path.clone(), src.to_owned())], &Config::default());
    assert!(
        reported(&findings, &path).is_empty(),
        "test paths must exempt non-test rules"
    );
}

//! A minimal JSON reader for the linter's own artifacts.
//!
//! The incremental cache and the findings baseline are JSON files the
//! linter writes itself ([`crate::report::render_json`]-style); this
//! parser reads them back. It is a strict recursive-descent parser over
//! the full JSON grammar — strings with escapes, numbers, nesting — but
//! with lint-tool error handling: any malformed input returns `None` and
//! the caller regenerates the artifact from scratch.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object field access by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u32(&self) -> Option<u32> {
        match self {
            // sift-lint: allow(float-eq) — exactness test, not a tolerance test: fract() of an integral f64 is exactly 0.0
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= f64::from(u32::MAX) => {
                // In-range integral f64 → u32 is exact.
                Some(*n as u32) // sift-lint: allow(lossy-cast) — range-checked above
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match b.get(*pos)? {
        b'n' => eat(b, pos, "null").map(|()| Json::Null),
        b't' => eat(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => eat(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                eat(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (multi-byte sequences intact).
                let start = *pos;
                *pos += 1;
                while b.get(*pos).is_some_and(|c| c & 0xc0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).ok()?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_findings_report() {
        let text = r#"{"findings":[{"path":"a.rs","line":3,"col":7,"rule":"no-panic","severity":"deny","message":"a \"quoted\" message"}],"total":1,"deny":1,"warn":0}"#;
        let v = Json::parse(text).expect("parses");
        let findings = v.get("findings").and_then(Json::as_arr).expect("arr");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("line").and_then(Json::as_u32), Some(3));
        assert_eq!(
            findings[0].get("message").and_then(Json::as_str),
            Some("a \"quoted\" message")
        );
        assert_eq!(v.get("deny").and_then(Json::as_u32), Some(1));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""tab\t nl\n unié slash\/""#).expect("parses");
        assert_eq!(v.as_str(), Some("tab\t nl\n uni\u{e9} slash/"));
        let v = Json::parse("\"caf\u{e9}\"").expect("raw utf8");
        assert_eq!(v.as_str(), Some("caf\u{e9}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\"}", "tru", "\"unterminated", "1 2", ""] {
            assert!(Json::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"files":{"a.rs":{"hash":"deadbeef","findings":[]}},"n":-1.5}"#)
            .expect("parses");
        let hash = v
            .get("files")
            .and_then(|f| f.get("a.rs"))
            .and_then(|f| f.get("hash"))
            .and_then(Json::as_str);
        assert_eq!(hash, Some("deadbeef"));
        assert_eq!(v.get("n"), Some(&Json::Num(-1.5)));
    }
}

//! The `sift-lint` command-line gate.

use sift_lint::{find_root, load_config, validate_rule_ids, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sift-lint — workspace-native static analysis for SIFT

USAGE:
    sift-lint [--json] [--root <dir>] [--config <file>]
    sift-lint --rules-md

OPTIONS:
    --json        machine-readable output (one JSON object)
    --root <dir>  workspace root (default: nearest ancestor with Lint.toml)
    --config <f>  config file (default: <root>/Lint.toml)
    --rules-md    print the generated rule-reference table and exit
    --help        this text

EXIT STATUS:
    0  clean, or warn-level findings only
    1  at least one deny-level finding
    2  usage, configuration or I/O error
";

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut config_arg: Option<PathBuf> = None;
    let mut rules_md = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rules-md" => rules_md = true,
            "--root" => match args.next() {
                Some(v) => root_arg = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_arg = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if rules_md {
        print!("{}", sift_lint::rules_markdown());
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root_arg.or_else(|| find_root(&cwd)).unwrap_or(cwd);

    let cfg = match config_arg {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => match sift_lint::Config::parse(&text) {
                Ok(cfg) => cfg,
                Err(e) => return config_error(&e.to_string()),
            },
            Err(e) => return config_error(&format!("{}: {e}", path.display())),
        },
        None => match load_config(&root) {
            Ok(cfg) => cfg,
            Err(e) => return config_error(&e.to_string()),
        },
    };
    if let Err(e) = validate_rule_ids(&cfg) {
        return config_error(&e);
    }

    let findings = match sift_lint::lint_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => return config_error(&format!("walking {}: {e}", root.display())),
    };

    if json {
        print!("{}", sift_lint::render_json(&findings));
    } else {
        print!("{}", sift_lint::render_text(&findings));
    }

    if findings.iter().any(|f| f.severity == Severity::Deny) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("sift-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn config_error(msg: &str) -> ExitCode {
    eprintln!("sift-lint: {msg}");
    ExitCode::from(2)
}

//! The `sift-lint` command-line gate.

use sift_lint::{
    cache, find_root, json::Json, load_config, validate_rule_ids, LintOptions, Severity,
    StaleReason,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sift-lint — workspace-native static analysis for SIFT

USAGE:
    sift-lint [--json] [--root <dir>] [--config <file>] [--cache]
              [--threads <n>] [--timing] [--baseline <file>]
    sift-lint --write-baseline <file>
    sift-lint --audit-allows
    sift-lint --rules-md

OPTIONS:
    --json             machine-readable output (one JSON object)
    --root <dir>       workspace root (default: nearest ancestor with Lint.toml)
    --config <f>       config file (default: <root>/Lint.toml)
    --cache            reuse results for unchanged files via
                       <root>/target/sift-lint-cache.json
    --threads <n>      worker threads for the parallel stages (default: cores)
    --timing           per-rule and per-file wall time on stderr
    --baseline <f>     ignore findings recorded in a baseline file
    --write-baseline <f>  record current findings as the baseline and exit 0
    --audit-allows     report stale inline `sift-lint: allow(...)` directives
    --rules-md         print the generated rule-reference table and exit
    --help             this text

EXIT STATUS:
    0  clean, or warn-level findings only
    1  at least one deny-level finding (or stale allow in --audit-allows)
    2  usage, configuration or I/O error
";

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut config_arg: Option<PathBuf> = None;
    let mut rules_md = false;
    let mut use_cache = false;
    let mut timing = false;
    let mut audit = false;
    let mut threads = 0usize;
    let mut baseline_arg: Option<PathBuf> = None;
    let mut write_baseline_arg: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rules-md" => rules_md = true,
            "--cache" => use_cache = true,
            "--timing" => timing = true,
            "--audit-allows" => audit = true,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return usage_error("--threads needs a number"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_arg = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline_arg = Some(PathBuf::from(v)),
                None => return usage_error("--write-baseline needs a value"),
            },
            "--root" => match args.next() {
                Some(v) => root_arg = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_arg = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if rules_md {
        print!("{}", sift_lint::rules_markdown());
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root_arg.or_else(|| find_root(&cwd)).unwrap_or(cwd);

    let config_path = config_arg.unwrap_or_else(|| root.join(sift_lint::CONFIG_FILE));
    let config_text = std::fs::read_to_string(&config_path).unwrap_or_default();
    let cfg = if config_text.is_empty() {
        match load_config(&root) {
            Ok(cfg) => cfg,
            Err(e) => return config_error(&e.to_string()),
        }
    } else {
        match sift_lint::Config::parse(&config_text) {
            Ok(cfg) => cfg,
            Err(e) => return config_error(&e.to_string()),
        }
    };
    if let Err(e) = validate_rule_ids(&cfg) {
        return config_error(&e);
    }

    if audit {
        return run_audit(&root, &cfg);
    }

    let opts = LintOptions { threads, timing };
    let report = if use_cache {
        let cache_path = root.join("target/sift-lint-cache.json");
        let fingerprint = cache::policy_fingerprint(&config_text);
        sift_lint::lint_workspace_cached(&root, &cfg, fingerprint, &cache_path, opts)
    } else {
        sift_lint::lint_workspace_opts(&root, &cfg, opts)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return config_error(&format!("walking {}: {e}", root.display())),
    };
    if let Some(e) = &report.cache_write_error {
        eprintln!("sift-lint: warning: could not write cache: {e}");
    }

    let mut findings = report.findings;
    if let Some(path) = &baseline_arg {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return config_error(&format!("{}: {e}", path.display())),
        };
        let Some(known) = baseline_keys(&text) else {
            return config_error(&format!("{}: not a findings baseline", path.display()));
        };
        let before = findings.len();
        findings.retain(|f| !known.contains(&(f.path.clone(), f.rule.to_owned(), f.line)));
        eprintln!(
            "sift-lint: baseline suppressed {} finding(s), {} remain",
            before - findings.len(),
            findings.len()
        );
    }

    if let Some(path) = &write_baseline_arg {
        if let Err(e) = std::fs::write(path, sift_lint::render_json(&findings)) {
            return config_error(&format!("{}: {e}", path.display()));
        }
        eprintln!(
            "sift-lint: wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", sift_lint::render_json(&findings));
    } else {
        print!("{}", sift_lint::render_text(&findings));
    }
    if let Some(t) = &report.timing {
        print_timing(t);
    }

    if findings.iter().any(|f| f.severity == Severity::Deny) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses a `render_json` document into `(path, rule, line)` keys.
fn baseline_keys(text: &str) -> Option<BTreeSet<(String, String, u32)>> {
    let doc = Json::parse(text)?;
    let mut keys = BTreeSet::new();
    for f in doc.get("findings")?.as_arr()? {
        keys.insert((
            f.get("path")?.as_str()?.to_owned(),
            f.get("rule")?.as_str()?.to_owned(),
            f.get("line")?.as_u32()?,
        ));
    }
    Some(keys)
}

fn run_audit(root: &std::path::Path, cfg: &sift_lint::Config) -> ExitCode {
    let stale = match sift_lint::audit_workspace(root, cfg) {
        Ok(s) => s,
        Err(e) => return config_error(&format!("walking {}: {e}", root.display())),
    };
    for s in &stale {
        let why = match s.reason {
            StaleReason::UnknownRule => "no such rule exists",
            StaleReason::NothingSuppressed => "it no longer covers any finding",
        };
        println!(
            "{}:{}: stale allow({}) — {why}; remove the directive",
            s.path, s.line, s.rule
        );
    }
    if stale.is_empty() {
        println!("sift-lint: every inline allow still earns its keep");
        ExitCode::SUCCESS
    } else {
        println!(
            "sift-lint: {} stale allow directive{}",
            stale.len(),
            if stale.len() == 1 { "" } else { "s" }
        );
        ExitCode::from(1)
    }
}

fn print_timing(t: &sift_lint::TimingReport) {
    eprintln!("sift-lint timing: total {:?}", t.total);
    if t.files_reused > 0 {
        eprintln!("  cache: {} file(s) reused", t.files_reused);
    }
    for (id, d) in &t.per_rule {
        eprintln!("  rule {id:<22} {d:?}");
    }
    let mut slowest: Vec<&(String, std::time::Duration)> = t.per_file.iter().collect();
    slowest.sort_by_key(|b| std::cmp::Reverse(b.1));
    for (path, d) in slowest.iter().take(10) {
        eprintln!("  file {path:<40} {d:?}");
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("sift-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn config_error(msg: &str) -> ExitCode {
    eprintln!("sift-lint: {msg}");
    ExitCode::from(2)
}

//! Per-file lint context: token stream, test regions, suppressions.

use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};
use crate::scope::FileScopes;
use std::collections::{BTreeMap, BTreeSet};

/// One inline `// sift-lint: allow(rule)` / `allow-file(rule)` directive,
/// kept for the `--audit-allows` staleness report.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    pub rule: String,
    /// Line of the comment carrying the directive.
    pub line: u32,
    pub file_wide: bool,
    /// Lines the directive suppresses (empty for file-wide).
    pub covered: BTreeSet<u32>,
}

/// A lexed file plus everything rules need to decide applicability.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Code tokens (comments stripped).
    pub code: Vec<Token>,
    /// The scope pass over `code`: token tree, fn items, impls, loops,
    /// lock declarations.
    pub scopes: FileScopes,
    /// Whole file is test context (under `tests/`, `benches/`, …).
    pub is_test_file: bool,
    /// Whole file is binary/tool context (under `src/bin/`, …).
    pub is_bin_file: bool,
    /// Every inline allow directive, for `--audit-allows`.
    pub directives: Vec<AllowDirective>,
    /// Inclusive line ranges under `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(u32, u32)>,
    /// rule id → lines where it is suppressed inline.
    suppressed: BTreeMap<String, BTreeSet<u32>>,
    /// Rules suppressed for the whole file via `allow-file`.
    file_suppressed: BTreeSet<String>,
}

impl FileCtx {
    pub fn new(path: &str, source: &str, cfg: &Config) -> FileCtx {
        let tokens = lex(source);
        let mut code = Vec::with_capacity(tokens.len());
        let mut comments = Vec::new();
        for t in tokens {
            if t.is_comment() {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let code_lines: BTreeSet<u32> = code.iter().map(|t| t.line).collect();
        let mut suppressed: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        let mut file_suppressed = BTreeSet::new();
        let mut directives = Vec::new();
        for t in &comments {
            collect_suppressions(
                t,
                &code_lines,
                &mut suppressed,
                &mut file_suppressed,
                &mut directives,
            );
        }
        let test_regions = find_test_regions(&code);
        let scopes = FileScopes::analyze(&code);

        FileCtx {
            path: path.to_owned(),
            code,
            scopes,
            is_test_file: cfg.is_test_path(path),
            is_bin_file: cfg.is_bin_path(path),
            directives,
            test_regions,
            suppressed,
            file_suppressed,
        }
    }

    /// True when `line` sits in test context (test file, or inside a
    /// `#[cfg(test)]` module / `#[test]` function).
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// True when `rule` is suppressed at `line` by an inline
    /// `// sift-lint: allow(rule)` (same line or the line above) or a
    /// file-wide `// sift-lint: allow-file(rule)`.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.file_suppressed.contains(rule)
            || self
                .suppressed
                .get(rule)
                .is_some_and(|lines| lines.contains(&line))
    }
}

/// Parses `sift-lint: allow(a, b)` / `sift-lint: allow-file(a)` directives
/// out of one comment token. A *trailing* `allow` (code on the same line)
/// covers exactly that line; a *standalone* comment line covers the next
/// line instead:
///
/// ```text
/// x.unwrap(); // sift-lint: allow(no-panic) — poisoning is fatal anyway
/// // sift-lint: allow(no-panic) — poisoning is fatal anyway
/// x.unwrap();
/// ```
fn collect_suppressions(
    comment: &Token,
    code_lines: &BTreeSet<u32>,
    suppressed: &mut BTreeMap<String, BTreeSet<u32>>,
    file_suppressed: &mut BTreeSet<String>,
    directives: &mut Vec<AllowDirective>,
) {
    // Doc comments (`///`, `//!`, `/**`, `/*!`) *describe* the directive
    // syntax — rustdoc prose never suppresses anything.
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|d| comment.text.starts_with(d))
    {
        return;
    }
    let Some(rest) = comment.text.split("sift-lint:").nth(1) else {
        return;
    };
    for (marker, file_wide) in [("allow-file(", true), ("allow(", false)] {
        let Some(args) = rest.split(marker).nth(1).and_then(|a| a.split(')').next()) else {
            continue;
        };
        for rule in args.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            if file_wide {
                file_suppressed.insert(rule.to_owned());
                directives.push(AllowDirective {
                    rule: rule.to_owned(),
                    line: comment.line,
                    file_wide: true,
                    covered: BTreeSet::new(),
                });
            } else {
                let lines = suppressed.entry(rule.to_owned()).or_default();
                let mut covered = BTreeSet::new();
                // Cover the comment's own extent (block comments span).
                let span = u32::try_from(comment.text.matches('\n').count()).unwrap_or(u32::MAX);
                let end_line = comment.line.saturating_add(span);
                for l in comment.line..=end_line {
                    covered.insert(l);
                }
                // Standalone comments (no code token where the comment
                // ends) suppress the line that follows them.
                if !code_lines.contains(&end_line) {
                    covered.insert(end_line + 1);
                }
                lines.extend(covered.iter().copied());
                directives.push(AllowDirective {
                    rule: rule.to_owned(),
                    line: comment.line,
                    file_wide: false,
                    covered,
                });
            }
        }
    }
}

/// Finds line ranges of items annotated with a test-ish attribute:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[tokio::test]`.
///
/// Token-level scan: on such an attribute, skip any further attributes,
/// then take the following item's extent — to the matching `}` if the item
/// opens a brace, or to the `;` for `mod tests;` forms (which span nothing
/// here; the out-of-line file is classified by its own path).
fn find_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].kind == TokKind::Punct && code[i].text == "#") {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        let Some((is_test, after_attr)) = parse_attribute(code, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = after_attr;
            continue;
        }
        // Skip stacked attributes between the test attribute and the item.
        let mut j = after_attr;
        while j < code.len() && code[j].kind == TokKind::Punct && code[j].text == "#" {
            match parse_attribute(code, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // Find the item's body start (`{`) or terminating `;`.
        while j < code.len() {
            if code[j].kind == TokKind::Punct {
                if code[j].text == "{" {
                    let close = match_brace(code, j);
                    let end_line = code
                        .get(close)
                        .map_or(code[code.len() - 1].line, |t| t.line);
                    regions.push((attr_line, end_line));
                    j = close + 1;
                    break;
                }
                if code[j].text == ";" {
                    regions.push((attr_line, code[j].line));
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        i = j.max(after_attr);
    }
    regions
}

/// Parses the attribute starting at the `#` at `i`. Returns whether its
/// token soup mentions `test`, and the index just past the closing `]`.
fn parse_attribute(code: &[Token], i: usize) -> Option<(bool, usize)> {
    let open = code.get(i + 1)?;
    if !(open.kind == TokKind::Punct && open.text == "[") {
        return None;
    }
    let mut depth = 0i32;
    let mut is_test = false;
    let mut j = i + 1;
    while j < code.len() {
        let t = &code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((is_test, j + 1));
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident && t.text == "test" {
            is_test = true;
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    code.len().saturating_sub(1)
}

/// The contents of a string-literal token (quotes, prefixes and raw
/// fences stripped; escapes left as written — route paths don't use any).
pub fn str_literal_content(text: &str) -> &str {
    let t = text
        .trim_start_matches(['b', 'c'])
        .trim_start_matches('r')
        .trim_matches('#');
    t.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/x/src/lib.rs", src, &Config::default())
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let c = ctx("fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n");
        assert!(!c.in_test(1));
        assert!(c.in_test(2));
        assert!(c.in_test(4));
        assert!(c.in_test(5));
        assert!(!c.in_test(6));
    }

    #[test]
    fn test_fn_with_stacked_attributes() {
        let c = ctx("#[test]\n#[should_panic]\nfn t() {\n  boom();\n}\nfn prod() {}\n");
        assert!(c.in_test(4));
        assert!(!c.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let c = ctx("#[cfg(feature = \"x\")]\nfn prod() {\n  work();\n}\n");
        assert!(!c.in_test(3));
    }

    #[test]
    fn test_files_are_test_context_throughout() {
        let c = FileCtx::new("crates/x/tests/prop.rs", "fn f() {}\n", &Config::default());
        assert!(c.in_test(1));
    }

    #[test]
    fn inline_suppressions_cover_their_line_and_the_next() {
        let c = ctx(
            "fn f() {\n  x(); // sift-lint: allow(no-panic) — reason\n  y();\n  // sift-lint: allow(float-eq, lossy-cast)\n  z();\n}\n",
        );
        assert!(c.is_suppressed("no-panic", 2));
        assert!(
            !c.is_suppressed("no-panic", 3),
            "trailing covers only its line"
        );
        assert!(!c.is_suppressed("no-panic", 5));
        assert!(c.is_suppressed("float-eq", 5));
        assert!(c.is_suppressed("lossy-cast", 5));
        assert!(!c.is_suppressed("float-eq", 2));
    }

    #[test]
    fn doc_comment_examples_are_not_directives() {
        let c = ctx(
            "/// `x // sift-lint: allow(no-panic)` excuses one line\nfn f() {\n  x();\n}\n//! // sift-lint: allow-file(no-print)\n",
        );
        assert!(!c.is_suppressed("no-panic", 1));
        assert!(!c.is_suppressed("no-panic", 2));
        assert!(!c.is_suppressed("no-print", 3));
        assert!(c.directives.is_empty());
    }

    #[test]
    fn allow_file_covers_everything() {
        let c = ctx("// sift-lint: allow-file(no-print) — CLI tool\nfn f() {}\n");
        assert!(c.is_suppressed("no-print", 999));
        assert!(!c.is_suppressed("no-panic", 1));
    }

    #[test]
    fn str_literal_content_strips_delimiters() {
        assert_eq!(str_literal_content("\"/api/frame\""), "/api/frame");
        assert_eq!(str_literal_content("r#\"raw\"#"), "raw");
        assert_eq!(str_literal_content("b\"bytes\""), "bytes");
    }
}

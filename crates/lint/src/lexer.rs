//! A small Rust lexer, exact where it matters for linting.
//!
//! The rules in this crate must never fire on text inside string literals,
//! char literals, or comments — `"never unwrap() in prod"` in a doc string
//! is not a violation. The lexer therefore recognises every Rust literal
//! form (escaped strings, raw strings with arbitrary `#` fences, byte and
//! C strings, char-vs-lifetime disambiguation, nested block comments) and
//! emits a token stream with line/column positions. It does not attempt to
//! parse: rules work on token patterns, which is all they need.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `unwrap`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xff_u8`).
    Int,
    /// Float literal (`1.0`, `6e23`, `2f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, possibly multi-char (`==`, `::`, `->`, `{`).
    Punct,
    /// Line comment including doc comments (`// …`, `/// …`).
    LineComment,
    /// Block comment including doc comments (`/* … */`), nesting handled.
    BlockComment,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-char punctuation recognised greedily, longest first.
const PUNCT3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "::", "&&", "||", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenises `src`. The lexer is total: unknown bytes become single-char
/// punctuation rather than errors, so a half-written file still lints.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        let tok = |kind: TokKind, c: &Cursor, start: usize| Token {
            kind,
            text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
            line,
            col,
        };

        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        // Comments.
        if b == b'/' && c.peek(1) == Some(b'/') {
            while let Some(n) = c.peek(0) {
                if n == b'\n' {
                    break;
                }
                c.bump();
            }
            out.push(tok(TokKind::LineComment, &c, start));
            continue;
        }
        if b == b'/' && c.peek(1) == Some(b'*') {
            c.bump();
            c.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (c.peek(0), c.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        c.bump();
                        c.bump();
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        c.bump();
                        c.bump();
                    }
                    (Some(_), _) => {
                        c.bump();
                    }
                    (None, _) => break, // unterminated: EOF ends the comment
                }
            }
            out.push(tok(TokKind::BlockComment, &c, start));
            continue;
        }

        // Raw / byte / C strings: r"…", r#"…"#, b"…", br#"…"#, c"…".
        if let Some(n) = raw_or_prefixed_string(&c) {
            for _ in 0..n {
                c.bump();
            }
            out.push(tok(TokKind::Str, &c, start));
            continue;
        }

        // Byte-char literals: `b'x'`, `b'\''`. Recognised before the
        // identifier branch so the `b` prefix cannot leak out as its own
        // ident (and before the quote branch so `'` is not misread as a
        // lifetime when the previous token ends in `b`, as in `&'a b'x'`).
        if b == b'b' && c.peek(1) == Some(b'\'') {
            c.bump(); // b
            c.bump(); // opening quote
            lex_quoted(&mut c, b'\'');
            out.push(tok(TokKind::Char, &c, start));
            continue;
        }

        // Plain strings.
        if b == b'"' {
            c.bump();
            lex_quoted(&mut c, b'"');
            out.push(tok(TokKind::Str, &c, start));
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            if is_char_literal(&c) {
                c.bump();
                lex_quoted(&mut c, b'\'');
                out.push(tok(TokKind::Char, &c, start));
            } else {
                c.bump(); // the quote
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.push(tok(TokKind::Lifetime, &c, start));
            }
            continue;
        }

        // Numbers (leading digit; `.5` floats don't exist in Rust).
        if b.is_ascii_digit() {
            let kind = lex_number(&mut c);
            out.push(tok(kind, &c, start));
            continue;
        }

        // Identifiers and keywords (including r#raw idents).
        if is_ident_start(b) || (b == b'r' && c.peek(1) == Some(b'#')) {
            if b == b'r' && c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) {
                c.bump();
                c.bump();
            }
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            out.push(tok(TokKind::Ident, &c, start));
            continue;
        }

        // Punctuation, longest match first.
        let mut matched = false;
        for set in [PUNCT3, PUNCT2] {
            if let Some(p) = set.iter().find(|p| c.starts_with(p)) {
                for _ in 0..p.len() {
                    c.bump();
                }
                out.push(tok(TokKind::Punct, &c, start));
                matched = true;
                break;
            }
        }
        if !matched {
            c.bump();
            out.push(tok(TokKind::Punct, &c, start));
        }
    }

    out
}

/// A recognised raw/prefixed string opener: how many bytes of prefix
/// (`b`/`c`/`r` run) precede the fence, how many `#`s fence the literal,
/// and whether the body is raw (no escapes).
struct StrOpener {
    /// Bytes before the fence: the `b`/`c`/`c r`/`b r` prefix run.
    prefix: usize,
    /// `#` count; the closer must repeat exactly this many.
    hashes: usize,
    /// Raw literals take no escapes and close only on `"` + fence.
    raw: bool,
}

/// Parses the opener of a raw/byte/C string at the start of `rest`:
/// optional one-byte `b`/`c` prefix, optional `r`, then a uniform `#`
/// fence of any length (so `br"…"`, `br#"…"#` and `br###"…"###` all
/// resolve the same way), then the opening quote. Returns `None` when no
/// prefixed/raw string starts here (plain `"…"` is the caller's case).
fn raw_opener_len(rest: &[u8]) -> Option<StrOpener> {
    let mut prefix = 0usize;
    if matches!(rest.first(), Some(b'b' | b'c')) {
        prefix += 1;
    }
    let raw = rest.get(prefix).copied() == Some(b'r');
    if raw {
        prefix += 1;
    }
    let mut hashes = 0usize;
    while rest.get(prefix + hashes).copied() == Some(b'#') {
        hashes += 1;
    }
    if !raw && hashes > 0 {
        return None; // b#… is not a string
    }
    if rest.get(prefix + hashes).copied() != Some(b'"') {
        return None;
    }
    if prefix == 0 && hashes == 0 {
        return None; // plain `"` handled by the caller
    }
    Some(StrOpener {
        prefix,
        hashes,
        raw,
    })
}

/// Length in bytes of a raw/byte/C string at the cursor, if one starts
/// here: the whole literal is measured and returned.
fn raw_or_prefixed_string(c: &Cursor) -> Option<usize> {
    let rest = &c.src[c.pos..];
    let StrOpener {
        prefix,
        hashes,
        raw,
    } = raw_opener_len(rest)?;
    if !raw {
        // b"…" / c"…": escaped string with a one-byte prefix.
        let mut j = prefix + 1;
        while j < rest.len() {
            match rest[j] {
                b'\\' => j += 2,
                b'"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(rest.len());
    }
    // Raw string: scan for `"` followed by `hashes` hashes, no escapes.
    let mut j = prefix + hashes + 1;
    while j < rest.len() {
        if rest[j] == b'"' {
            let close = &rest[j + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&h| h == b'#') {
                return Some(j + 1 + hashes);
            }
        }
        j += 1;
    }
    Some(rest.len())
}

/// True when the `'` at the cursor opens a char literal rather than a
/// lifetime: `'\…'`, `'x'`, but not `'a` (lifetime) or `'a.cmp(…)`.
fn is_char_literal(c: &Cursor) -> bool {
    match c.peek(1) {
        Some(b'\\') => true,
        Some(n) if is_ident_continue(n) => {
            // 'a' is a char; 'a (no closing quote after the ident run) is
            // a lifetime. Scan the ident run.
            let mut k = 2;
            while c.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            c.peek(k) == Some(b'\'')
        }
        Some(b'\'') => false, // '' is not valid; treat as punct-ish char lit
        Some(_) => true,      // '(' etc: char literal like '('
        None => false,
    }
}

/// Consumes an escaped literal body up to the closing `quote`.
fn lex_quoted(c: &mut Cursor, quote: u8) {
    while let Some(b) = c.peek(0) {
        if b == b'\\' {
            c.bump();
            c.bump();
            continue;
        }
        c.bump();
        if b == quote {
            return;
        }
    }
}

/// Consumes a numeric literal, classifying int vs float.
fn lex_number(c: &mut Cursor) -> TokKind {
    let hex_oct_bin = c.peek(0) == Some(b'0')
        && matches!(c.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if hex_oct_bin {
        c.bump();
        c.bump();
        while c
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            c.bump();
        }
        return TokKind::Int;
    }

    let mut float = false;
    while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // A fractional part only if the dot is followed by a digit (so `1..2`
    // and `1.max(2)` stay integers).
    if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        c.bump();
        while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    } else if c.peek(0) == Some(b'.') && !c.peek(1).is_some_and(|b| is_ident_start(b) || b == b'.')
    {
        // Trailing-dot float: `1.` (but not `1..` or `1.abs()`).
        float = true;
        c.bump();
    }
    // Exponent.
    if matches!(c.peek(0), Some(b'e' | b'E')) {
        let (sign, digit) = (c.peek(1), c.peek(2));
        let has_exp = match sign {
            Some(b'+' | b'-') => digit.is_some_and(|b| b.is_ascii_digit()),
            Some(b) => b.is_ascii_digit(),
            None => false,
        };
        if has_exp {
            float = true;
            c.bump(); // e
            if matches!(c.peek(0), Some(b'+' | b'-')) {
                c.bump();
            }
            while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
    }
    // Suffix (u8, i64, f32, …) decides floatness for `2f64`.
    let suffix_start = c.pos;
    while c.peek(0).is_some_and(is_ident_continue) {
        c.bump();
    }
    let suffix = &c.src[suffix_start..c.pos];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap() == 1.0";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r##"let s = r#"a "quoted" panic!()"#; x"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "x"]);
    }

    #[test]
    fn byte_strings_and_c_strings() {
        let toks = kinds(r##"b"127.0.0.1" c"null" br#"raw"# b'x'"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        // The float-looking bytes inside b"127.0.0.1" must not leak out.
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn byte_char_is_one_token() {
        let toks = kinds("b'x'");
        assert_eq!(toks, vec![(TokKind::Char, "b'x'".to_owned())]);
        // The escaped-quote and escaped-backslash bodies close correctly.
        assert_eq!(kinds(r"b'\''"), vec![(TokKind::Char, r"b'\''".to_owned())]);
        assert_eq!(kinds(r"b'\\'"), vec![(TokKind::Char, r"b'\\'".to_owned())]);
        assert_eq!(kinds(r"b'\n'"), vec![(TokKind::Char, r"b'\n'".to_owned())]);
    }

    #[test]
    fn byte_char_adjacent_to_lifetime_tick() {
        // `&'a b'x'` must lex as lifetime + byte char: the `b` prefix may
        // not leak out as an identifier, and the tick after `b` may not be
        // misread as opening another lifetime.
        let toks = kinds("&'a b'x'");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes, [&(TokKind::Lifetime, "'a".to_owned())]);
        assert_eq!(chars, [&(TokKind::Char, "b'x'".to_owned())]);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "b"));
    }

    #[test]
    fn byte_raw_strings_with_multi_hash_fences() {
        // The fence length is uniform across prefixes: `br`, `cr` and `r`
        // all take any number of `#`s, and an inner `"#` must not close a
        // `##` fence early.
        for src in [
            r###"br##"has "# inside"##"###,
            r###"cr##"has "# inside"##"###,
            r###"r##"has "# inside"##"###,
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src} must be one token: {toks:?}");
            assert_eq!(toks[0].0, TokKind::Str);
            assert_eq!(toks[0].1, src);
        }
        let toks = kinds(r####"br###"x"###y"####);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "y".to_owned()));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn number_classification() {
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1e5")[0].0, TokKind::Float);
        assert_eq!(kinds("2.5e-3")[0].0, TokKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokKind::Int);
        assert_eq!(kinds("42u8")[0].0, TokKind::Int);
        // Ranges and method calls on ints stay ints.
        let r = kinds("1..2");
        assert_eq!(r[0].0, TokKind::Int);
        assert_eq!(r[1].1, "..");
        let m = kinds("1.max(2)");
        assert_eq!(m[0].0, TokKind::Int);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn multichar_punct_and_positions() {
        let toks = lex("a == b\n  c != 1.5");
        let eq = toks.iter().find(|t| t.text == "==").expect("==");
        assert_eq!((eq.line, eq.col), (1, 3));
        let ne = toks.iter().find(|t| t.text == "!=").expect("!=");
        assert_eq!((ne.line, ne.col), (2, 5));
        let f = toks.iter().find(|t| t.kind == TokKind::Float).expect("f");
        assert_eq!(f.text, "1.5");
    }

    #[test]
    fn line_comment_suppression_text_survives() {
        let toks = lex("x(); // sift-lint: allow(no-panic) — justified");
        let c = toks.iter().find(|t| t.is_comment()).expect("comment");
        assert!(c.text.contains("allow(no-panic)"));
    }
}

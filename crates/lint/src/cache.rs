//! The incremental result cache (`target/sift-lint-cache.json`).
//!
//! Findings are a pure function of (file contents, policy, rule set), so
//! they can be memoized: each file's admitted per-file findings are
//! stored under an FNV-1a hash of its contents, and the workspace rules'
//! findings under a hash of the whole file/hash listing. A fingerprint of
//! the policy text plus the compiled-in rule registry guards the entire
//! cache: change `Lint.toml` or the rules themselves and every entry is
//! discarded at once.
//!
//! The reader is deliberately paranoid — any malformed field, unknown
//! rule id or version skew makes [`load`] return `None` and the caller
//! lints from scratch. A cache can only ever cost a rebuild, never a
//! wrong answer.

use crate::config::Severity;
use crate::engine::Finding;
use crate::json::Json;
use crate::report::json_str;
use crate::rules::registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Bumped whenever the on-disk shape changes; old caches are discarded.
pub const CACHE_VERSION: u32 = 1;

/// 64-bit FNV-1a: tiny, dependency-free, and plenty for change detection
/// (a collision needs two different sources in the same workspace history
/// hashing alike — the failure mode is a stale lint, caught by CI's cold
/// run).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Fingerprint of everything that turns sources into findings besides the
/// sources themselves: the policy text and the compiled-in registry
/// (ids, defaults, scope flags — a rule edit that changes any of those
/// invalidates the cache; one that only changes a checker's behavior is
/// caught by the version bump discipline plus CI's cold run).
pub fn policy_fingerprint(config_text: &str) -> u64 {
    let mut key = String::new();
    let _ = write!(key, "v{CACHE_VERSION};");
    key.push_str(config_text);
    for r in registry() {
        let _ = write!(
            key,
            ";{}|{}|{}|{}|{}|{}",
            r.id, r.default_severity, r.applies_in_tests, r.skips_bins, r.summary, r.rationale
        );
    }
    fnv1a(key.as_bytes())
}

/// Per-file entry: content hash plus the admitted per-file-rule findings.
#[derive(Clone, Debug)]
pub struct CachedFile {
    pub hash: u64,
    pub findings: Vec<Finding>,
}

/// The whole cache file.
#[derive(Clone, Debug, Default)]
pub struct Cache {
    pub fingerprint: u64,
    pub files: BTreeMap<String, CachedFile>,
    /// Hash of the full `(path, hash)` listing the workspace findings
    /// were computed over.
    pub workspace_hash: u64,
    pub workspace: Vec<Finding>,
}

/// Serializes a cache to its JSON form.
pub fn save(cache: &Cache) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"version\":{CACHE_VERSION},\"fingerprint\":\"{:016x}\",\"files\":[",
        cache.fingerprint
    );
    for (i, (path, f)) in cache.files.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":{},\"hash\":\"{:016x}\",\"findings\":[",
            json_str(path),
            f.hash
        );
        write_findings(&mut out, &f.findings);
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "],\"workspace\":{{\"hash\":\"{:016x}\",\"findings\":[",
        cache.workspace_hash
    );
    write_findings(&mut out, &cache.workspace);
    out.push_str("]}}\n");
    out
}

fn write_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.severity.to_string()),
            json_str(&f.message),
        );
    }
}

/// Parses a cache file; `None` on any version, shape or content problem.
pub fn load(text: &str) -> Option<Cache> {
    let doc = Json::parse(text)?;
    if doc.get("version")?.as_u32()? != CACHE_VERSION {
        return None;
    }
    let fingerprint = parse_hash(doc.get("fingerprint")?)?;
    let mut files = BTreeMap::new();
    for entry in doc.get("files")?.as_arr()? {
        let path = entry.get("path")?.as_str()?.to_owned();
        let hash = parse_hash(entry.get("hash")?)?;
        let findings = parse_findings(entry.get("findings")?, Some(&path))?;
        files.insert(path, CachedFile { hash, findings });
    }
    let ws = doc.get("workspace")?;
    Some(Cache {
        fingerprint,
        files,
        workspace_hash: parse_hash(ws.get("hash")?)?,
        workspace: parse_findings(ws.get("findings")?, None)?,
    })
}

fn parse_hash(v: &Json) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

fn parse_findings(v: &Json, expect_path: Option<&str>) -> Option<Vec<Finding>> {
    let rules = registry();
    let mut out = Vec::new();
    for f in v.as_arr()? {
        let path = f.get("path")?.as_str()?;
        if expect_path.is_some_and(|p| p != path) {
            return None;
        }
        // Rule ids intern back to the registry's `'static` strings; an id
        // the binary no longer knows invalidates the whole cache.
        let rule_id = f.get("rule")?.as_str()?;
        let rule = rules.iter().find(|r| r.id == rule_id)?.id;
        out.push(Finding {
            path: path.to_owned(),
            line: f.get("line")?.as_u32()?,
            col: f.get("col")?.as_u32()?,
            rule,
            severity: Severity::parse(f.get("severity")?.as_str()?)?,
            message: f.get("message")?.as_str()?.to_owned(),
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32) -> Finding {
        Finding {
            path: path.to_owned(),
            line,
            col: 3,
            rule: "no-panic",
            severity: Severity::Deny,
            message: "don't \"panic\"".to_owned(),
        }
    }

    fn sample() -> Cache {
        let mut files = BTreeMap::new();
        files.insert(
            "crates/x/src/lib.rs".to_owned(),
            CachedFile {
                hash: 0xdead_beef,
                findings: vec![finding("crates/x/src/lib.rs", 7)],
            },
        );
        Cache {
            fingerprint: 42,
            files,
            workspace_hash: 0xfeed,
            workspace: vec![finding("crates/y/src/lib.rs", 1)],
        }
    }

    #[test]
    fn round_trips() {
        let cache = sample();
        let loaded = load(&save(&cache)).expect("load");
        assert_eq!(loaded.fingerprint, 42);
        assert_eq!(loaded.workspace_hash, 0xfeed);
        assert_eq!(loaded.files.len(), 1);
        let f = &loaded.files["crates/x/src/lib.rs"];
        assert_eq!(f.hash, 0xdead_beef);
        assert_eq!(f.findings.len(), 1);
        assert_eq!(f.findings[0].line, 7);
        assert_eq!(f.findings[0].rule, "no-panic");
        assert_eq!(loaded.workspace.len(), 1);
    }

    #[test]
    fn unknown_rule_or_version_discards() {
        let text = save(&sample());
        assert!(load(&text.replace("no-panic", "no-such-rule")).is_none());
        assert!(load(&text.replace("\"version\":1", "\"version\":999")).is_none());
        assert!(load("{not json").is_none());
    }

    #[test]
    fn fingerprint_tracks_policy_text() {
        assert_ne!(policy_fingerprint("a = 1"), policy_fingerprint("a = 2"));
        assert_eq!(policy_fingerprint("same"), policy_fingerprint("same"));
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}

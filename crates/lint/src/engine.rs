//! Walks the workspace, runs every rule, applies policy and suppressions.
//!
//! The engine runs in three stages: per-file context construction
//! (lex → token tree → scope pass), the per-file rules, and the
//! workspace rules. The first two stages are embarrassingly parallel and
//! fan out across worker threads with an atomic work-stealing cursor;
//! the workspace rules need every [`FileCtx`] at once and run serially.
//! Findings are sorted by position at the end, so parallel and serial
//! runs produce byte-identical reports.

use crate::cache::{self, fnv1a, Cache, CachedFile};
use crate::config::{Config, Severity};
use crate::context::FileCtx;
use crate::rules::{registry, RawFinding, Rule, RuleKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A finished, policy-applied finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

/// Engine knobs the CLI exposes.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintOptions {
    /// Worker threads for the parallel stages (`0` = one per core).
    pub threads: usize,
    /// Collect per-rule and per-file wall time.
    pub timing: bool,
}

/// Wall-time accounting for `--timing`.
#[derive(Clone, Debug, Default)]
pub struct TimingReport {
    /// Rule id → total time across all files, reporting order.
    pub per_rule: Vec<(&'static str, Duration)>,
    /// Path → context build + per-file rule time.
    pub per_file: Vec<(String, Duration)>,
    pub total: Duration,
    /// Files served from the incremental cache (cached runs only).
    pub files_reused: usize,
}

/// Findings plus optional accounting.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub timing: Option<TimingReport>,
    /// A cache that could not be written back (the lint itself is fine).
    pub cache_write_error: Option<String>,
}

/// Lints in-memory sources (used by fixture tests and by
/// [`lint_workspace`] after reading files).
pub fn lint_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    lint_sources_opts(sources, cfg, LintOptions::default()).findings
}

/// [`lint_sources`] with explicit engine options.
pub fn lint_sources_opts(
    sources: &[(String, String)],
    cfg: &Config,
    opts: LintOptions,
) -> LintReport {
    let started = Instant::now();
    let threads = worker_count(opts.threads, sources.len());
    let (contexts, mut file_time) = build_contexts(sources, cfg, threads);

    let mut rule_time: BTreeMap<&'static str, Duration> = BTreeMap::new();
    let want: Vec<bool> = vec![true; contexts.len()];
    let per_file = per_file_pass(
        &contexts,
        cfg,
        threads,
        &want,
        &mut rule_time,
        &mut file_time,
    );

    let mut findings: Vec<Finding> = per_file.into_iter().flatten().collect();
    findings.extend(workspace_pass(&contexts, cfg, &mut rule_time));
    sort_findings(&mut findings);

    LintReport {
        findings,
        timing: opts
            .timing
            .then(|| timing_report(rule_time, file_time, started.elapsed(), 0)),
        cache_write_error: None,
    }
}

fn worker_count(requested: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = if requested == 0 { auto } else { requested };
    n.min(jobs).max(1)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
}

fn timing_report(
    rule_time: BTreeMap<&'static str, Duration>,
    file_time: Vec<(String, Duration)>,
    total: Duration,
    files_reused: usize,
) -> TimingReport {
    // Report rules in registry order so the output is stable.
    let per_rule = registry()
        .iter()
        .filter_map(|r| rule_time.get(r.id).map(|d| (r.id, *d)))
        .collect();
    TimingReport {
        per_rule,
        per_file: file_time,
        total,
        files_reused,
    }
}

/// Builds every [`FileCtx`] across `threads` workers; returns contexts in
/// source order plus per-file build time.
fn build_contexts(
    sources: &[(String, String)],
    cfg: &Config,
    threads: usize,
) -> (Vec<FileCtx>, Vec<(String, Duration)>) {
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, FileCtx, Duration)> = Vec::with_capacity(sources.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((path, text)) = sources.get(i) else {
                            break local;
                        };
                        let built = Instant::now();
                        let ctx = FileCtx::new(path, text, cfg);
                        local.push((i, ctx, built.elapsed()));
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => parts.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    parts.sort_by_key(|&(i, _, _)| i);
    let mut contexts = Vec::with_capacity(parts.len());
    let mut times = Vec::with_capacity(parts.len());
    for (_, ctx, took) in parts {
        times.push((ctx.path.clone(), took));
        contexts.push(ctx);
    }
    (contexts, times)
}

/// Runs every per-file rule over the contexts selected by `want`, in
/// parallel. Returns findings grouped by context index (empty groups for
/// unselected files); accumulates per-rule and per-file wall time.
fn per_file_pass(
    contexts: &[FileCtx],
    cfg: &Config,
    threads: usize,
    want: &[bool],
    rule_time: &mut BTreeMap<&'static str, Duration>,
    file_time: &mut [(String, Duration)],
) -> Vec<Vec<Finding>> {
    struct Part {
        idx: usize,
        findings: Vec<Finding>,
        rule_time: Vec<(&'static str, Duration)>,
        took: Duration,
    }
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Part> = Vec::with_capacity(contexts.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let rules = registry();
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(ctx) = contexts.get(idx) else {
                            break local;
                        };
                        if !want[idx] {
                            continue;
                        }
                        let file_started = Instant::now();
                        let mut findings = Vec::new();
                        let mut times = Vec::new();
                        for rule in &rules {
                            let RuleKind::PerFile(check) = &rule.kind else {
                                continue;
                            };
                            let severity = cfg.severity(rule.id, rule.default_severity);
                            if severity == Severity::Allow || !rule_applies_to(rule, ctx, cfg) {
                                continue;
                            }
                            let rule_started = Instant::now();
                            let mut raw = Vec::new();
                            check(ctx, cfg, &mut raw);
                            admit(rule, severity, ctx, raw, true, &mut findings);
                            times.push((rule.id, rule_started.elapsed()));
                        }
                        local.push(Part {
                            idx,
                            findings,
                            rule_time: times,
                            took: file_started.elapsed(),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => parts.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut grouped: Vec<Vec<Finding>> = Vec::new();
    grouped.resize_with(contexts.len(), Vec::new);
    for part in parts {
        for (id, d) in part.rule_time {
            *rule_time.entry(id).or_default() += d;
        }
        if let Some(slot) = file_time.get_mut(part.idx) {
            slot.1 += part.took;
        }
        grouped[part.idx] = part.findings;
    }
    grouped
}

/// Runs the workspace rules (serial: they need every context at once).
fn workspace_pass(
    contexts: &[FileCtx],
    cfg: &Config,
    rule_time: &mut BTreeMap<&'static str, Duration>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in registry() {
        let RuleKind::Workspace(check) = &rule.kind else {
            continue;
        };
        let check = *check;
        let severity = cfg.severity(rule.id, rule.default_severity);
        if severity == Severity::Allow {
            continue;
        }
        let rule_started = Instant::now();
        for (path, f) in check(contexts, cfg) {
            let Some(ctx) = contexts.iter().find(|c| c.path == path) else {
                continue;
            };
            admit(&rule, severity, ctx, vec![f], true, &mut findings);
        }
        *rule_time.entry(rule.id).or_default() += rule_started.elapsed();
    }
    findings
}

fn rule_applies_to(rule: &Rule, ctx: &FileCtx, cfg: &Config) -> bool {
    if !rule.applies_in_tests && ctx.is_test_file {
        return false;
    }
    if rule.skips_bins && ctx.is_bin_file {
        return false;
    }
    !cfg.path_allowed(rule.id, &ctx.path)
}

/// Applies test-context and (optionally) inline-suppression filters, then
/// records.
fn admit(
    rule: &Rule,
    severity: Severity,
    ctx: &FileCtx,
    raw: Vec<RawFinding>,
    honor_suppressions: bool,
    out: &mut Vec<Finding>,
) {
    for f in raw {
        if !rule.applies_in_tests && ctx.in_test(f.line) {
            continue;
        }
        if honor_suppressions && ctx.is_suppressed(rule.id, f.line) {
            continue;
        }
        out.push(Finding {
            path: ctx.path.clone(),
            line: f.line,
            col: f.col,
            rule: rule.id,
            severity,
            message: f.message,
        });
    }
}

/// Lints every `.rs` file selected by the config under `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    Ok(lint_sources(&read_workspace(root, cfg)?, cfg))
}

/// [`lint_workspace`] with engine options (threads, timing).
pub fn lint_workspace_opts(root: &Path, cfg: &Config, opts: LintOptions) -> io::Result<LintReport> {
    Ok(lint_sources_opts(&read_workspace(root, cfg)?, cfg, opts))
}

/// [`lint_workspace`] through the incremental cache at `cache_path`.
///
/// Unchanged files (by content hash, under an unchanged policy
/// fingerprint) reuse their per-file findings without re-running rules;
/// a fully unchanged workspace reuses the workspace-rule findings too and
/// skips parsing entirely. The refreshed cache is written back
/// best-effort — a write failure is reported on the side, never as a
/// lint failure.
pub fn lint_workspace_cached(
    root: &Path,
    cfg: &Config,
    fingerprint: u64,
    cache_path: &Path,
    opts: LintOptions,
) -> io::Result<LintReport> {
    let started = Instant::now();
    let sources = read_workspace(root, cfg)?;
    let hashes: Vec<u64> = sources.iter().map(|(_, t)| fnv1a(t.as_bytes())).collect();
    let workspace_hash = {
        use std::fmt::Write as _;
        let mut listing = String::new();
        for ((path, _), h) in sources.iter().zip(&hashes) {
            listing.push_str(path);
            let _ = write!(listing, "\u{0}{h:016x}\u{0}");
        }
        fnv1a(listing.as_bytes())
    };

    let cached: Cache = fs::read_to_string(cache_path)
        .ok()
        .and_then(|t| cache::load(&t))
        .filter(|c| c.fingerprint == fingerprint)
        .unwrap_or_default();

    // Fast path: nothing changed at all — the workspace hash covers the
    // exact file set and every content hash.
    if cached.workspace_hash == workspace_hash && !cached.files.is_empty() {
        let mut findings: Vec<Finding> = cached
            .files
            .values()
            .flat_map(|f| f.findings.iter().cloned())
            .collect();
        findings.extend(cached.workspace.iter().cloned());
        sort_findings(&mut findings);
        return Ok(LintReport {
            findings,
            timing: opts.timing.then(|| {
                timing_report(
                    BTreeMap::new(),
                    Vec::new(),
                    started.elapsed(),
                    sources.len(),
                )
            }),
            cache_write_error: None,
        });
    }

    let threads = worker_count(opts.threads, sources.len());
    let (contexts, mut file_time) = build_contexts(&sources, cfg, threads);

    // A file is reusable when its content hash matches the cached entry.
    let want: Vec<bool> = sources
        .iter()
        .zip(&hashes)
        .map(|((path, _), h)| cached.files.get(path).map_or(true, |f| f.hash != *h))
        .collect();
    let reused = want.iter().filter(|w| !**w).count();

    let mut rule_time: BTreeMap<&'static str, Duration> = BTreeMap::new();
    let mut per_file = per_file_pass(
        &contexts,
        cfg,
        threads,
        &want,
        &mut rule_time,
        &mut file_time,
    );
    for (idx, (path, _)) in sources.iter().enumerate() {
        if !want[idx] {
            if let Some(entry) = cached.files.get(path) {
                per_file[idx] = entry.findings.clone();
            }
        }
    }
    let workspace = workspace_pass(&contexts, cfg, &mut rule_time);

    let mut next = Cache {
        fingerprint,
        files: BTreeMap::new(),
        workspace_hash,
        workspace: workspace.clone(),
    };
    let mut findings: Vec<Finding> = Vec::new();
    for ((idx, (path, _)), hash) in sources.iter().enumerate().zip(&hashes) {
        next.files.insert(
            path.clone(),
            CachedFile {
                hash: *hash,
                findings: per_file[idx].clone(),
            },
        );
        findings.append(&mut per_file[idx]);
    }
    findings.extend(workspace);
    sort_findings(&mut findings);

    let cache_write_error = write_cache(cache_path, &cache::save(&next))
        .err()
        .map(|e| format!("{}: {e}", cache_path.display()));
    Ok(LintReport {
        findings,
        timing: opts
            .timing
            .then(|| timing_report(rule_time, file_time, started.elapsed(), reused)),
        cache_write_error,
    })
}

fn write_cache(path: &Path, text: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, text)
}

/// One inline allow directive that no longer earns its keep.
#[derive(Clone, Debug)]
pub struct StaleAllow {
    pub path: String,
    /// Line of the comment carrying the directive.
    pub line: u32,
    pub rule: String,
    /// Why it is stale.
    pub reason: StaleReason,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaleReason {
    /// The rule id does not exist in this binary's registry.
    UnknownRule,
    /// No finding of that rule lands on any line the directive covers.
    NothingSuppressed,
}

/// Audits every inline `sift-lint: allow(...)` in the sources: re-runs
/// the rules with suppressions disabled (and configured severities
/// ignored, so an allow documenting an exception under a currently
/// `allow`-severity rule is not reported) and flags directives that no
/// longer cover any would-be finding. Stale allows are how outdated
/// exceptions outlive their justification — this keeps the set honest.
pub fn audit_allows(sources: &[(String, String)], cfg: &Config) -> Vec<StaleAllow> {
    let threads = worker_count(0, sources.len());
    let (contexts, _) = build_contexts(sources, cfg, threads);

    // (path, rule) → lines a finding would land on without suppression.
    let mut would: BTreeMap<(String, &'static str), BTreeSet<u32>> = BTreeMap::new();
    let mut record = |f: &Finding| {
        would
            .entry((f.path.clone(), f.rule))
            .or_default()
            .insert(f.line);
    };
    for rule in registry() {
        match rule.kind {
            RuleKind::PerFile(check) => {
                for ctx in &contexts {
                    if !rule_applies_to(&rule, ctx, cfg) {
                        continue;
                    }
                    let mut raw = Vec::new();
                    check(ctx, cfg, &mut raw);
                    let mut out = Vec::new();
                    admit(&rule, rule.default_severity, ctx, raw, false, &mut out);
                    out.iter().for_each(&mut record);
                }
            }
            RuleKind::Workspace(check) => {
                for (path, f) in check(&contexts, cfg) {
                    let Some(ctx) = contexts.iter().find(|c| c.path == path) else {
                        continue;
                    };
                    let mut out = Vec::new();
                    admit(&rule, rule.default_severity, ctx, vec![f], false, &mut out);
                    out.iter().for_each(&mut record);
                }
            }
        }
    }

    let known: Vec<&str> = registry().iter().map(|r| r.id).collect();
    let mut stale = Vec::new();
    for ctx in &contexts {
        for d in &ctx.directives {
            if !known.contains(&d.rule.as_str()) {
                stale.push(StaleAllow {
                    path: ctx.path.clone(),
                    line: d.line,
                    rule: d.rule.clone(),
                    reason: StaleReason::UnknownRule,
                });
                continue;
            }
            let lines = would
                .iter()
                .find(|((p, r), _)| *p == ctx.path && *r == d.rule)
                .map(|(_, l)| l);
            let earns = match lines {
                Some(lines) if d.file_wide => !lines.is_empty(),
                Some(lines) => d.covered.iter().any(|l| lines.contains(l)),
                None => false,
            };
            if !earns {
                stale.push(StaleAllow {
                    path: ctx.path.clone(),
                    line: d.line,
                    rule: d.rule.clone(),
                    reason: StaleReason::NothingSuppressed,
                });
            }
        }
    }
    stale.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    stale
}

/// [`audit_allows`] over the files under `root`.
pub fn audit_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<StaleAllow>> {
    Ok(audit_allows(&read_workspace(root, cfg)?, cfg))
}

fn read_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = fs::read_to_string(root.join(&path))?;
        sources.push((path, text));
    }
    Ok(sources)
}

/// Directory names never descended into, regardless of config (build
/// output and VCS internals are large and always irrelevant).
const SKIP_DIRS: &[&str] = &["target", ".git"];

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.is_included(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
        lint_sources(&[(path.to_owned(), src.to_owned())], cfg)
    }

    #[test]
    fn severity_allow_disables_a_rule() {
        let mut cfg = Config::default();
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(lint_one("crates/x/src/lib.rs", src, &cfg).len(), 1);
        cfg.rules.entry("no-panic".into()).or_default().severity = Some(Severity::Allow);
        assert!(lint_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn warn_findings_survive_with_warn_severity() {
        let mut cfg = Config::default();
        cfg.rules.entry("no-panic".into()).or_default().severity = Some(Severity::Warn);
        let out = lint_one("crates/x/src/lib.rs", "fn f() { x.unwrap(); }", &cfg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn inline_suppression_silences_one_line() {
        let src = "fn f() {\n  a.unwrap(); // sift-lint: allow(no-panic) — test harness\n  b.unwrap();\n}";
        let out = lint_one("crates/x/src/lib.rs", src, &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn test_context_exempts_non_test_rules_only() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(x: f64) { y.unwrap(); if x == 1.0 {} }\n}";
        let out = lint_one("crates/x/src/lib.rs", src, &Config::default());
        // no-panic skips tests; float-eq does not.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "float-eq");
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }";
        let out = lint_one("crates/x/src/lib.rs", src, &Config::default());
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
    }

    fn many_sources() -> Vec<(String, String)> {
        (0..24)
            .map(|i| {
                (
                    format!("crates/x/src/m{i:02}.rs"),
                    format!("fn f{i}() {{ a.unwrap(); let x: f64 = y; if x == {i}.0 {{}} }}"),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_and_serial_runs_are_byte_identical() {
        let cfg = Config::default();
        let sources = many_sources();
        let serial = lint_sources_opts(
            &sources,
            &cfg,
            LintOptions {
                threads: 1,
                timing: false,
            },
        );
        let parallel = lint_sources_opts(
            &sources,
            &cfg,
            LintOptions {
                threads: 8,
                timing: false,
            },
        );
        assert_eq!(
            crate::report::render_json(&serial.findings),
            crate::report::render_json(&parallel.findings),
        );
        assert!(!serial.findings.is_empty());
    }

    #[test]
    fn timing_covers_rules_and_files() {
        let report = lint_sources_opts(
            &many_sources(),
            &Config::default(),
            LintOptions {
                threads: 4,
                timing: true,
            },
        );
        let timing = report.timing.expect("timing requested");
        assert_eq!(timing.per_file.len(), 24);
        assert!(timing.per_rule.iter().any(|(id, _)| *id == "no-panic"));
    }

    #[test]
    fn audit_flags_unknown_and_unused_allows() {
        let src = "fn f() {\n\
                   a.unwrap(); // sift-lint: allow(no-panic) — earns its keep\n\
                   let x = 1; // sift-lint: allow(no-panic) — nothing here\n\
                   let y = 2; // sift-lint: allow(no-such-rule) — typo\n\
                   }\n";
        let stale = audit_allows(
            &[("crates/x/src/lib.rs".to_owned(), src.to_owned())],
            &Config::default(),
        );
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert_eq!(stale[0].line, 3);
        assert_eq!(stale[0].reason, StaleReason::NothingSuppressed);
        assert_eq!(stale[1].line, 4);
        assert_eq!(stale[1].reason, StaleReason::UnknownRule);
    }

    #[test]
    fn audit_respects_allow_severity_exceptions() {
        // A directive under a rule the config currently allows still
        // covers a real would-be finding — not stale.
        let mut cfg = Config::default();
        cfg.rules.entry("no-panic".into()).or_default().severity = Some(Severity::Allow);
        let src = "fn f() {\n  a.unwrap(); // sift-lint: allow(no-panic) — documented\n}\n";
        let stale = audit_allows(&[("crates/x/src/lib.rs".to_owned(), src.to_owned())], &cfg);
        assert!(stale.is_empty(), "{stale:?}");
    }

    #[test]
    fn cached_run_is_identical_and_reuses_files() {
        let dir = std::env::temp_dir().join(format!("sift-lint-cache-test-{}", std::process::id()));
        let src_dir = dir.join("crates/x/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(src_dir.join("lib.rs"), "fn f() { a.unwrap(); }\n").expect("write");
        std::fs::write(
            src_dir.join("other.rs"),
            "fn g(x: f64) { if x == 1.0 {} }\n",
        )
        .expect("write");
        let cfg = Config::default();
        let cache_path = dir.join("target/sift-lint-cache.json");
        let opts = LintOptions {
            threads: 2,
            timing: true,
        };

        let cold = lint_workspace_cached(&dir, &cfg, 7, &cache_path, opts).expect("cold");
        assert!(cache_path.is_file(), "cache written");
        assert_eq!(cold.timing.as_ref().expect("timing").files_reused, 0);

        let warm = lint_workspace_cached(&dir, &cfg, 7, &cache_path, opts).expect("warm");
        assert_eq!(
            crate::report::render_json(&cold.findings),
            crate::report::render_json(&warm.findings),
        );
        assert_eq!(warm.timing.as_ref().expect("timing").files_reused, 2);

        // Editing one file invalidates that file (and the workspace pass)
        // but keeps the untouched file's entry.
        std::fs::write(
            src_dir.join("lib.rs"),
            "fn f() { a.unwrap(); b.unwrap(); }\n",
        )
        .expect("write");
        let edited = lint_workspace_cached(&dir, &cfg, 7, &cache_path, opts).expect("edited");
        assert_eq!(
            edited
                .findings
                .iter()
                .filter(|f| f.rule == "no-panic")
                .count(),
            2
        );
        assert_eq!(edited.timing.as_ref().expect("timing").files_reused, 1);

        // A fingerprint change (policy edit) discards everything.
        let refreshed = lint_workspace_cached(&dir, &cfg, 8, &cache_path, opts).expect("refresh");
        assert_eq!(refreshed.timing.as_ref().expect("timing").files_reused, 0);

        std::fs::remove_dir_all(&dir).ok();
    }
}

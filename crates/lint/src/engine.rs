//! Walks the workspace, runs every rule, applies policy and suppressions.

use crate::config::{Config, Severity};
use crate::context::FileCtx;
use crate::rules::{registry, RawFinding, Rule, RuleKind};
use std::fs;
use std::io;
use std::path::Path;

/// A finished, policy-applied finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

/// Lints in-memory sources (used by fixture tests and by
/// [`lint_workspace`] after reading files).
pub fn lint_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let contexts: Vec<FileCtx> = sources
        .iter()
        .map(|(path, text)| FileCtx::new(path, text, cfg))
        .collect();

    let mut findings = Vec::new();
    for rule in registry() {
        let severity = cfg.severity(rule.id, rule.default_severity);
        if severity == Severity::Allow {
            continue;
        }
        match rule.kind {
            RuleKind::PerFile(check) => {
                for ctx in &contexts {
                    if !rule_applies_to(&rule, ctx, cfg) {
                        continue;
                    }
                    let mut raw = Vec::new();
                    check(ctx, cfg, &mut raw);
                    admit(&rule, severity, ctx, raw, &mut findings);
                }
            }
            RuleKind::Workspace(check) => {
                for (path, f) in check(&contexts, cfg) {
                    let Some(ctx) = contexts.iter().find(|c| c.path == path) else {
                        continue;
                    };
                    admit(&rule, severity, ctx, vec![f], &mut findings);
                }
            }
        }
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    findings
}

fn rule_applies_to(rule: &Rule, ctx: &FileCtx, cfg: &Config) -> bool {
    if !rule.applies_in_tests && ctx.is_test_file {
        return false;
    }
    if rule.skips_bins && ctx.is_bin_file {
        return false;
    }
    !cfg.path_allowed(rule.id, &ctx.path)
}

/// Applies test-context and inline-suppression filters, then records.
fn admit(
    rule: &Rule,
    severity: Severity,
    ctx: &FileCtx,
    raw: Vec<RawFinding>,
    out: &mut Vec<Finding>,
) {
    for f in raw {
        if !rule.applies_in_tests && ctx.in_test(f.line) {
            continue;
        }
        if ctx.is_suppressed(rule.id, f.line) {
            continue;
        }
        out.push(Finding {
            path: ctx.path.clone(),
            line: f.line,
            col: f.col,
            rule: rule.id,
            severity,
            message: f.message,
        });
    }
}

/// Lints every `.rs` file selected by the config under `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = fs::read_to_string(root.join(&path))?;
        sources.push((path, text));
    }
    Ok(lint_sources(&sources, cfg))
}

/// Directory names never descended into, regardless of config (build
/// output and VCS internals are large and always irrelevant).
const SKIP_DIRS: &[&str] = &["target", ".git"];

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.is_included(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
        lint_sources(&[(path.to_owned(), src.to_owned())], cfg)
    }

    #[test]
    fn severity_allow_disables_a_rule() {
        let mut cfg = Config::default();
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(lint_one("crates/x/src/lib.rs", src, &cfg).len(), 1);
        cfg.rules.entry("no-panic".into()).or_default().severity = Some(Severity::Allow);
        assert!(lint_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn warn_findings_survive_with_warn_severity() {
        let mut cfg = Config::default();
        cfg.rules.entry("no-panic".into()).or_default().severity = Some(Severity::Warn);
        let out = lint_one("crates/x/src/lib.rs", "fn f() { x.unwrap(); }", &cfg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn inline_suppression_silences_one_line() {
        let src = "fn f() {\n  a.unwrap(); // sift-lint: allow(no-panic) — test harness\n  b.unwrap();\n}";
        let out = lint_one("crates/x/src/lib.rs", src, &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn test_context_exempts_non_test_rules_only() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(x: f64) { y.unwrap(); if x == 1.0 {} }\n}";
        let out = lint_one("crates/x/src/lib.rs", src, &Config::default());
        // no-panic skips tests; float-eq does not.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "float-eq");
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }";
        let out = lint_one("crates/x/src/lib.rs", src, &Config::default());
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
    }
}

//! Stage 3 of the semantic engine: intra-function dataflow walks.
//!
//! Fed by the token forest ([`crate::tree`]) and the scope pass
//! ([`crate::scope`]), this module answers the flow-sensitive questions
//! the semantic rule family asks: which locks are *live* when another is
//! acquired (guard lifetimes modelled by scope — bound guards live to the
//! end of their block, unbound temporaries to the end of their statement,
//! `let _ =` drops immediately, `drop(g)` ends a guard early); which
//! callees are entered while a guard is held; and where the pattern-level
//! sites (allocations, egress calls, discarded `Result`s) sit.

use crate::lexer::{TokKind, Token};
use crate::scope::{FileScopes, FnItem};
use crate::tree::{Delim, Group, Tree};
use std::collections::BTreeSet;

/// One lock acquisition observed while other guards were live, or a
/// re-acquisition of a lock already held (`held == acquired`).
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Binding name of the lock already held.
    pub held: String,
    /// Binding name of the lock being acquired.
    pub acquired: String,
    pub line: u32,
    pub col: u32,
}

/// A call made while at least one guard is live.
#[derive(Clone, Debug)]
pub struct HeldCall {
    /// Binding names of the locks held at the call.
    pub held: Vec<String>,
    pub callee: String,
    /// `A` in `A::callee(…)`.
    pub qualifier: Option<String>,
    /// `x` in `x.callee(…)`.
    pub receiver: Option<String>,
    pub line: u32,
    pub col: u32,
}

/// Lock behaviour of one function body.
#[derive(Clone, Debug, Default)]
pub struct LockFacts {
    /// Every lock this fn acquires directly, by binding name.
    pub acquires: BTreeSet<String>,
    /// Nested acquisitions: `held` was live when `acquired` was taken.
    pub edges: Vec<LockEdge>,
    /// Calls made with guards live (for cross-function propagation).
    pub calls_holding: Vec<HeldCall>,
}

/// A guard on the walker's liveness stack.
struct Live {
    lock: String,
    binding: Option<String>,
    /// Unbound temporaries die at the end of their statement.
    temp: bool,
}

/// Computes [`LockFacts`] for the fn body `f`, treating `lock_names` as
/// the set of known lock bindings.
pub fn lock_facts(
    code: &[Token],
    scopes: &FileScopes,
    f: &FnItem,
    lock_names: &BTreeSet<String>,
) -> LockFacts {
    let mut facts = LockFacts::default();
    let Some(body) = body_group(&scopes.trees, f.body.0) else {
        return facts;
    };
    let mut live: Vec<Live> = Vec::new();
    walk_block(
        code,
        &body.children,
        lock_names,
        &mut live,
        true,
        &mut facts,
    );
    facts
}

/// Finds the brace group whose opening token is `open_idx`.
fn body_group(trees: &[Tree], open_idx: usize) -> Option<&Group> {
    for t in trees {
        if let Tree::Group(g) = t {
            if g.delim == Delim::Brace && g.open == open_idx {
                return Some(g);
            }
            if let Some(found) = body_group(&g.children, open_idx) {
                return Some(found);
            }
        }
    }
    None
}

/// Walks one children list. `binding_allowed` is true at statement level
/// (a `let` pattern can bind an acquisition made here) and false inside
/// nested paren/bracket groups (those produce temporaries of the
/// enclosing statement).
fn walk_block(
    code: &[Token],
    children: &[Tree],
    lock_names: &BTreeSet<String>,
    live: &mut Vec<Live>,
    statement_level: bool,
    facts: &mut LockFacts,
) {
    let base = live.len();
    let mut stmt_mark = live.len();
    // `Some(None)`: `let` seen, pattern name not yet; `Some(Some(n))`:
    // bound to `n`; the special name `_` means "dropped immediately".
    let mut pending_let: Option<Option<String>> = None;
    let mut k = 0usize;
    while k < children.len() {
        match &children[k] {
            Tree::Leaf(i) => {
                let t = &code[*i];
                if t.kind == TokKind::Punct && t.text == ";" {
                    end_statement(live, &mut stmt_mark);
                    pending_let = None;
                } else if t.kind == TokKind::Ident && t.text == "let" && statement_level {
                    pending_let = Some(None);
                } else if t.kind == TokKind::Ident
                    && pending_let == Some(None)
                    && !matches!(t.text.as_str(), "mut" | "ref")
                {
                    pending_let = Some(Some(t.text.clone()));
                } else if t.kind == TokKind::Ident && t.text == "drop" {
                    // `drop(g)`: end the named guard early.
                    if let Some(Tree::Group(g)) = children.get(k + 1) {
                        if g.delim == Delim::Paren && g.children.len() == 1 {
                            if let Tree::Leaf(j) = g.children[0] {
                                let name = &code[j].text;
                                if let Some(pos) = live
                                    .iter()
                                    .rposition(|l| l.binding.as_deref() == Some(name))
                                {
                                    live.remove(pos);
                                }
                            }
                        }
                    }
                }
                if let Some(lock) = acquisition_at(code, *i, lock_names) {
                    for held in live.iter() {
                        facts.edges.push(LockEdge {
                            held: held.lock.clone(),
                            acquired: lock.clone(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                    facts.acquires.insert(lock.clone());
                    // `pool.lock().pop()` binds the popped value, not the
                    // guard: a consumed guard is a statement temporary no
                    // matter what the `let` pattern says.
                    let binding = if statement_level && !guard_consumed(code, *i) {
                        pending_let.clone().flatten()
                    } else {
                        None
                    };
                    match binding.as_deref() {
                        Some("_") => {} // dropped at once, never live
                        Some(_) => live.push(Live {
                            lock,
                            binding,
                            temp: false,
                        }),
                        None => live.push(Live {
                            lock,
                            binding: None,
                            temp: true,
                        }),
                    }
                } else if let Some(callee) = call_at(code, *i) {
                    if !live.is_empty() && !matches!(callee, "drop" | "lock" | "read" | "write") {
                        let prev_ident = |sep: &str| {
                            (*i >= 2
                                && code[*i - 1].text == sep
                                && code[*i - 2].kind == TokKind::Ident)
                                .then(|| code[*i - 2].text.clone())
                        };
                        facts.calls_holding.push(HeldCall {
                            held: live.iter().map(|l| l.lock.clone()).collect(),
                            callee: callee.to_owned(),
                            qualifier: prev_ident("::"),
                            receiver: prev_ident("."),
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
            Tree::Group(g) => {
                match g.delim {
                    Delim::Brace => {
                        // The nested walk pops its own scoped guards.
                        walk_block(code, &g.children, lock_names, live, true, facts);
                        // Condition/scrutinee temporaries live through the
                        // whole `if`/`match` statement — including an
                        // attached `else` — then die.
                        let else_next = matches!(
                            children.get(k + 1),
                            Some(Tree::Leaf(j)) if code[*j].text == "else"
                        );
                        if !else_next {
                            end_statement(live, &mut stmt_mark);
                            pending_let = None;
                        }
                    }
                    Delim::Paren | Delim::Bracket => {
                        walk_block(code, &g.children, lock_names, live, false, facts);
                    }
                }
            }
        }
        k += 1;
    }
    // Leaving the block: everything pushed here goes out of scope.
    live.truncate(base);
}

/// Kills this statement's temporaries; bound guards survive to block end.
fn end_statement(live: &mut Vec<Live>, stmt_mark: &mut usize) {
    let mark = *stmt_mark;
    let mut idx = 0usize;
    live.retain(|l| {
        let keep = idx < mark || !l.temp;
        idx += 1;
        keep
    });
    *stmt_mark = live.len();
}

/// True when the guard produced by the acquisition at `i` is consumed by
/// a further method call in the same expression (`pool.lock().pop()`):
/// the chained value, not the guard, is what a `let` would bind, so the
/// guard itself dies with the statement. `.unwrap()` / `.expect(…)` only
/// unwrap a poisoned-lock `Result` and still yield the guard.
fn guard_consumed(code: &[Token], i: usize) -> bool {
    // `i..` is `name . lock (`; step past the call's argument list.
    let mut j = match matching_close(code, i + 3) {
        Some(close) => close + 1,
        None => return false,
    };
    loop {
        if !code.get(j).is_some_and(|t| t.text == ".") {
            return false;
        }
        match code.get(j + 1) {
            Some(m)
                if m.kind == TokKind::Ident && matches!(m.text.as_str(), "unwrap" | "expect") => {}
            Some(m) if m.kind == TokKind::Ident => return true,
            _ => return false,
        }
        match code.get(j + 2) {
            Some(p) if p.text == "(" => match matching_close(code, j + 2) {
                Some(close) => j = close + 1,
                None => return false,
            },
            _ => return true,
        }
    }
}

/// Index of the delimiter closing the one opening at `open`.
fn matching_close(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// `name.lock()` / `name.read()` / `name.write()` where `name` is a known
/// lock binding: returns the lock name.
fn acquisition_at(code: &[Token], i: usize, lock_names: &BTreeSet<String>) -> Option<String> {
    let t = &code[i];
    if t.kind != TokKind::Ident || !lock_names.contains(&t.text) {
        return None;
    }
    if code.get(i + 1)?.text != "." {
        return None;
    }
    let method = code.get(i + 2)?;
    if method.kind != TokKind::Ident || !matches!(method.text.as_str(), "lock" | "read" | "write") {
        return None;
    }
    if code.get(i + 3)?.text != "(" {
        return None;
    }
    Some(t.text.clone())
}

/// `name(` where `name` is not a definition: returns the callee name.
/// Matches both free calls and method calls (the `.` before is fine).
fn call_at(code: &[Token], i: usize) -> Option<&str> {
    let t = &code[i];
    if t.kind != TokKind::Ident
        || matches!(
            t.text.as_str(),
            "if" | "while" | "for" | "match" | "return" | "loop" | "fn"
        )
    {
        return None;
    }
    if !code.get(i + 1).is_some_and(|n| n.text == "(") {
        return None;
    }
    if i > 0 && code[i - 1].kind == TokKind::Ident && code[i - 1].text == "fn" {
        return None;
    }
    Some(&t.text)
}

/// One call site, with enough lexical context to resolve the callee.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: String,
    /// `A` in `A::callee(…)` — a type or module path segment.
    pub qualifier: Option<String>,
    /// `x` in `x.callee(…)` — notably `self`.
    pub receiver: Option<String>,
    pub idx: usize,
    pub line: u32,
    pub col: u32,
}

/// Every call site in a file.
pub fn call_sites(code: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let Some(callee) = call_at(code, i) else {
            continue;
        };
        let prev_ident = |sep: &str| {
            (i >= 2 && code[i - 1].text == sep && code[i - 2].kind == TokKind::Ident)
                .then(|| code[i - 2].text.clone())
        };
        out.push(CallSite {
            callee: callee.to_owned(),
            qualifier: prev_ident("::"),
            receiver: prev_ident("."),
            idx: i,
            line: code[i].line,
            col: code[i].col,
        });
    }
    out
}

/// A fn the resolver can target: its name and impl self type.
#[derive(Clone, Debug)]
pub struct FnTarget {
    pub name: String,
    pub self_type: Option<String>,
}

/// CHA-lite call resolution over workspace fn targets: returns the target
/// indices a call may reach. Qualified calls (`Type::m`, `Self::m`,
/// `self.m`) resolve by `(self type, name)`; everything else resolves by
/// bare name only when that name is defined exactly once — an ambiguous
/// common name (`len`, `state`, `new`) deliberately resolves to nothing,
/// trading recall for a usable signal-to-noise ratio.
pub fn resolve_call(
    call: &CallSite,
    caller_self_type: Option<&str>,
    targets: &[FnTarget],
) -> Vec<usize> {
    let by_type = |ty: &str| -> Vec<usize> {
        targets
            .iter()
            .enumerate()
            .filter(|(_, t)| t.name == call.callee && t.self_type.as_deref() == Some(ty))
            .map(|(i, _)| i)
            .collect()
    };
    if let Some(q) = &call.qualifier {
        let ty = if q == "Self" {
            caller_self_type
        } else {
            Some(q.as_str())
        };
        if let Some(ty) = ty {
            let hits = by_type(ty);
            if !hits.is_empty() {
                return hits;
            }
        }
        // A capitalized qualifier is a type: `Vec::new` must not resolve
        // to some workspace `fn new`. Lowercase qualifiers are module
        // paths (`queue::run`) and fall through to bare-name resolution.
        if q.chars().next().is_some_and(char::is_uppercase) {
            return Vec::new();
        }
    }
    if call.receiver.as_deref() == Some("self") {
        if let Some(ty) = caller_self_type {
            let hits = by_type(ty);
            if !hits.is_empty() {
                return hits;
            }
        }
    }
    let hits: Vec<usize> = targets
        .iter()
        .enumerate()
        .filter(|(_, t)| t.name == call.callee)
        .map(|(i, _)| i)
        .collect();
    if hits.len() == 1 {
        return hits;
    }
    // A free call (`helper(…)`) among several same-named defs can still
    // mean the unique *free* fn; a method call cannot be narrowed.
    if call.qualifier.is_none() && call.receiver.is_none() {
        let free: Vec<usize> = hits
            .into_iter()
            .filter(|&i| targets[i].self_type.is_none())
            .collect();
        if free.len() == 1 {
            return free;
        }
    }
    Vec::new()
}

/// A heap-allocation site by token pattern.
#[derive(Clone, Debug)]
pub struct AllocSite {
    pub idx: usize,
    pub line: u32,
    pub col: u32,
    /// What allocated, for the message (`Vec::new`, `.collect()`, …).
    pub what: String,
}

/// Constructor idents whose `Type::method(` form allocates.
const ALLOC_TYPES: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("String", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
    ("VecDeque", &["new", "with_capacity"]),
    ("HashMap", &["new", "with_capacity"]),
    ("BTreeMap", &["new"]),
];

/// Method idents whose `.method(` form allocates.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "clone",
    "cloned",
    "to_vec",
    "to_owned",
    "to_string",
];

/// Macro idents whose `name!` form allocates.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Every allocation site in a file, by token pattern.
pub fn alloc_sites(code: &[Token]) -> Vec<AllocSite> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let site = |what: String| AllocSite {
            idx: i,
            line: t.line,
            col: t.col,
            what,
        };
        // `Type::ctor(`
        if let Some((_, ctors)) = ALLOC_TYPES.iter().find(|(ty, _)| *ty == t.text) {
            if code.get(i + 1).is_some_and(|n| n.text == "::") {
                if let Some(m) = code.get(i + 2) {
                    if ctors.contains(&m.text.as_str())
                        && code.get(i + 3).is_some_and(|n| n.text == "(")
                    {
                        out.push(site(format!("{}::{}", t.text, m.text)));
                        continue;
                    }
                }
            }
        }
        // `name!` macros
        if ALLOC_MACROS.contains(&t.text.as_str()) && code.get(i + 1).is_some_and(|n| n.text == "!")
        {
            out.push(site(format!("{}!", t.text)));
            continue;
        }
        // `.method(` / `.method::<…>(`
        if ALLOC_METHODS.contains(&t.text.as_str())
            && i > 0
            && code[i - 1].text == "."
            && code
                .get(i + 1)
                .is_some_and(|n| n.text == "(" || n.text == "::")
        {
            out.push(site(format!(".{}()", t.text)));
        }
    }
    out
}

/// Method names that move a request (or fetch) toward the wire.
const EGRESS_METHODS: &[&str] = &[
    "send",
    "send_with_retry",
    "post_json",
    "fetch_frame",
    "fetch_rising",
];

/// An egress call site (`.send(…)`, `.fetch_frame(…)`, …).
#[derive(Clone, Debug)]
pub struct EgressSite {
    pub idx: usize,
    pub line: u32,
    pub col: u32,
    pub method: String,
}

/// Every egress call in a file. Channel handoffs are excluded: a `.send(`
/// on a receiver named `tx` / `…_tx` / `sender` is an in-process queue,
/// not wire egress.
pub fn egress_sites(code: &[Token]) -> Vec<EgressSite> {
    let mut out = Vec::new();
    for i in 1..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident
            || !EGRESS_METHODS.contains(&t.text.as_str())
            || code[i - 1].text != "."
            || !code.get(i + 1).is_some_and(|n| n.text == "(")
        {
            continue;
        }
        if t.text == "send" && i >= 2 {
            let recv = &code[i - 2];
            if recv.kind == TokKind::Ident
                && (recv.text == "tx" || recv.text.ends_with("_tx") || recv.text == "sender")
            {
                continue;
            }
        }
        out.push(EgressSite {
            idx: i,
            line: t.line,
            col: t.col,
            method: t.text.clone(),
        });
    }
    out
}

/// A discarded-`Result` site.
#[derive(Clone, Debug)]
pub struct DiscardSite {
    pub line: u32,
    pub col: u32,
    /// `let _ =` or `.ok()`.
    pub kind: &'static str,
}

/// Finds `let _ = <call…>;` discards and statement-position `.ok();`
/// discards. `let _ =` over a bare ident (`let _ = x;`) is a lint-free
/// "mark used" idiom and is not flagged; `let _ = write!(…)` /
/// `writeln!(…)` is excluded because the in-library sinks are `String`
/// formatters whose `fmt::Result` cannot fail.
pub fn discard_sites(code: &[Token]) -> Vec<DiscardSite> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        // `let _ = …;`
        if t.kind == TokKind::Ident && t.text == "let" {
            if i > 0 && matches!(code[i - 1].text.as_str(), "while" | "if") {
                continue;
            }
            if !(code
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text == "_")
                && code.get(i + 2).is_some_and(|n| n.text == "="))
            {
                continue;
            }
            let head = code.get(i + 3);
            let head_is_infallible_write = head
                .is_some_and(|h| h.text == "write" || h.text == "writeln")
                && code.get(i + 4).is_some_and(|n| n.text == "!");
            if head_is_infallible_write {
                continue;
            }
            // Scan to the terminating `;`; a `(` in between means the
            // discarded value came out of a call. A top-level `?` means
            // the error already propagated — `let _ = f()?;` drops only
            // the success value, which is a deliberate non-finding.
            let mut depth = 0i32;
            let mut has_call = false;
            let mut propagates = false;
            for tj in &code[(i + 3)..] {
                if tj.kind != TokKind::Punct {
                    continue;
                }
                match tj.text.as_str() {
                    "(" | "[" | "{" => {
                        if tj.text == "(" {
                            has_call = true;
                        }
                        depth += 1;
                    }
                    ")" | "]" | "}" => depth -= 1,
                    "?" if depth == 0 => propagates = true,
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if has_call && !propagates {
                out.push(DiscardSite {
                    line: t.line,
                    col: t.col,
                    kind: "let _ =",
                });
            }
        }
        // `….ok();` in statement position.
        if t.kind == TokKind::Punct
            && t.text == "."
            && code.get(i + 1).is_some_and(|n| n.text == "ok")
            && code.get(i + 2).is_some_and(|n| n.text == "(")
            && code.get(i + 3).is_some_and(|n| n.text == ")")
            && code.get(i + 4).is_some_and(|n| n.text == ";")
            && statement_discards(code, i)
        {
            out.push(DiscardSite {
                line: t.line,
                col: t.col,
                kind: ".ok()",
            });
        }
    }
    out
}

/// Walks backwards from the `.` of a trailing `.ok();` to its statement
/// start; the value is discarded unless the statement binds or assigns it
/// (`let v = …`, `x = …`, `return …`).
fn statement_discards(code: &[Token], dot: usize) -> bool {
    let mut depth = 0i32;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" | "}" if t.text == "}" && depth == 0 => return true,
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    if depth == 0 {
                        return true; // statement starts at block open
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return true,
                _ if depth == 0
                    && t.text.ends_with('=')
                    && t.text != "=="
                    && t.text != "!="
                    && t.text != "<="
                    && t.text != ">="
                    && t.text != "=>" =>
                {
                    return false; // assigned somewhere
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident
            && depth == 0
            && matches!(t.text.as_str(), "let" | "return" | "else")
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::FileScopes;

    fn facts(src: &str) -> LockFacts {
        let code: Vec<Token> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let scopes = FileScopes::analyze(&code);
        let lock_names: BTreeSet<String> = ["a", "b"].iter().map(|s| (*s).to_owned()).collect();
        let f = scopes
            .fns
            .iter()
            .find(|f| f.name == "f")
            .expect("fn f in fixture");
        lock_facts(&code, &scopes, f, &lock_names)
    }

    fn edge_pairs(facts: &LockFacts) -> Vec<(String, String)> {
        facts
            .edges
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone()))
            .collect()
    }

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let f = facts("fn f() { let g = a.lock(); let h = b.lock(); }");
        assert_eq!(edge_pairs(&f), [("a".to_owned(), "b".to_owned())]);
    }

    #[test]
    fn scoped_guard_drops_before_second_lock() {
        let f = facts("fn f() { { let g = a.lock(); use_it(&g); } let h = b.lock(); }");
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
        assert_eq!(f.acquires.len(), 2);
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let f = facts("fn f() { let g = a.lock(); drop(g); let h = b.lock(); }");
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn let_underscore_guard_never_lives() {
        let f = facts("fn f() { let _ = a.lock(); let h = b.lock(); }");
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_lives_to_end_of_statement_only() {
        let f = facts("fn f() { use_it(a.lock().len()); let h = b.lock(); }");
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
        let f = facts("fn f() { use_both(a.lock().len(), b.lock().len()); }");
        assert_eq!(edge_pairs(&f), [("a".to_owned(), "b".to_owned())]);
    }

    #[test]
    fn if_let_scrutinee_guard_lives_through_the_body() {
        let f = facts("fn f() { if a.lock().is_empty() { let h = b.lock(); } }");
        assert_eq!(edge_pairs(&f), [("a".to_owned(), "b".to_owned())]);
        // …and through the else branch too.
        let f = facts("fn f() { if a.lock().is_empty() { x(); } else { let h = b.lock(); } }");
        assert_eq!(edge_pairs(&f), [("a".to_owned(), "b".to_owned())]);
        // …but not past the statement.
        let f = facts("fn f() { if a.lock().is_empty() { x(); } let h = b.lock(); }");
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn consumed_guard_is_a_statement_temporary() {
        // `pool.lock().pop()` binds the popped value; the guard dies at `;`.
        let f = facts("fn f() { let v = a.lock().pop(); let h = b.lock(); }");
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
        // `.unwrap()` still yields the guard, which stays bound.
        let f = facts("fn f() { let g = a.lock().unwrap(); let h = b.lock(); }");
        assert_eq!(edge_pairs(&f), [("a".to_owned(), "b".to_owned())]);
    }

    #[test]
    fn resolve_call_prefers_type_then_unambiguous_name() {
        let t = |name: &str, ty: Option<&str>| FnTarget {
            name: name.to_owned(),
            self_type: ty.map(str::to_owned),
        };
        let targets = vec![
            t("state", Some("Breaker")),
            t("state", Some("Histogram")),
            t("transition", Some("Breaker")),
            t("helper", None),
        ];
        let call = |callee: &str, qual: Option<&str>, recv: Option<&str>| CallSite {
            callee: callee.to_owned(),
            qualifier: qual.map(str::to_owned),
            receiver: recv.map(str::to_owned),
            idx: 0,
            line: 1,
            col: 1,
        };
        // An ambiguous method name resolves to nothing.
        assert!(resolve_call(&call("state", None, Some("h")), None, &targets).is_empty());
        // `self.` narrows by the caller's type.
        assert_eq!(
            resolve_call(
                &call("state", None, Some("self")),
                Some("Breaker"),
                &targets
            ),
            [0]
        );
        // Unique names resolve from any receiver.
        assert_eq!(
            resolve_call(&call("transition", None, Some("x")), None, &targets),
            [2]
        );
        // A capitalized qualifier is a type, never a bare-name fallback.
        assert!(resolve_call(&call("helper", Some("Vec"), None), None, &targets).is_empty());
        assert_eq!(
            resolve_call(&call("helper", None, None), None, &targets),
            [3]
        );
    }

    #[test]
    fn double_acquire_is_a_self_edge() {
        let f = facts("fn f() { let g = a.lock(); let h = a.lock(); }");
        assert_eq!(edge_pairs(&f), [("a".to_owned(), "a".to_owned())]);
    }

    #[test]
    fn calls_while_holding_are_recorded() {
        let f = facts("fn f() { let g = a.lock(); helper(1); }");
        assert_eq!(f.calls_holding.len(), 1);
        assert_eq!(f.calls_holding[0].callee, "helper");
        assert_eq!(f.calls_holding[0].held, ["a".to_owned()]);
    }

    #[test]
    fn alloc_sites_match_the_paper_list() {
        let code: Vec<Token> = lex(
            "fn f() { let v = Vec::new(); let s = x.iter().collect::<Vec<_>>(); \
             let c = y.clone(); let t = z.to_vec(); let m = format!(\"x\"); \
             let w = vec![1]; push(v); }",
        )
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
        let whats: Vec<String> = alloc_sites(&code).into_iter().map(|a| a.what).collect();
        assert_eq!(
            whats,
            [
                "Vec::new",
                ".collect()",
                ".clone()",
                ".to_vec()",
                "format!",
                "vec!"
            ]
        );
    }

    #[test]
    fn egress_sites_skip_channel_sends() {
        let code: Vec<Token> = lex(
            "fn f() { client.send(&req); tx.send(x); out_tx.send(y); c.post_json(\"/p\", b); \
             u.fetch_frame(r); }",
        )
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
        let methods: Vec<String> = egress_sites(&code).into_iter().map(|e| e.method).collect();
        assert_eq!(methods, ["send", "post_json", "fetch_frame"]);
    }

    #[test]
    fn discard_sites_flag_calls_not_idents_or_writes() {
        let code: Vec<Token> = lex(
            "fn f() { let _ = g(); let _ = model; let _ = write!(s, \"x\"); \
             h().ok(); let v = i().ok(); let _ = j()?; }",
        )
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
        let kinds: Vec<&str> = discard_sites(&code).iter().map(|d| d.kind).collect();
        assert_eq!(kinds, ["let _ =", ".ok()"]);
    }
}

//! `Lint.toml` — per-rule severity and path policy.
//!
//! The linter must not depend on a TOML crate (it polices the crates that
//! would vendor one), so this module hand-parses the small, line-oriented
//! subset the config actually uses: `[rules.<id>]` table headers, string
//! values, and string arrays. Anything outside that subset is a hard
//! config error with a line number — a config typo that silently disabled
//! a rule would be worse than a crash.

use std::collections::BTreeMap;
use std::fmt;

/// How a rule's findings count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Findings fail the run (nonzero exit).
    Deny,
    /// Findings print but do not fail the run.
    Warn,
    /// Rule disabled.
    Allow,
}

impl Severity {
    /// Parses the canonical lowercase form (the [`fmt::Display`] output).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "deny" => Some(Severity::Deny),
            "warn" => Some(Severity::Warn),
            "allow" => Some(Severity::Allow),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Allow => "allow",
        })
    }
}

/// Per-rule configuration.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    pub severity: Option<Severity>,
    /// Files matching any of these globs are exempt from the rule.
    pub allow_paths: Vec<String>,
    /// Files matching any of these globs get the rule's strict variant
    /// (today only `lossy-cast` has one: every numeric `as` is flagged).
    pub strict_paths: Vec<String>,
}

/// Whole-run configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Globs selecting files to lint, relative to the workspace root.
    pub include: Vec<String>,
    /// Globs removed from the selection (vendored shims, build output).
    pub exclude: Vec<String>,
    /// Globs treated as test context for every rule that skips tests.
    pub test_paths: Vec<String>,
    /// Globs for binaries/tools exempt from the library-only rules.
    pub bin_paths: Vec<String>,
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec!["src/**".into(), "crates/**".into(), "tests/**".into()],
            exclude: vec![
                "vendor/**".into(),
                "target/**".into(),
                "**/tests/fixtures/**".into(),
            ],
            test_paths: vec!["**/tests/**".into(), "**/benches/**".into()],
            bin_paths: vec![
                "**/src/bin/**".into(),
                "**/src/main.rs".into(),
                "examples/**".into(),
            ],
            rules: BTreeMap::new(),
        }
    }
}

/// A config-file problem, with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses `Lint.toml` text over the built-in defaults.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        // Key lists in the top-level table replace the defaults wholesale:
        // merging would make it impossible to *narrow* the default globs.
        let mut current_rule: Option<String> = None;

        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: keep consuming until brackets balance.
            while line.contains('[') && line.contains('=') && bracket_depth(&line) > 0 {
                match lines.next() {
                    Some((_, next)) => {
                        line.push(' ');
                        line.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: "unterminated array".into(),
                        })
                    }
                }
            }

            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                if let Some(rule) = header.strip_prefix("rules.") {
                    let rule = rule.trim().trim_matches('"');
                    cfg.rules.entry(rule.to_owned()).or_default();
                    current_rule = Some(rule.to_owned());
                } else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown table [{header}] (only [rules.<id>])"),
                    });
                }
                continue;
            }

            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let err = |message: String| ConfigError {
                line: lineno,
                message,
            };

            match current_rule.as_deref() {
                None => {
                    let list = parse_string_array(value)
                        .ok_or_else(|| err(format!("`{key}` wants a string array")))?;
                    match key {
                        "include" => cfg.include = list,
                        "exclude" => cfg.exclude = list,
                        "test_paths" => cfg.test_paths = list,
                        "bin_paths" => cfg.bin_paths = list,
                        _ => return Err(err(format!("unknown top-level key `{key}`"))),
                    }
                }
                Some(rule) => {
                    let rc = cfg.rules.entry(rule.to_owned()).or_default();
                    match key {
                        "severity" => {
                            let s = parse_string(value)
                                .and_then(|s| Severity::parse(&s))
                                .ok_or_else(|| {
                                    err(format!(
                                        "severity must be \"deny\"|\"warn\"|\"allow\", got {value}"
                                    ))
                                })?;
                            rc.severity = Some(s);
                        }
                        "allow_paths" => {
                            rc.allow_paths = parse_string_array(value)
                                .ok_or_else(|| err("allow_paths wants a string array".into()))?;
                        }
                        "strict_paths" => {
                            rc.strict_paths = parse_string_array(value)
                                .ok_or_else(|| err("strict_paths wants a string array".into()))?;
                        }
                        _ => return Err(err(format!("unknown rule key `{key}`"))),
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// The configured (or default-deny) severity of a rule.
    pub fn severity(&self, rule: &str, default: Severity) -> Severity {
        self.rules
            .get(rule)
            .and_then(|r| r.severity)
            .unwrap_or(default)
    }

    /// True when `path` is exempt from `rule` via `allow_paths`.
    pub fn path_allowed(&self, rule: &str, path: &str) -> bool {
        self.rules
            .get(rule)
            .is_some_and(|r| r.allow_paths.iter().any(|g| glob_match(g, path)))
    }

    /// True when `path` is under the rule's `strict_paths`.
    pub fn path_strict(&self, rule: &str, path: &str) -> bool {
        self.rules
            .get(rule)
            .is_some_and(|r| r.strict_paths.iter().any(|g| glob_match(g, path)))
    }

    pub fn is_test_path(&self, path: &str) -> bool {
        self.test_paths.iter().any(|g| glob_match(g, path))
    }

    pub fn is_bin_path(&self, path: &str) -> bool {
        self.bin_paths.iter().any(|g| glob_match(g, path))
    }

    pub fn is_included(&self, path: &str) -> bool {
        self.include.iter().any(|g| glob_match(g, path))
            && !self.exclude.iter().any(|g| glob_match(g, path))
    }
}

/// Net `[`-minus-`]` count outside string literals.
fn bracket_depth(line: &str) -> i32 {
    let mut depth = 0i32;
    let mut in_str = false;
    for ch in line.chars() {
        match ch {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = ch == '\\' && !prev_escape;
    }
    line
}

fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_owned())
}

fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let v = v.trim();
    let inner = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

/// Glob matching over `/`-separated paths: `*` matches within a segment,
/// `**` matches across segments, `?` one char. No character classes.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = path.chars().collect();
    glob_at(&pat, 0, &txt, 0)
}

fn glob_at(pat: &[char], mut p: usize, txt: &[char], mut t: usize) -> bool {
    // Iterative with one backtrack point per star tier is subtle with `**`;
    // plain recursion is clear and the inputs are tiny.
    while p < pat.len() {
        match pat[p] {
            '*' => {
                let double = pat.get(p + 1) == Some(&'*');
                if double {
                    // `**` plus an optional following `/` collapses.
                    let mut q = p + 2;
                    if pat.get(q) == Some(&'/') {
                        q += 1;
                    }
                    // Try every suffix (including crossing `/`).
                    let mut k = t;
                    loop {
                        if glob_at(pat, q, txt, k) {
                            return true;
                        }
                        if k >= txt.len() {
                            return false;
                        }
                        k += 1;
                    }
                } else {
                    let mut k = t;
                    loop {
                        if glob_at(pat, p + 1, txt, k) {
                            return true;
                        }
                        if k >= txt.len() || txt[k] == '/' {
                            return false;
                        }
                        k += 1;
                    }
                }
            }
            '?' => {
                if t >= txt.len() || txt[t] == '/' {
                    return false;
                }
                p += 1;
                t += 1;
            }
            c => {
                if t >= txt.len() || txt[t] != c {
                    return false;
                }
                p += 1;
                t += 1;
            }
        }
    }
    t == txt.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match("crates/**", "crates/net/src/server.rs"));
        assert!(glob_match("**/tests/**", "crates/net/tests/prop.rs"));
        assert!(!glob_match("**/tests/**", "crates/net/src/server.rs"));
        assert!(glob_match(
            "**/src/bin/**",
            "crates/bench/src/bin/calibrate.rs"
        ));
        assert!(glob_match("src/*.rs", "src/lib.rs"));
        assert!(!glob_match("src/*.rs", "src/http/mod.rs"));
        assert!(glob_match(
            "**/interest.rs",
            "crates/trends/src/interest.rs"
        ));
        assert!(glob_match("vendor/**", "vendor/serde/src/lib.rs"));
    }

    #[test]
    fn parses_full_config() {
        let text = r#"
# file selection
include = ["src/**", "crates/**"]
exclude = ["vendor/**"] # vendored shims

[rules.no-panic]
severity = "deny"
allow_paths = ["crates/bench/src/bin/**"]

[rules.lossy-cast]
severity = "warn"
strict_paths = ["crates/trends/src/interest.rs"]
"#;
        let cfg = Config::parse(text).expect("parse");
        assert_eq!(cfg.include, vec!["src/**", "crates/**"]);
        assert_eq!(cfg.severity("no-panic", Severity::Warn), Severity::Deny);
        assert_eq!(cfg.severity("lossy-cast", Severity::Deny), Severity::Warn);
        assert_eq!(cfg.severity("unconfigured", Severity::Deny), Severity::Deny);
        assert!(cfg.path_allowed("no-panic", "crates/bench/src/bin/calibrate.rs"));
        assert!(!cfg.path_allowed("no-panic", "crates/core/src/study.rs"));
        assert!(cfg.path_strict("lossy-cast", "crates/trends/src/interest.rs"));
    }

    #[test]
    fn multiline_arrays_parse() {
        let text = "[rules.lossy-cast]\nstrict_paths = [\n  \"a/**\", # why a\n  \"b/**\",\n]\n";
        let cfg = Config::parse(text).expect("parse");
        assert_eq!(cfg.rules["lossy-cast"].strict_paths, vec!["a/**", "b/**"]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Config::parse("include = [\"a\"]\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Config::parse("[surprise]\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Config::parse("[rules.x]\nseverity = \"fatal\"\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn default_selection_skips_vendor_and_fixtures() {
        let cfg = Config::default();
        assert!(cfg.is_included("crates/net/src/server.rs"));
        assert!(!cfg.is_included("vendor/serde/src/lib.rs"));
        assert!(!cfg.is_included("crates/lint/tests/fixtures/no_panic.rs"));
        assert!(cfg.is_test_path("crates/net/tests/prop.rs"));
        assert!(cfg.is_bin_path("crates/bench/src/bin/experiments.rs"));
    }
}

//! `lossy-cast`: no truncating `as` casts on numeric values.
//!
//! A token-level linter cannot know the source type of `x as u32`, but it
//! can know the destination. Casting *to* a type of at most 32 bits is
//! flagged everywhere: on this workspace's 64-bit targets every wider
//! numeric exists, so such a cast either truncates or should be written as
//! an infallible `from`/`try_from` that says so. On `strict_paths` (the
//! interest/index math modules named in `Lint.toml`) **every** numeric
//! `as` cast is flagged, including `as u64`/`as f64`/`as usize` — those
//! files hold the stitching arithmetic the paper's calibration rests on,
//! and `f64 as u64` truncation or `u64 as f64` precision loss are exactly
//! the silent bugs that corrupt it.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

/// Destinations flagged everywhere.
const NARROW: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32", "f32"];
/// Additional destinations flagged on strict paths.
const WIDE: &[&str] = &["u64", "i64", "u128", "i128", "usize", "isize", "f64"];

pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<RawFinding>) {
    let strict = cfg.path_strict("lossy-cast", &ctx.path);
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "as") {
            continue;
        }
        let Some(dst) = code.get(i + 1) else { continue };
        if dst.kind != TokKind::Ident {
            continue;
        }
        let narrow = NARROW.contains(&dst.text.as_str());
        let wide = WIDE.contains(&dst.text.as_str());
        if narrow {
            out.push(RawFinding::new(
                t.line,
                t.col,
                format!(
                    "`as {}` can truncate: use `{}::try_from(..)` (or `from` \
                     where infallible) so narrowing is explicit",
                    dst.text, dst.text
                ),
            ));
        } else if strict && wide {
            out.push(RawFinding::new(
                t.line,
                t.col,
                format!(
                    "`as {}` in interest/index math (strict path): use a \
                     checked conversion or justify with an inline allow",
                    dst.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str, cfg: &Config) -> Vec<RawFinding> {
        let ctx = FileCtx::new(path, src, cfg);
        let mut out = Vec::new();
        check(&ctx, cfg, &mut out);
        out
    }

    #[test]
    fn narrow_targets_flagged_everywhere() {
        let cfg = Config::default();
        let out = findings(
            "crates/x/src/lib.rs",
            "fn f(x: u64) { let a = x as u8; let b = x as f32; let c = x as u64; }",
            &cfg,
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn strict_paths_flag_every_numeric_cast() {
        let mut cfg = Config::default();
        cfg.rules
            .entry("lossy-cast".into())
            .or_default()
            .strict_paths = vec!["**/interest.rs".into()];
        let out = findings(
            "crates/trends/src/interest.rs",
            "fn f(x: f64) { let a = x as u64; let b = x as f64; }",
            &cfg,
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn non_cast_as_is_ignored() {
        let cfg = Config::default();
        let out = findings(
            "crates/x/src/lib.rs",
            "use foo::bar as baz; fn f(x: &dyn Any) { let _ = x as &dyn Other; }",
            &cfg,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! swallowed-result: no silently discarded `Result`s in library crates.
//!
//! The collection run degrades deliberately — refusals, timeouts and
//! faults are all counted — so an error that vanishes at the call site
//! is an error the run summary lies about. Two discard shapes are
//! denied: `let _ = fallible(…);` and a statement-position `….ok();`.
//! `let _ = ident;` (mark-used) passes, as does `let _ = write!(…)` into
//! a `String` (its `fmt::Result` cannot fail). A discard that is right
//! on purpose carries an inline allow naming why.

use crate::config::Config;
use crate::context::FileCtx;
use crate::dataflow;
use crate::rules::RawFinding;

pub fn check(ctx: &FileCtx, _cfg: &Config, out: &mut Vec<RawFinding>) {
    for d in dataflow::discard_sites(&ctx.code) {
        out.push(RawFinding::new(
            d.line,
            d.col,
            format!(
                "`{}` discards a possible error — handle it, count it through \
                 obs, or add an inline allow saying why the failure is ignorable",
                d.kind
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn findings(src: &str) -> Vec<RawFinding> {
        let cfg = Config::default();
        let ctx = FileCtx::new("crates/x/src/lib.rs", src, &cfg);
        let mut out = Vec::new();
        check(&ctx, &cfg, &mut out);
        out
    }

    #[test]
    fn let_underscore_call_and_trailing_ok_are_flagged() {
        let out = findings("fn f() { let _ = fallible(); cleanup().ok(); }");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("let _ ="));
        assert!(out[1].message.contains(".ok()"));
    }

    #[test]
    fn mark_used_and_bound_ok_pass() {
        let out = findings(
            "fn f() { let _ = witness; let v = parse().ok(); use_it(v); \
             let _ = write!(s, \"x{}\", 1); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! hot-alloc: no per-iteration heap allocation in strict perf paths.
//!
//! The stitch/detect/refetch loop is the paper's per-frame inner loop; an
//! allocation there runs once per frame per round and dominates the
//! profile. Two kinds of sites are denied in files listed under the
//! rule's `strict_paths`:
//!
//! * an allocation lexically inside a loop body, and
//! * an allocation anywhere in a *hot* fn — one called (transitively)
//!   from a loop in a strict file.
//!
//! Hotness propagates by bare-name call resolution across the strict
//! files only, computed to a fixed point; test regions neither seed nor
//! receive hotness. Allocation sites are the token patterns in
//! [`crate::dataflow::alloc_sites`] (`Vec::new`, `.collect()`,
//! `.clone()`, `.to_vec()`, `format!`, …) — `clone_from`, `extend` and
//! friends reuse existing capacity and are deliberately not on the list:
//! they are the fix, not the finding.

use crate::config::Config;
use crate::context::FileCtx;
use crate::dataflow;
use crate::rules::RawFinding;
use std::collections::BTreeMap;

pub fn check(ctxs: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    let strict: Vec<usize> = (0..ctxs.len())
        .filter(|&i| cfg.path_strict("hot-alloc", &ctxs[i].path))
        .collect();
    if strict.is_empty() {
        return Vec::new();
    }

    // Production fns defined in strict files; `targets` is the resolver's
    // universe, index-aligned with `defs`.
    struct FnDef {
        file: usize,
        body: (usize, usize),
        name: String,
    }
    let mut defs: Vec<FnDef> = Vec::new();
    let mut targets: Vec<dataflow::FnTarget> = Vec::new();
    for &fi in &strict {
        let ctx = &ctxs[fi];
        for f in &ctx.scopes.fns {
            if ctx.in_test(ctx.code[f.body.0].line) {
                continue;
            }
            defs.push(FnDef {
                file: fi,
                body: f.body,
                name: f.name.clone(),
            });
            targets.push(dataflow::FnTarget {
                name: f.name.clone(),
                self_type: f.self_type.clone(),
            });
        }
    }

    // hot: def index → why it is hot (the seeding call site).
    let mut hot: BTreeMap<usize, String> = BTreeMap::new();
    let calls: Vec<Vec<dataflow::CallSite>> = ctxs
        .iter()
        .enumerate()
        .map(|(i, ctx)| {
            if strict.contains(&i) {
                dataflow::call_sites(&ctx.code)
            } else {
                Vec::new()
            }
        })
        .collect();

    // Seed: calls made from inside a loop body in a strict file.
    for &fi in &strict {
        let ctx = &ctxs[fi];
        for c in &calls[fi] {
            if !ctx.scopes.in_loop(c.idx) || ctx.in_test(c.line) {
                continue;
            }
            let caller_self = ctx
                .scopes
                .enclosing_fn(c.idx)
                .and_then(|f| f.self_type.as_deref());
            for d in dataflow::resolve_call(c, caller_self, &targets) {
                let line = c.line;
                hot.entry(d)
                    .or_insert_with(|| format!("called from a loop at {}:{line}", ctx.path));
            }
        }
    }

    // Propagate: everything a hot fn calls is hot too.
    loop {
        let mut newly: Vec<(usize, String)> = Vec::new();
        for &d in hot.keys() {
            let def = &defs[d];
            let ctx = &ctxs[def.file];
            for c in &calls[def.file] {
                if !(def.body.0..=def.body.1).contains(&c.idx) || ctx.in_test(c.line) {
                    continue;
                }
                for t in dataflow::resolve_call(c, targets[d].self_type.as_deref(), &targets) {
                    if t != d && !hot.contains_key(&t) {
                        newly.push((
                            t,
                            format!(
                                "called from hot fn `{}` at {}:{}",
                                def.name, ctx.path, c.line
                            ),
                        ));
                    }
                }
            }
        }
        if newly.is_empty() {
            break;
        }
        for (t, cause) in newly {
            hot.entry(t).or_insert(cause);
        }
    }

    // Findings: allocations in loops, or anywhere inside a hot fn body.
    let mut out: Vec<(String, RawFinding)> = Vec::new();
    for &fi in &strict {
        let ctx = &ctxs[fi];
        for a in dataflow::alloc_sites(&ctx.code) {
            if ctx.in_test(a.line) {
                continue;
            }
            let message = if ctx.scopes.in_loop(a.idx) {
                format!(
                    "`{}` allocates inside a loop in a strict perf path — hoist the \
                     buffer out of the loop or reuse a caller-provided scratch",
                    a.what
                )
            } else if let Some((def, cause)) = defs
                .iter()
                .enumerate()
                .filter(|(d, def)| {
                    def.file == fi
                        && (def.body.0..=def.body.1).contains(&a.idx)
                        && hot.contains_key(d)
                })
                // Innermost enclosing hot fn gives the sharpest message.
                .min_by_key(|(_, def)| def.body.1 - def.body.0)
                .map(|(d, def)| (def, hot[&d].clone()))
            {
                format!(
                    "`{}` allocates in `{}`, which runs per-iteration ({cause}) — \
                     hoist the buffer to the caller or take a scratch parameter",
                    a.what, def.name
                )
            } else {
                continue;
            };
            out.push((ctx.path.clone(), RawFinding::new(a.line, a.col, message)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn strict_cfg(paths: &[&str]) -> Config {
        let mut cfg = Config::default();
        cfg.rules
            .entry("hot-alloc".to_owned())
            .or_default()
            .strict_paths = paths.iter().map(|p| (*p).to_owned()).collect();
        cfg
    }

    fn findings(cfg: &Config, sources: &[(&str, &str)]) -> Vec<(String, RawFinding)> {
        let ctxs: Vec<FileCtx> = sources
            .iter()
            .map(|(p, s)| FileCtx::new(p, s, cfg))
            .collect();
        check(&ctxs, cfg)
    }

    #[test]
    fn alloc_in_loop_is_flagged_only_in_strict_paths() {
        let src = "fn f(xs: &[u32]) { for x in xs { let v = Vec::new(); use_it(v, x); } }";
        let cfg = strict_cfg(&["crates/x/src/hot.rs"]);
        assert_eq!(findings(&cfg, &[("crates/x/src/hot.rs", src)]).len(), 1);
        assert!(findings(&cfg, &[("crates/x/src/cold.rs", src)]).is_empty());
    }

    #[test]
    fn alloc_outside_any_loop_or_hot_fn_is_clean() {
        let src = "fn setup() -> Vec<u32> { let mut v = Vec::new(); v.push(1); v }";
        let cfg = strict_cfg(&["crates/x/src/hot.rs"]);
        assert!(findings(&cfg, &[("crates/x/src/hot.rs", src)]).is_empty());
    }

    #[test]
    fn hotness_propagates_through_calls() {
        let src = "fn leaf() -> Vec<u32> { xs.iter().collect() }\n\
                   fn mid() { let v = leaf(); use_it(v); }\n\
                   fn drive(xs: &[u32]) { for _x in xs { mid(); } }\n";
        let cfg = strict_cfg(&["crates/x/src/hot.rs"]);
        let out = findings(&cfg, &[("crates/x/src/hot.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("`leaf`"), "{out:?}");
        assert!(out[0].1.message.contains("hot fn `mid`"), "{out:?}");
    }

    #[test]
    fn test_loops_do_not_seed_hotness() {
        let src = "fn helper() -> Vec<u32> { xs.to_vec() }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { for _i in 0..3 { helper(); } }\n}\n";
        let cfg = strict_cfg(&["crates/x/src/hot.rs"]);
        assert!(findings(&cfg, &[("crates/x/src/hot.rs", src)]).is_empty());
    }

    #[test]
    fn hotness_crosses_strict_files() {
        let lib = "fn stitch() -> Vec<u32> { parts.iter().collect() }";
        let drv = "fn run(rounds: &[u32]) { for _r in rounds { stitch(); } }";
        let cfg = strict_cfg(&["crates/x/src/a.rs", "crates/x/src/b.rs"]);
        let out = findings(
            &cfg,
            &[("crates/x/src/a.rs", lib), ("crates/x/src/b.rs", drv)],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, "crates/x/src/a.rs");
    }
}

//! `float-eq`: no exact equality on floating-point values.
//!
//! Two forms are caught: the operators `==` / `!=` with a float literal on
//! either side, and `assert_eq!` / `assert_ne!` where a top-level macro
//! argument is a bare float literal. (Comparing two float *variables* is
//! invisible to a token-level pass; the literal forms are where this
//! workspace's real bugs were.) The rule applies inside tests too — an
//! exact-equality assertion on a value that went through sampling or
//! renormalization is a latent flake.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::{TokKind, Token};
use crate::rules::RawFinding;

pub fn check(ctx: &FileCtx, _cfg: &Config, out: &mut Vec<RawFinding>) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        // `x == 1.0`, `0.0 != y` — a float literal adjacent to the operator
        // (allowing a unary minus).
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let left_float = i > 0 && code[i - 1].kind == TokKind::Float;
            let right_float = is_float_operand(code, i + 1);
            if left_float || right_float {
                out.push(RawFinding::new(
                    t.line,
                    t.col,
                    format!(
                        "float literal compared with `{}`: compare with an \
                         epsilon (`(a - b).abs() < eps`) or on integers",
                        t.text
                    ),
                ));
            }
        }
        // assert_eq!(x, 1.0) — a top-level argument that is a float literal.
        if t.kind == TokKind::Ident && (t.text == "assert_eq" || t.text == "assert_ne") {
            let bang = code
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
            let open = code.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Punct && matches!(n.text.as_str(), "(" | "[" | "{")
            });
            if bang && open && macro_has_bare_float_arg(code, i + 2) {
                out.push(RawFinding::new(
                    t.line,
                    t.col,
                    format!(
                        "`{}!` against a float literal asserts exact float \
                         equality: assert with an epsilon instead",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// True when the token at `i` (or `-` then a float) is a float literal.
fn is_float_operand(code: &[Token], i: usize) -> bool {
    match code.get(i) {
        Some(t) if t.kind == TokKind::Float => true,
        Some(t) if t.kind == TokKind::Punct && t.text == "-" => {
            code.get(i + 1).is_some_and(|n| n.kind == TokKind::Float)
        }
        _ => false,
    }
}

/// Scans a macro's delimited body starting at `open`; true when any
/// top-level (depth-1) comma-separated argument is exactly a float literal,
/// optionally negated.
fn macro_has_bare_float_arg(code: &[Token], open: usize) -> bool {
    let (open_s, close_s) = match code[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0i32;
    let mut arg: Vec<&Token> = Vec::new();
    let bare_float = |arg: &[&Token]| match arg {
        [t] => t.kind == TokKind::Float,
        [m, t] => m.kind == TokKind::Punct && m.text == "-" && t.kind == TokKind::Float,
        _ => false,
    };
    for t in &code[open..] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                s if s == open_s => {
                    depth += 1;
                    if depth > 1 {
                        arg.push(t);
                    }
                    continue;
                }
                s if s == close_s => {
                    depth -= 1;
                    if depth == 0 {
                        return bare_float(&arg);
                    }
                    arg.push(t);
                    continue;
                }
                "," if depth == 1 => {
                    if bare_float(&arg) {
                        return true;
                    }
                    arg.clear();
                    continue;
                }
                // Other delimiters inside arguments still need depth
                // tracking so commas inside them don't split.
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        if depth >= 1 {
            arg.push(t);
        }
        if depth <= 0 {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ctx = FileCtx::new("crates/x/src/lib.rs", src, &Config::default());
        let mut out = Vec::new();
        check(&ctx, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_operator_forms() {
        let out = findings("fn f(x: f64) { if x == 0.0 || 1.5 != x || x == -2.0 {} }");
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn flags_bare_float_assert_args() {
        let out = findings("fn t() { assert_eq!(m, 100.0); assert_ne!(-0.5, m); }");
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn nested_float_literals_do_not_flag_asserts() {
        // The floats are function arguments / vec elements, not the
        // compared values.
        let out = findings(
            "fn t() { assert_eq!(poisson(&mut r, 0.0), 0); \
             assert_eq!(index_values(&[0.0, 0.5]), vec![0, 50]); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn integer_and_ordering_comparisons_are_fine() {
        let out = findings("fn f(x: f64, n: u64) { if n == 0 || x <= 0.0 || x >= 1.0 {} }");
        assert!(out.is_empty(), "{out:?}");
    }
}

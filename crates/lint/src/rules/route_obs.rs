//! `route-obs`: instrumentation completeness for HTTP routes.
//!
//! Collects every route registration of the workspace idiom
//! `.route(Method::Get, "/path", …)` and every obs counter registration
//! `counter("name", …)` from non-test code, workspace-wide. A route is
//! considered instrumented when some counter's name mentions the route's
//! final path segment (slugified; plain substring match, so `frame` is
//! found in `sift_trends_frames_served_total`). Routes with no matching
//! counter are findings at the registration site.
//!
//! The match is cross-crate on purpose: the trends-service counters that
//! cover `/api/frame` live one crate away from the router that registers
//! it.

use crate::config::Config;
use crate::context::{str_literal_content, FileCtx};
use crate::lexer::TokKind;
use crate::rules::RawFinding;

pub fn check(files: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    let mut routes: Vec<(String, String, u32, u32)> = Vec::new(); // path-lit, file, line, col
    let mut counters: Vec<String> = Vec::new();

    for ctx in files {
        if ctx.is_test_file || ctx.is_bin_file {
            continue;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            // `.route(Method::<X>, "<path>"`.
            if t.text == "route"
                && i > 0
                && code[i - 1].text == "."
                && tok_is(code, i + 1, TokKind::Punct, "(")
                && tok_is(code, i + 2, TokKind::Ident, "Method")
                && tok_is(code, i + 3, TokKind::Punct, "::")
                && code.get(i + 4).is_some_and(|t| t.kind == TokKind::Ident)
                && tok_is(code, i + 5, TokKind::Punct, ",")
                && code.get(i + 6).is_some_and(|t| t.kind == TokKind::Str)
                && !ctx.in_test(t.line)
            {
                routes.push((
                    str_literal_content(&code[i + 6].text).to_owned(),
                    ctx.path.clone(),
                    t.line,
                    t.col,
                ));
            }
            // `counter("name"` — covers `sift_obs::counter(…)` and the
            // re-exported bare form.
            if t.text == "counter"
                && tok_is(code, i + 1, TokKind::Punct, "(")
                && code.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
                && !ctx.in_test(t.line)
            {
                counters.push(str_literal_content(&code[i + 2].text).to_owned());
            }
        }
    }

    routes
        .into_iter()
        .filter(|(path, file, _, _)| {
            !cfg.path_allowed("route-obs", file) && {
                let seg = route_slug(path);
                !counters.iter().any(|c| c.contains(&seg))
            }
        })
        .map(|(path, file, line, col)| {
            let seg = route_slug(&path);
            (
                file,
                RawFinding::new(
                    line,
                    col,
                    format!(
                        "route `{path}` has no obs counter mentioning \
                         `{seg}`: add a `sift_obs::counter(\"…{seg}…\")` so \
                         the route shows up in /metrics"
                    ),
                ),
            )
        })
        .collect()
}

fn tok_is(code: &[crate::lexer::Token], i: usize, kind: TokKind, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == kind && t.text == text)
}

/// The route's final path segment, lowercased and reduced to `[a-z0-9_]`.
fn route_slug(path: &str) -> String {
    let seg = path.rsplit('/').find(|s| !s.is_empty()).unwrap_or("root");
    let slug: String = seg
        .chars()
        .map(|c| c.to_ascii_lowercase())
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if slug.is_empty() {
        "root".to_owned()
    } else {
        slug
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src, &Config::default())
    }

    #[test]
    fn uncovered_route_is_flagged_and_covered_is_not() {
        let router = ctx(
            "crates/a/src/serve.rs",
            r#"fn r(b: Router) -> Router {
                b.route(Method::Get, "/stats", |_| s())
                 .route(Method::Post, "/api/frame", |_| f())
            }"#,
        );
        let metrics = ctx(
            "crates/b/src/service.rs",
            r#"fn f() { sift_obs::counter("sift_trends_frames_served_total", &[]).inc(); }"#,
        );
        let out = check(&[router, metrics], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("/stats"));
        assert_eq!(out[0].0, "crates/a/src/serve.rs");
    }

    #[test]
    fn test_code_routes_and_counters_do_not_count() {
        let f = ctx(
            "crates/a/src/server.rs",
            r#"#[cfg(test)]
            mod tests {
                fn r(b: Router) -> Router { b.route(Method::Get, "/ping", |_| p()) }
            }"#,
        );
        assert!(check(&[f], &Config::default()).is_empty());
    }

    #[test]
    fn slugs() {
        assert_eq!(route_slug("/api/frame"), "frame");
        assert_eq!(route_slug("/healthz"), "healthz");
        assert_eq!(route_slug("/"), "root");
    }
}

//! The rule registry.
//!
//! Every rule is declared here with its id, default severity, scope and
//! rationale; the reporter generates the user-facing rule-reference table
//! from this registry, so the docs cannot drift from the code.

use crate::config::{Config, Severity};
use crate::context::FileCtx;

pub mod breaker_obs;
pub mod cluster_obs;
pub mod deadline_propagation;
pub mod durable_write;
pub mod fault_obs;
pub mod float_eq;
pub mod hot_alloc;
pub mod lock_order;
pub mod lossy_cast;
pub mod nemesis_obs;
pub mod no_panic;
pub mod no_print;
pub mod route_obs;
pub mod serve_obs;
pub mod swallowed_result;
pub mod trace_span;
pub mod wall_clock;

/// A finding before path/severity attachment.
#[derive(Clone, Debug)]
pub struct RawFinding {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl RawFinding {
    pub fn new(line: u32, col: u32, message: String) -> RawFinding {
        RawFinding { line, col, message }
    }
}

/// How a rule runs.
pub enum RuleKind {
    /// Independently per file.
    PerFile(fn(&FileCtx, &Config, &mut Vec<RawFinding>)),
    /// Once over the whole workspace (cross-file facts needed). Returns
    /// `(path, finding)` pairs.
    Workspace(fn(&[FileCtx], &Config) -> Vec<(String, RawFinding)>),
}

/// A registered rule.
pub struct Rule {
    pub id: &'static str,
    /// One-line summary for the reference table.
    pub summary: &'static str,
    /// Why the rule exists, in terms of the paper's pipeline.
    pub rationale: &'static str,
    pub default_severity: Severity,
    /// Whether findings inside test context count.
    pub applies_in_tests: bool,
    /// Whether binary/tool sources (`bin_paths`) are exempt.
    pub skips_bins: bool,
    pub kind: RuleKind,
}

/// All rules, in reporting order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "no-panic",
            summary: "no `unwrap()` / `expect()` / `panic!` in library code",
            rationale: "A fetch fleet thread that panics takes its share of the \
                        crawl with it; library errors must propagate as values \
                        so the collection run can count, retry and degrade.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(no_panic::check),
        },
        Rule {
            id: "wall-clock",
            summary: "no `Instant::now` / `SystemTime::now` / `thread::sleep` \
                      outside the net/obs internals",
            rationale: "The world model replays two years of search interest \
                        deterministically; a wall-clock read in simulation code \
                        silently decouples runs from `sift-simtime` and makes \
                        calibration unreproducible.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(wall_clock::check),
        },
        Rule {
            id: "lossy-cast",
            summary: "no truncating `as` casts on numeric values (strict paths: \
                      no numeric `as` at all)",
            rationale: "Interest indices are renormalized and stitched across \
                        frames; one silent `u64 as u8`-style truncation skews \
                        every downstream magnitude (West's calibration paper \
                        shows how sensitive stitched series are).",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: false,
            kind: RuleKind::PerFile(lossy_cast::check),
        },
        Rule {
            id: "durable-write",
            summary: "persistence modules (`strict_paths`) must install files \
                      via the atomic write helper, not `File::create` / \
                      `fs::write`",
            rationale: "Crash-safe resume trusts whatever recovery reads back; \
                        a checkpoint replaced in place can be half-written at \
                        the moment of death, so durable state must reach disk \
                        as temp + fsync + rename \
                        (`sift_journal::atomic::write_atomic`) only.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(durable_write::check),
        },
        Rule {
            id: "float-eq",
            summary: "no `==` / `!=` (or `assert_eq!`) against float literals",
            rationale: "Interest values pass through sampling, averaging and \
                        renormalization; exact float equality encodes an \
                        assumption those stages do not preserve. Compare with \
                        an epsilon or on integer representations.",
            default_severity: Severity::Deny,
            applies_in_tests: true,
            skips_bins: false,
            kind: RuleKind::PerFile(float_eq::check),
        },
        Rule {
            id: "no-print",
            summary: "no `println!` / `eprintln!` / `dbg!` in library crates",
            rationale: "Stdout debugging bypasses the structured `sift-obs` \
                        event log, so production incidents lose the fields \
                        (route, identity, stage) the paper's analyses key on.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(no_print::check),
        },
        Rule {
            id: "trace-span",
            summary: "pipeline modules (`strict_paths`) must create spans via \
                      the context-carrying API, never bare `Span::enter`",
            rationale: "Causal trace trees are only as connected as their \
                        weakest handoff: a bare `Span::enter` on a worker \
                        thread silently roots a new trace, so the study and \
                        fetcher crates must thread `SpanContext` explicitly \
                        (`span_in`) across every queue and thread boundary.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(trace_span::check),
        },
        Rule {
            id: "lock-order",
            summary: "no pair of locks acquired in both orders anywhere in the \
                      workspace (and no re-acquisition while held)",
            rationale: "The fetch queue, obs registry, trace store and server \
                        all hold locks across calls into each other; an ABBA \
                        pair only deadlocks under contention, exactly when an \
                        outage makes every thread busy — so the acquisition \
                        DAG is checked globally at lint time.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(lock_order::check),
        },
        Rule {
            id: "hot-alloc",
            summary: "no per-iteration heap allocation (`Vec::new`, \
                      `.collect()`, `.clone()`, `.to_vec()`, `format!`, …) \
                      in strict perf paths",
            rationale: "Stitching and spike detection run once per frame per \
                        refetch round over two years of series; an allocation \
                        inside that loop — or in any fn the loop calls — \
                        multiplies by the whole campaign, so hot paths must \
                        hoist or reuse scratch buffers.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(hot_alloc::check),
        },
        Rule {
            id: "deadline-propagation",
            summary: "egress calls in net/fetcher (`strict_paths`) must have a \
                      deadline in scope (fn or constructing impl)",
            rationale: "Frame budgets come from the run deadline; an egress \
                        call reached without one waits as long as the peer \
                        lets it, and a single stuck fetch stalls the round — \
                        every send/fetch chain must forward the deadline or \
                        carry an inline allow saying why not.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(deadline_propagation::check),
        },
        Rule {
            id: "swallowed-result",
            summary: "no `let _ =` over a fallible call and no statement-position \
                      `.ok()` in library crates",
            rationale: "Degradation is measured, not assumed: an error \
                        discarded at the call site never reaches the run \
                        summary or /metrics, so the paper's refusal/timeout \
                        accounting silently undercounts. Handle it, count it, \
                        or justify the discard inline.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::PerFile(swallowed_result::check),
        },
        Rule {
            id: "route-obs",
            summary: "every registered HTTP route needs a matching obs counter",
            rationale: "PR 1 made /metrics the operational window into the \
                        system; a route with no counter is invisible there, so \
                        instrumentation completeness is checked, not remembered.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(route_obs::check),
        },
        Rule {
            id: "fault-obs",
            summary: "every `FaultKind` variant needs a matching \
                      `sift_net_faults_injected_total` label string",
            rationale: "Chaos runs are judged against /metrics: a fault kind \
                        whose snake_case label never appears in code is \
                        injected but invisible, so fault coverage is checked \
                        at lint time, not discovered mid-incident.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(fault_obs::check),
        },
        Rule {
            id: "breaker-obs",
            summary: "every `BreakerState` variant needs a matching \
                      `sift_client_breaker_state` label string",
            rationale: "Overload incidents are reconstructed from the breaker \
                        gauge and transition log; a state whose snake_case \
                        label never appears in code could be entered but not \
                        told apart in /metrics, so label coverage is checked \
                        at lint time.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(breaker_obs::check),
        },
        Rule {
            id: "cluster-obs",
            summary: "every `ShedCause` / `RerouteReason` variant needs a \
                      matching shed/reroute counter label string",
            rationale: "A sharded crawl degrades by shedding queue work and \
                        rerouting dead workers' shards; a cause whose \
                        snake_case label never appears in code can fire during \
                        an incident yet be indistinguishable in /metrics, so \
                        label and counter coverage are checked at lint time.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(cluster_obs::check),
        },
        Rule {
            id: "nemesis-obs",
            summary: "every `NemesisFaultKind` variant needs a matching \
                      `sift_cluster_nemesis_faults_total` label string",
            rationale: "Chaos runs are judged after the fact from /metrics; a \
                        nemesis fault kind whose snake_case label never \
                        appears in code could be injected during a run yet be \
                        invisible in the audit, so label and counter coverage \
                        are checked at lint time.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(nemesis_obs::check),
        },
        Rule {
            id: "serve-obs",
            summary: "every `DegradeReason` variant needs a matching \
                      `sift_serve_degraded_reads_total` label string",
            rationale: "The serving daemon degrades reads instead of failing \
                        them, so incidents are judged entirely from the \
                        degraded-read exposition; a reason whose snake_case \
                        label never appears in code could hold for hours while \
                        its reads stay indistinguishable from healthy ones — \
                        label and counter coverage are checked at lint time.",
            default_severity: Severity::Deny,
            applies_in_tests: false,
            skips_bins: true,
            kind: RuleKind::Workspace(serve_obs::check),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab() {
        let rules = registry();
        let mut ids: Vec<_> = rules.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rules.len(), "duplicate rule id");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{id} is not kebab-case"
            );
        }
    }
}

//! `breaker-obs`: observability completeness for circuit-breaker states.
//!
//! Finds every `enum BreakerState` definition in non-test workspace code
//! and checks that each variant's snake_case label (`HalfOpen` →
//! `"half_open"`) appears as a string literal somewhere in non-test code,
//! and that the `sift_client_breaker_state` gauge itself is registered. A
//! breaker state whose label string is missing could be entered but never
//! distinguished in `/metrics` or the transition log — an overload
//! incident could not be reconstructed from the exposition. Findings
//! anchor at the enum definition site.
//!
//! Like `fault-obs`, the match is workspace-wide on purpose: the gauge
//! registration and the `label()` mapping live in the breaker module, but
//! nothing forces them to.

use crate::config::Config;
use crate::context::{str_literal_content, FileCtx};
use crate::lexer::TokKind;
use crate::rules::fault_obs::{enum_variants, snake_case};
use crate::rules::RawFinding;

const GAUGE: &str = "sift_client_breaker_state";

pub fn check(files: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    // (variant, enum file, enum line, enum col)
    let mut variants: Vec<(String, String, u32, u32)> = Vec::new();
    let mut enum_sites: Vec<(String, u32, u32)> = Vec::new();
    let mut literals: Vec<String> = Vec::new();

    for ctx in files {
        if ctx.is_test_file || ctx.is_bin_file {
            continue;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Str && !ctx.in_test(t.line) {
                literals.push(str_literal_content(&t.text).to_owned());
            }
            // `enum BreakerState { Variant, … }`
            if t.kind == TokKind::Ident
                && t.text == "enum"
                && code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text == "BreakerState")
                && !ctx.in_test(t.line)
            {
                enum_sites.push((ctx.path.clone(), t.line, t.col));
                for v in enum_variants(code, i + 2) {
                    variants.push((v, ctx.path.clone(), t.line, t.col));
                }
            }
        }
    }

    let mut out = Vec::new();
    let gauge_registered = literals.iter().any(|l| l == GAUGE);
    for (file, line, col) in &enum_sites {
        if cfg.path_allowed("breaker-obs", file) {
            continue;
        }
        if !gauge_registered {
            out.push((
                file.clone(),
                RawFinding::new(
                    *line,
                    *col,
                    format!(
                        "`BreakerState` exists but no `{GAUGE}` gauge is \
                         registered anywhere: breaker transitions would be \
                         invisible in /metrics"
                    ),
                ),
            ));
        }
    }
    for (variant, file, line, col) in variants {
        if cfg.path_allowed("breaker-obs", &file) {
            continue;
        }
        let label = snake_case(&variant);
        if !literals.iter().any(|l| l == &label) {
            out.push((
                file,
                RawFinding::new(
                    line,
                    col,
                    format!(
                        "`BreakerState::{variant}` has no `\"{label}\"` label \
                         string in non-test code: that state could be entered \
                         but never distinguished in the `{GAUGE}` exposition \
                         or the transition log"
                    ),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src, &Config::default())
    }

    const ENUM_SRC: &str = r#"
        pub enum BreakerState {
            Closed,
            Open,
            HalfOpen,
        }
        impl BreakerState {
            pub fn label(self) -> &'static str {
                match self {
                    BreakerState::Closed => "closed",
                    BreakerState::Open => "open",
                    BreakerState::HalfOpen => "half_open",
                }
            }
        }
    "#;

    #[test]
    fn fully_labelled_enum_with_gauge_passes() {
        let breaker = ctx("crates/a/src/breaker.rs", ENUM_SRC);
        let wiring = ctx(
            "crates/a/src/client.rs",
            r#"fn f(s: BreakerState) {
                sift_obs::gauge("sift_client_breaker_state", &[("endpoint", "e")]).set(0);
            }"#,
        );
        assert!(check(&[breaker, wiring], &Config::default()).is_empty());
    }

    #[test]
    fn missing_label_string_is_flagged() {
        let breaker = ctx(
            "crates/a/src/breaker.rs",
            r#"pub enum BreakerState { Closed, HalfOpen }
               fn label() -> &'static str { "closed" }
               fn g() { gauge("sift_client_breaker_state", &[]); }"#,
        );
        let out = check(&[breaker], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("HalfOpen"));
        assert!(out[0].1.message.contains("\"half_open\""));
    }

    #[test]
    fn unregistered_gauge_is_flagged_at_enum_site() {
        let breaker = ctx(
            "crates/a/src/breaker.rs",
            r#"pub enum BreakerState { Open }
               fn label() -> &'static str { "open" }"#,
        );
        let out = check(&[breaker], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("sift_client_breaker_state"));
    }

    #[test]
    fn test_code_enums_do_not_count() {
        let f = ctx(
            "crates/a/src/x.rs",
            r#"#[cfg(test)]
            mod tests {
                enum BreakerState { Wedged }
            }"#,
        );
        assert!(check(&[f], &Config::default()).is_empty());
    }
}

//! `nemesis-obs`: observability completeness for nemesis fault kinds.
//!
//! The chaos harness injects cluster-grade faults (`enum
//! NemesisFaultKind`: partitions, heartbeat loss, process kills, heals)
//! and every injection is supposed to be countable under
//! `sift_cluster_nemesis_faults_total{kind=…}`. A nemesis run is judged
//! after the fact from `/metrics` and events, so this rule checks that
//! every variant's snake_case label (`PartitionAsym` →
//! `"partition_asym"`) appears as a string literal in non-test
//! workspace code, and that the counter itself is registered somewhere.
//! A fault kind with no label could fire during a chaos run yet be
//! invisible in the audit — the one place a silent fault is worse than
//! a loud one. Findings anchor at the enum definition site.
//!
//! Like the other `*-obs` rules, the match is workspace-wide on
//! purpose: the counter registration and the `label()` mapping live
//! next to the enum today, but nothing forces them to stay there.

use crate::config::Config;
use crate::context::{str_literal_content, FileCtx};
use crate::lexer::TokKind;
use crate::rules::fault_obs::{enum_variants, snake_case};
use crate::rules::RawFinding;

/// The watched enum and the counter it must be visible through.
const WATCHED: [(&str, &str); 1] = [("NemesisFaultKind", "sift_cluster_nemesis_faults_total")];

pub fn check(files: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    // (enum name, counter, variant, file, line, col)
    let mut variants: Vec<(&str, &str, String, String, u32, u32)> = Vec::new();
    let mut enum_sites: Vec<(&str, &str, String, u32, u32)> = Vec::new();
    let mut literals: Vec<String> = Vec::new();

    for ctx in files {
        if ctx.is_test_file || ctx.is_bin_file {
            continue;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Str && !ctx.in_test(t.line) {
                literals.push(str_literal_content(&t.text).to_owned());
            }
            if t.kind == TokKind::Ident && t.text == "enum" && !ctx.in_test(t.line) {
                let Some(name_tok) = code.get(i + 1) else {
                    continue;
                };
                let Some((name, counter)) = WATCHED
                    .iter()
                    .copied()
                    .find(|(name, _)| name_tok.kind == TokKind::Ident && name_tok.text == *name)
                else {
                    continue;
                };
                enum_sites.push((name, counter, ctx.path.clone(), t.line, t.col));
                for v in enum_variants(code, i + 2) {
                    variants.push((name, counter, v, ctx.path.clone(), t.line, t.col));
                }
            }
        }
    }

    let mut out = Vec::new();
    for (name, counter, file, line, col) in &enum_sites {
        if cfg.path_allowed("nemesis-obs", file) {
            continue;
        }
        if !literals.iter().any(|l| l == counter) {
            out.push((
                file.clone(),
                RawFinding::new(
                    *line,
                    *col,
                    format!(
                        "`{name}` exists but no `{counter}` counter is \
                         registered anywhere: injected nemesis faults would \
                         be invisible in /metrics"
                    ),
                ),
            ));
        }
    }
    for (name, counter, variant, file, line, col) in variants {
        if cfg.path_allowed("nemesis-obs", &file) {
            continue;
        }
        let label = snake_case(&variant);
        if !literals.iter().any(|l| l == &label) {
            out.push((
                file,
                RawFinding::new(
                    line,
                    col,
                    format!(
                        "`{name}::{variant}` has no `\"{label}\"` label string \
                         in non-test code: that fault kind could be injected \
                         but never distinguished in the `{counter}` exposition"
                    ),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src, &Config::default())
    }

    const NEMESIS_SRC: &str = r#"
        pub enum NemesisFaultKind {
            PartitionSym,
            HeartbeatDrop,
        }
        impl NemesisFaultKind {
            pub fn label(self) -> &'static str {
                match self {
                    NemesisFaultKind::PartitionSym => "partition_sym",
                    NemesisFaultKind::HeartbeatDrop => "heartbeat_drop",
                }
            }
        }
        fn count(k: NemesisFaultKind) {
            sift_obs::counter("sift_cluster_nemesis_faults_total", &[("kind", k.label())]).inc();
        }
    "#;

    #[test]
    fn fully_labelled_kinds_with_a_counter_pass() {
        let fault = ctx("crates/a/src/fault.rs", NEMESIS_SRC);
        assert!(check(&[fault], &Config::default()).is_empty());
    }

    #[test]
    fn missing_label_string_is_flagged() {
        let fault = ctx(
            "crates/a/src/fault.rs",
            r#"pub enum NemesisFaultKind { PartitionSym, KillCoordinator }
               fn label() -> &'static str { "partition_sym" }
               fn count() { counter("sift_cluster_nemesis_faults_total", &[]); }"#,
        );
        let out = check(&[fault], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("KillCoordinator"));
        assert!(out[0].1.message.contains("\"kill_coordinator\""));
    }

    #[test]
    fn unregistered_counter_is_flagged_at_enum_site() {
        let fault = ctx(
            "crates/a/src/fault.rs",
            r#"pub enum NemesisFaultKind { Heal }
               fn label() -> &'static str { "heal" }"#,
        );
        let out = check(&[fault], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0]
            .1
            .message
            .contains("sift_cluster_nemesis_faults_total"));
    }

    #[test]
    fn label_in_a_test_module_does_not_count() {
        let fault = ctx(
            "crates/a/src/fault.rs",
            r#"pub enum NemesisFaultKind { SlowLink }
               fn count() { counter("sift_cluster_nemesis_faults_total", &[]); }
               #[cfg(test)]
               mod tests {
                   fn label() -> &'static str { "slow_link" }
               }"#,
        );
        let out = check(&[fault], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("SlowLink"));
    }

    #[test]
    fn other_enums_are_ignored() {
        let f = ctx("crates/a/src/x.rs", "pub enum Unwatched { A }");
        assert!(check(&[f], &Config::default()).is_empty());
    }
}

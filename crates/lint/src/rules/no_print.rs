//! `no-print`: library crates log through `sift-obs`, not stdout.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

pub fn check(ctx: &FileCtx, _cfg: &Config, out: &mut Vec<RawFinding>) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !PRINT_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        let is_macro = code
            .get(i + 1)
            .is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
        // `writeln!`/`write!` to an arbitrary sink are fine; only the
        // stdout/stderr family is flagged.
        if is_macro {
            out.push(RawFinding::new(
                t.line,
                t.col,
                format!(
                    "`{}!` in a library crate: emit a structured \
                     `sift_obs::event` (or return the text to the caller)",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ctx = FileCtx::new("crates/x/src/lib.rs", src, &Config::default());
        let mut out = Vec::new();
        check(&ctx, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_print_family() {
        let out = findings("fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(z); }");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn writeln_and_idents_are_fine() {
        let out = findings(
            "fn f(w: &mut W) { writeln!(w, \"x\").ok(); let println = 3; let _ = println; }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! `wall-clock`: simulation code must not read the host clock.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

pub fn check(ctx: &FileCtx, _cfg: &Config, out: &mut Vec<RawFinding>) {
    let code = &ctx.code;
    let ident = |i: usize, s: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    };
    let punct = |i: usize, s: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    };

    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Instant::now / SystemTime::now — the read itself, not the type
        // (holding a caller-supplied Instant is fine; minting one is not).
        if (t.text == "Instant" || t.text == "SystemTime")
            && punct(i + 1, "::")
            && ident(i + 2, "now")
        {
            out.push(RawFinding::new(
                t.line,
                t.col,
                format!(
                    "`{}::now()` bypasses sift-simtime: take a simulated \
                     clock/Hour from the caller instead",
                    t.text
                ),
            ));
        }
        // thread::sleep — blocks on host time.
        if t.text == "sleep" && i >= 2 && punct(i - 1, "::") && ident(i - 2, "thread") {
            out.push(RawFinding::new(
                code[i - 2].line,
                code[i - 2].col,
                "`thread::sleep` blocks on host time: simulation delays \
                 must come from sift-simtime"
                    .to_owned(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ctx = FileCtx::new("crates/x/src/lib.rs", src, &Config::default());
        let mut out = Vec::new();
        check(&ctx, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_clock_reads_and_sleep() {
        let out = findings(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
             std::thread::sleep(d); }",
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn holding_an_instant_is_fine() {
        let out = findings("fn f(started: Instant) -> Duration { started.elapsed() }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unrelated_sleep_ident_is_fine() {
        assert!(findings("fn f() { cfg.sleep = 3; sleep(); }").is_empty());
    }
}

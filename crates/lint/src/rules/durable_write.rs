//! `durable-write`: persistence modules must write through the atomic
//! helper.
//!
//! A bare `File::create` / `fs::write` in a module that owns on-disk
//! state replaces the file in place: a crash between truncate and the
//! final write leaves a torn file that recovery then trusts. The
//! workspace's persistence modules (named on this rule's `strict_paths`
//! in `Lint.toml`) must install files via
//! `sift_journal::atomic::write_atomic` — temp file + fsync + rename —
//! or justify the raw write with an inline
//! `// sift-lint: allow(durable-write)`. Outside those modules the rule
//! stays silent: scratch files and tools may write however they like.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<RawFinding>) {
    if !cfg.path_strict("durable-write", &ctx.path) {
        return;
    }
    let code = &ctx.code;
    let pair = |i: usize, a: &str, b: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == a)
            && code
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Punct && t.text == "::")
            && code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == b)
    };
    for (i, tok) in code.iter().enumerate() {
        let (what, fix) = if pair(i, "File", "create") {
            (
                "`File::create` truncates in place",
                "install via `sift_journal::atomic::write_atomic` (temp + fsync + rename)",
            )
        } else if pair(i, "fs", "write") {
            (
                "`fs::write` replaces the file non-atomically",
                "install via `sift_journal::atomic::write_atomic` (temp + fsync + rename)",
            )
        } else {
            continue;
        };
        out.push(RawFinding::new(
            tok.line,
            tok.col,
            format!("{what} in a persistence module: {fix}, or justify with an inline allow"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_cfg() -> Config {
        let mut cfg = Config::default();
        cfg.rules
            .entry("durable-write".into())
            .or_default()
            .strict_paths = vec!["**/persist.rs".into()];
        cfg
    }

    fn findings(path: &str, src: &str, cfg: &Config) -> Vec<RawFinding> {
        let ctx = FileCtx::new(path, src, cfg);
        let mut out = Vec::new();
        check(&ctx, cfg, &mut out);
        out
    }

    #[test]
    fn flags_raw_writes_on_strict_paths() {
        let cfg = strict_cfg();
        let out = findings(
            "crates/x/src/persist.rs",
            "fn f() { let f = File::create(p)?; std::fs::write(p, b)?; }",
            &cfg,
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn silent_off_the_strict_paths() {
        let cfg = strict_cfg();
        let out = findings(
            "crates/x/src/other.rs",
            "fn f() { let f = File::create(p)?; }",
            &cfg,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reads_and_writer_methods_are_fine() {
        let cfg = strict_cfg();
        let out = findings(
            "crates/x/src/persist.rs",
            "fn f() { let d = fs::read(p)?; File::open(p)?; w.write(b)?; w.write_all(b)?; }",
            &cfg,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! `serve-obs`: observability completeness for degraded serving.
//!
//! The online daemon's whole pitch is that reads *degrade* instead of
//! failing: a region that falls behind keeps answering from last-good
//! state, labelled with a `DegradeReason` and counted under
//! `sift_serve_degraded_reads_total{reason=…}`. Operators judge an
//! incident entirely from that exposition, so this rule checks that
//! every variant's snake_case label (`BreakerOpen` → `"breaker_open"`)
//! appears as a string literal in non-test workspace code, and that the
//! counter itself is registered somewhere. A degrade reason with no
//! label could hold for hours while its reads stay indistinguishable
//! from healthy ones — degradation nobody can see is an outage with
//! extra steps. Findings anchor at the enum definition site.
//!
//! Like the other `*-obs` rules, the match is workspace-wide on
//! purpose: the counter registration and the `label()` mapping live
//! next to the enum today, but nothing forces them to stay there.

use crate::config::Config;
use crate::context::{str_literal_content, FileCtx};
use crate::lexer::TokKind;
use crate::rules::fault_obs::{enum_variants, snake_case};
use crate::rules::RawFinding;

/// The watched enum and the counter it must be visible through.
const WATCHED: [(&str, &str); 1] = [("DegradeReason", "sift_serve_degraded_reads_total")];

pub fn check(files: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    // (enum name, counter, variant, file, line, col)
    let mut variants: Vec<(&str, &str, String, String, u32, u32)> = Vec::new();
    let mut enum_sites: Vec<(&str, &str, String, u32, u32)> = Vec::new();
    let mut literals: Vec<String> = Vec::new();

    for ctx in files {
        if ctx.is_test_file || ctx.is_bin_file {
            continue;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Str && !ctx.in_test(t.line) {
                literals.push(str_literal_content(&t.text).to_owned());
            }
            if t.kind == TokKind::Ident && t.text == "enum" && !ctx.in_test(t.line) {
                let Some(name_tok) = code.get(i + 1) else {
                    continue;
                };
                let Some((name, counter)) = WATCHED
                    .iter()
                    .copied()
                    .find(|(name, _)| name_tok.kind == TokKind::Ident && name_tok.text == *name)
                else {
                    continue;
                };
                enum_sites.push((name, counter, ctx.path.clone(), t.line, t.col));
                for v in enum_variants(code, i + 2) {
                    variants.push((name, counter, v, ctx.path.clone(), t.line, t.col));
                }
            }
        }
    }

    let mut out = Vec::new();
    for (name, counter, file, line, col) in &enum_sites {
        if cfg.path_allowed("serve-obs", file) {
            continue;
        }
        if !literals.iter().any(|l| l == counter) {
            out.push((
                file.clone(),
                RawFinding::new(
                    *line,
                    *col,
                    format!(
                        "`{name}` exists but no `{counter}` counter is \
                         registered anywhere: degraded reads would be \
                         invisible in /metrics"
                    ),
                ),
            ));
        }
    }
    for (name, counter, variant, file, line, col) in variants {
        if cfg.path_allowed("serve-obs", &file) {
            continue;
        }
        let label = snake_case(&variant);
        if !literals.iter().any(|l| l == &label) {
            out.push((
                file,
                RawFinding::new(
                    line,
                    col,
                    format!(
                        "`{name}::{variant}` has no `\"{label}\"` label string \
                         in non-test code: reads could degrade for that reason \
                         yet never be distinguished in the `{counter}` \
                         exposition"
                    ),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src, &Config::default())
    }

    const DEGRADE_SRC: &str = r#"
        pub enum DegradeReason {
            BreakerOpen,
            WalBacklog,
        }
        impl DegradeReason {
            pub fn label(self) -> &'static str {
                match self {
                    DegradeReason::BreakerOpen => "breaker_open",
                    DegradeReason::WalBacklog => "wal_backlog",
                }
            }
        }
        fn count(r: DegradeReason) {
            sift_obs::counter("sift_serve_degraded_reads_total", &[("reason", r.label())]).inc();
        }
    "#;

    #[test]
    fn fully_labelled_enum_with_counter_passes() {
        let f = ctx("crates/a/src/degrade.rs", DEGRADE_SRC);
        assert!(check(&[f], &Config::default()).is_empty());
    }

    #[test]
    fn missing_label_string_is_flagged() {
        let f = ctx(
            "crates/a/src/degrade.rs",
            r#"pub enum DegradeReason { BreakerOpen, DetectorLagging }
               fn label() -> &'static str { "breaker_open" }
               fn count() { counter("sift_serve_degraded_reads_total", &[]); }"#,
        );
        let out = check(&[f], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("DetectorLagging"));
        assert!(out[0].1.message.contains("\"detector_lagging\""));
    }

    #[test]
    fn unregistered_counter_is_flagged_at_enum_site() {
        let f = ctx(
            "crates/a/src/degrade.rs",
            r#"pub enum DegradeReason { WalBacklog }
               fn label() -> &'static str { "wal_backlog" }"#,
        );
        let out = check(&[f], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("sift_serve_degraded_reads_total"));
    }

    #[test]
    fn labels_may_live_in_another_file() {
        let enum_file = ctx(
            "crates/a/src/degrade.rs",
            "pub enum DegradeReason { BreakerOpen }",
        );
        let metrics_file = ctx(
            "crates/b/src/metrics.rs",
            r#"fn f() { counter("sift_serve_degraded_reads_total",
                               &[("reason", "breaker_open")]); }"#,
        );
        assert!(check(&[enum_file, metrics_file], &Config::default()).is_empty());
    }

    #[test]
    fn other_enums_and_test_code_do_not_count() {
        let f = ctx(
            "crates/a/src/x.rs",
            r#"pub enum Unwatched { A }
            #[cfg(test)]
            mod tests {
                enum DegradeReason { Wedged }
            }"#,
        );
        assert!(check(&[f], &Config::default()).is_empty());
    }
}

//! `trace-span`: pipeline code must create spans through the
//! context-carrying API.
//!
//! `Span::enter` parents a span on whatever the *current thread's*
//! innermost frame happens to be — on a worker thread that is nothing,
//! and the span silently becomes a fresh root, severing it from the
//! run's trace tree. The crates on this rule's `strict_paths` (the
//! study pipeline and the fetcher) hand work across threads constantly,
//! so they must use `sift_obs::span` for same-thread children,
//! `sift_obs::span_in(ctx, ..)` when crossing a thread or queue
//! boundary, and `sift_obs::span_root` for deliberate new traces — or
//! justify a bare enter with an inline
//! `// sift-lint: allow(trace-span)`. Elsewhere the rule stays silent.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<RawFinding>) {
    if !cfg.path_strict("trace-span", &ctx.path) {
        return;
    }
    let code = &ctx.code;
    for (i, tok) in code.iter().enumerate() {
        let bare_enter = tok.kind == TokKind::Ident
            && tok.text == "Span"
            && code
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Punct && t.text == "::")
            && code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "enter");
        if bare_enter {
            out.push(RawFinding::new(
                tok.line,
                tok.col,
                "bare `Span::enter` severs trace parentage across threads: use \
                 `sift_obs::span` / `span_in(ctx, ..)` / `span_root`, or justify \
                 with an inline allow"
                    .to_owned(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_cfg() -> Config {
        let mut cfg = Config::default();
        cfg.rules
            .entry("trace-span".into())
            .or_default()
            .strict_paths = vec!["**/pipeline.rs".into()];
        cfg
    }

    fn findings(path: &str, src: &str, cfg: &Config) -> Vec<RawFinding> {
        let ctx = FileCtx::new(path, src, cfg);
        let mut out = Vec::new();
        check(&ctx, cfg, &mut out);
        out
    }

    #[test]
    fn flags_bare_enter_on_strict_paths() {
        let cfg = strict_cfg();
        let out = findings(
            "crates/x/src/pipeline.rs",
            "fn f() { let _s = sift_obs::Span::enter(\"stage\"); }",
            &cfg,
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn silent_off_the_strict_paths() {
        let cfg = strict_cfg();
        let out = findings(
            "crates/x/src/other.rs",
            "fn f() { let _s = Span::enter(\"stage\"); }",
            &cfg,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn context_carrying_helpers_are_fine() {
        let cfg = strict_cfg();
        let out = findings(
            "crates/x/src/pipeline.rs",
            "fn f(c: sift_obs::SpanContext) { \
                 let _a = sift_obs::span(\"stage\"); \
                 let _b = sift_obs::span_in(c, \"stage\"); \
                 let _c = sift_obs::span_root(\"run\"); }",
            &cfg,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! `cluster-obs`: observability completeness for shed and reroute causes.
//!
//! The sharded crawl degrades in two places: the fetcher queue sheds work
//! (`enum ShedCause`) and the coordinator reroutes a dead or departing
//! worker's shards (`enum RerouteReason`). Both are reconstructed from
//! `/metrics` after the fact, so for each enum this rule checks that
//! every variant's snake_case label (`BreakerOpen` → `"breaker_open"`)
//! appears as a string literal in non-test workspace code, and that the
//! enum's counter (`sift_fetcher_shed_total` respectively
//! `sift_cluster_reroute_total`) is registered somewhere. A cause with no
//! label string could fire during an incident yet be indistinguishable —
//! or entirely invisible — in the exposition. Findings anchor at the enum
//! definition site.
//!
//! Like `fault-obs` and `breaker-obs`, the match is workspace-wide on
//! purpose: the counter registration and the `label()` mapping live next
//! to each enum today, but nothing forces them to stay there.

use crate::config::Config;
use crate::context::{str_literal_content, FileCtx};
use crate::lexer::TokKind;
use crate::rules::fault_obs::{enum_variants, snake_case};
use crate::rules::RawFinding;

/// The watched enums and the counter each one must be visible through.
const WATCHED: [(&str, &str); 2] = [
    ("ShedCause", "sift_fetcher_shed_total"),
    ("RerouteReason", "sift_cluster_reroute_total"),
];

pub fn check(files: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    // (enum name, counter, variant, file, line, col)
    let mut variants: Vec<(&str, &str, String, String, u32, u32)> = Vec::new();
    let mut enum_sites: Vec<(&str, &str, String, u32, u32)> = Vec::new();
    let mut literals: Vec<String> = Vec::new();

    for ctx in files {
        if ctx.is_test_file || ctx.is_bin_file {
            continue;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Str && !ctx.in_test(t.line) {
                literals.push(str_literal_content(&t.text).to_owned());
            }
            if t.kind == TokKind::Ident && t.text == "enum" && !ctx.in_test(t.line) {
                let Some(name_tok) = code.get(i + 1) else {
                    continue;
                };
                let Some((name, counter)) = WATCHED
                    .iter()
                    .copied()
                    .find(|(name, _)| name_tok.kind == TokKind::Ident && name_tok.text == *name)
                else {
                    continue;
                };
                enum_sites.push((name, counter, ctx.path.clone(), t.line, t.col));
                for v in enum_variants(code, i + 2) {
                    variants.push((name, counter, v, ctx.path.clone(), t.line, t.col));
                }
            }
        }
    }

    let mut out = Vec::new();
    for (name, counter, file, line, col) in &enum_sites {
        if cfg.path_allowed("cluster-obs", file) {
            continue;
        }
        if !literals.iter().any(|l| l == counter) {
            out.push((
                file.clone(),
                RawFinding::new(
                    *line,
                    *col,
                    format!(
                        "`{name}` exists but no `{counter}` counter is \
                         registered anywhere: its causes would be invisible \
                         in /metrics"
                    ),
                ),
            ));
        }
    }
    for (name, counter, variant, file, line, col) in variants {
        if cfg.path_allowed("cluster-obs", &file) {
            continue;
        }
        let label = snake_case(&variant);
        if !literals.iter().any(|l| l == &label) {
            out.push((
                file,
                RawFinding::new(
                    line,
                    col,
                    format!(
                        "`{name}::{variant}` has no `\"{label}\"` label string \
                         in non-test code: that cause could fire but never be \
                         distinguished in the `{counter}` exposition"
                    ),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src, &Config::default())
    }

    const REROUTE_SRC: &str = r#"
        pub enum RerouteReason {
            HeartbeatMissed,
            WorkerLeft,
        }
        impl RerouteReason {
            pub fn label(self) -> &'static str {
                match self {
                    RerouteReason::HeartbeatMissed => "heartbeat_missed",
                    RerouteReason::WorkerLeft => "worker_left",
                }
            }
        }
        fn count(r: RerouteReason) {
            sift_obs::counter("sift_cluster_reroute_total", &[("reason", r.label())]).inc();
        }
    "#;

    #[test]
    fn fully_labelled_enums_with_counters_pass() {
        let coord = ctx("crates/a/src/coord.rs", REROUTE_SRC);
        let queue = ctx(
            "crates/b/src/queue.rs",
            r#"pub enum ShedCause { BreakerOpen, Deadline }
               fn label() -> &'static str { "breaker_open" }
               fn label2() -> &'static str { "deadline" }
               fn count() { counter("sift_fetcher_shed_total", &[]); }"#,
        );
        assert!(check(&[coord, queue], &Config::default()).is_empty());
    }

    #[test]
    fn missing_label_string_is_flagged() {
        let coord = ctx(
            "crates/a/src/coord.rs",
            r#"pub enum RerouteReason { HeartbeatMissed, WorkerLeft }
               fn label() -> &'static str { "heartbeat_missed" }
               fn count() { counter("sift_cluster_reroute_total", &[]); }"#,
        );
        let out = check(&[coord], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("WorkerLeft"));
        assert!(out[0].1.message.contains("\"worker_left\""));
    }

    #[test]
    fn unregistered_counter_is_flagged_at_enum_site() {
        let queue = ctx(
            "crates/b/src/queue.rs",
            r#"pub enum ShedCause { Deadline }
               fn label() -> &'static str { "deadline" }"#,
        );
        let out = check(&[queue], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("sift_fetcher_shed_total"));
    }

    #[test]
    fn other_enums_and_test_code_do_not_count() {
        let f = ctx(
            "crates/a/src/x.rs",
            r#"pub enum Unwatched { A }
            #[cfg(test)]
            mod tests {
                enum RerouteReason { Wedged }
            }"#,
        );
        assert!(check(&[f], &Config::default()).is_empty());
    }
}

//! `no-panic`: no `unwrap()`, `expect()` or `panic!` in library code.

use crate::config::Config;
use crate::context::FileCtx;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

pub fn check(ctx: &FileCtx, _cfg: &Config, out: &mut Vec<RawFinding>) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // `.unwrap()` / `.expect(` — method position only, so local
            // functions named `unwrap` (or `unwrap_or`, a distinct ident)
            // don't fire.
            "unwrap" | "expect" => {
                let after_dot =
                    i > 0 && code[i - 1].kind == TokKind::Punct && code[i - 1].text == ".";
                let called = code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
                if after_dot && called {
                    out.push(RawFinding::new(
                        t.line,
                        t.col,
                        format!(
                            "`.{}()` in library code: propagate the error (`?`), \
                             or handle it with `unwrap_or_*` / `ok_or`",
                            t.text
                        ),
                    ));
                }
            }
            "panic" => {
                let is_macro = code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
                // `core::panic::…` paths and `#[panic_handler]` are not
                // invocations; requiring the `!` filters them out.
                if is_macro {
                    out.push(RawFinding::new(
                        t.line,
                        t.col,
                        "`panic!` in library code: return an error value instead".to_owned(),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ctx = FileCtx::new("crates/x/src/lib.rs", src, &Config::default());
        let mut out = Vec::new();
        check(&ctx, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let out = findings("fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"no\"); }");
        assert_eq!(out.len(), 3);
        assert!(out[0].message.contains("unwrap"));
    }

    #[test]
    fn ignores_lookalikes() {
        let out = findings(
            "fn f() { x.unwrap_or(0); x.unwrap_or_else(g); u.expect_len(2); \
             let s = \"don't panic!\"; // panic! in a comment\n }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn free_function_named_unwrap_is_fine() {
        assert!(findings("fn f() { unwrap(); }").is_empty());
    }
}

//! lock-order: a global lock-acquisition DAG across the workspace.
//!
//! Every production lock (a binding whose declared type mentions `Mutex` /
//! `RwLock`) is identified as `crate::name`. The per-fn dataflow walk
//! ([`crate::dataflow::lock_facts`]) reports which locks are live when
//! another is acquired; calls made while holding a guard propagate the
//! callee's (transitive) acquisitions back to the caller through the
//! CHA-lite resolver ([`crate::dataflow::resolve_call`]) — qualified and
//! `self.` calls resolve by type, bare names only when unambiguous, so
//! `h.state()` on a histogram never borrows `Breaker::state`'s lock. Any
//! pair of locks acquired in both orders anywhere — the classic ABBA
//! shape — is denied at every edge that participates, and a
//! re-acquisition of a lock already held is denied as a self-deadlock.

use crate::config::Config;
use crate::context::FileCtx;
use crate::dataflow::{self, CallSite, FnTarget};
use crate::rules::RawFinding;
use std::collections::{BTreeMap, BTreeSet};

/// One qualified acquisition edge: `held` was live when `acquired` was
/// taken, at `path:line:col`, possibly via a call to `via`.
struct Edge {
    held: String,
    acquired: String,
    path: String,
    line: u32,
    col: u32,
    via: Option<String>,
}

/// The crate a workspace-relative path belongs to.
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => c,
        _ => "root",
    }
}

fn qualify(krate: &str, lock: &str) -> String {
    format!("{krate}::{lock}")
}

pub fn check(ctxs: &[FileCtx], _cfg: &Config) -> Vec<(String, RawFinding)> {
    // One entry per production fn in the workspace; `targets` is the
    // resolver's universe (indices shared with the per-def vectors).
    let mut targets: Vec<FnTarget> = Vec::new();
    let mut direct: Vec<BTreeSet<String>> = Vec::new();
    let mut calls_of: Vec<Vec<CallSite>> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    struct Holding {
        held: Vec<String>,
        call: CallSite,
        caller_self: Option<String>,
        path: String,
    }
    let mut holding: Vec<Holding> = Vec::new();

    for ctx in ctxs {
        let krate = crate_of(&ctx.path);
        // Test-scaffolding locks (declared inside `#[cfg(test)]`) never
        // contend with production code; keep them out of the graph.
        let prod_locks: BTreeSet<String> = ctx
            .scopes
            .lock_decls
            .iter()
            .filter(|(_, line)| !ctx.in_test(*line))
            .map(|(name, _)| name.clone())
            .collect();
        let calls = dataflow::call_sites(&ctx.code);
        for f in &ctx.scopes.fns {
            if ctx.in_test(ctx.code[f.body.0].line) {
                continue;
            }
            let own: Vec<CallSite> = calls
                .iter()
                .filter(|c| (f.body.0..=f.body.1).contains(&c.idx))
                .cloned()
                .collect();
            let mut acquires = BTreeSet::new();
            if !prod_locks.is_empty() {
                let facts = dataflow::lock_facts(&ctx.code, &ctx.scopes, f, &prod_locks);
                acquires = facts.acquires.iter().map(|l| qualify(krate, l)).collect();
                for e in &facts.edges {
                    edges.push(Edge {
                        held: qualify(krate, &e.held),
                        acquired: qualify(krate, &e.acquired),
                        path: ctx.path.clone(),
                        line: e.line,
                        col: e.col,
                        via: None,
                    });
                }
                for c in facts.calls_holding {
                    holding.push(Holding {
                        held: c.held.iter().map(|h| qualify(krate, h)).collect(),
                        call: CallSite {
                            callee: c.callee,
                            qualifier: c.qualifier,
                            receiver: c.receiver,
                            idx: 0,
                            line: c.line,
                            col: c.col,
                        },
                        caller_self: f.self_type.clone(),
                        path: ctx.path.clone(),
                    });
                }
            }
            targets.push(FnTarget {
                name: f.name.clone(),
                self_type: f.self_type.clone(),
            });
            direct.push(acquires);
            calls_of.push(own);
        }
    }

    // Transitive closure: a fn may acquire whatever its callees may.
    let mut may = direct;
    loop {
        let mut changed = false;
        for d in 0..targets.len() {
            let mut add: Vec<String> = Vec::new();
            for c in &calls_of[d] {
                for t in dataflow::resolve_call(c, targets[d].self_type.as_deref(), &targets) {
                    if t != d {
                        add.extend(may[t].iter().filter(|l| !may[d].contains(*l)).cloned());
                    }
                }
            }
            for lock in add {
                if may[d].insert(lock) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Expand held calls into edges through the callee's acquisitions.
    for h in &holding {
        let reach = dataflow::resolve_call(&h.call, h.caller_self.as_deref(), &targets);
        let acquired: BTreeSet<&String> = reach.iter().flat_map(|&t| may[t].iter()).collect();
        for held in &h.held {
            for acq in &acquired {
                edges.push(Edge {
                    held: held.clone(),
                    acquired: (*acq).clone(),
                    path: h.path.clone(),
                    line: h.call.line,
                    col: h.call.col,
                    via: Some(h.call.callee.clone()),
                });
            }
        }
    }

    // Build the order graph and flag every edge on an inverted pair.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        graph.entry(&e.held).or_default().insert(&e.acquired);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = graph.get(n) {
                for m in next {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        false
    };

    let mut out: Vec<(String, RawFinding)> = Vec::new();
    let mut reported: BTreeSet<(String, u32, u32, String, String)> = BTreeSet::new();
    for e in &edges {
        let message = if e.held == e.acquired {
            match &e.via {
                Some(via) => format!(
                    "lock `{}` is already held here and `{via}` re-acquires it — \
                     self-deadlock on a non-reentrant lock",
                    e.held
                ),
                None => format!(
                    "lock `{}` re-acquired while already held — self-deadlock on a \
                     non-reentrant lock",
                    e.held
                ),
            }
        } else if reaches(&e.acquired, &e.held) {
            let how = match &e.via {
                Some(via) => format!("via the call to `{via}`"),
                None => "here".to_owned(),
            };
            format!(
                "lock-order inversion: `{}` is acquired {how} while `{}` is held, \
                 but the opposite order also occurs in the workspace — an ABBA \
                 deadlock needs only two threads",
                e.acquired, e.held
            )
        } else {
            continue;
        };
        if reported.insert((
            e.path.clone(),
            e.line,
            e.col,
            e.held.clone(),
            e.acquired.clone(),
        )) {
            out.push((e.path.clone(), RawFinding::new(e.line, e.col, message)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn findings(sources: &[(&str, &str)]) -> Vec<(String, RawFinding)> {
        let cfg = Config::default();
        let ctxs: Vec<FileCtx> = sources
            .iter()
            .map(|(p, s)| FileCtx::new(p, s, &cfg))
            .collect();
        check(&ctxs, &cfg)
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{DECLS}fn f() {{ let g = a.lock(); let h = b.lock(); }}\n\
             fn g() {{ let g = a.lock(); let h = b.lock(); }}\n"
        );
        assert!(findings(&[("crates/x/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn abba_within_one_file_flags_both_edges() {
        let src = format!(
            "{DECLS}fn f() {{ let g = a.lock(); let h = b.lock(); }}\n\
             fn g() {{ let g = b.lock(); let h = a.lock(); }}\n"
        );
        let out = findings(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].1.message.contains("lock-order inversion"));
    }

    #[test]
    fn abba_across_files_in_one_crate_is_found() {
        let f1 = format!("{DECLS}fn f() {{ let g = a.lock(); let h = b.lock(); }}\n");
        let f2 = format!("{DECLS}fn g() {{ let g = b.lock(); let h = a.lock(); }}\n");
        let out = findings(&[("crates/x/src/one.rs", &f1), ("crates/x/src/two.rs", &f2)]);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn inversion_through_a_call_is_found() {
        let src = format!(
            "{DECLS}fn helper() {{ let h = b.lock(); }}\n\
             fn f() {{ let g = a.lock(); helper(); }}\n\
             fn g() {{ let g = b.lock(); let h = a.lock(); }}\n"
        );
        let out = findings(&[("crates/x/src/lib.rs", &src)]);
        assert!(
            out.iter()
                .any(|(_, f)| f.message.contains("via the call to `helper`")),
            "{out:?}"
        );
    }

    #[test]
    fn self_deadlock_through_a_call_is_found() {
        let src = format!(
            "{DECLS}fn helper() {{ let h = a.lock(); }}\n\
             fn f() {{ let g = a.lock(); helper(); }}\n"
        );
        let out = findings(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("self-deadlock"));
    }

    #[test]
    fn ambiguous_method_names_do_not_propagate() {
        // Two unrelated `state` methods; the held call `h.state()` must
        // not borrow `Breaker::state`'s acquisition.
        let src = format!(
            "{DECLS}struct Breaker;\nstruct Histo;\n\
             impl Breaker {{ fn state(&self) -> u32 {{ let g = a.lock(); 1 }} }}\n\
             impl Histo {{ fn state(&self) -> u32 {{ 2 }} }}\n\
             fn f(h: &Histo) {{ let g = a.lock(); h.state(); }}\n"
        );
        assert!(findings(&[("crates/x/src/lib.rs", &src)]).is_empty());
    }

    #[test]
    fn self_calls_resolve_by_type_and_are_checked() {
        let src = format!(
            "{DECLS}struct R;\nstruct Other;\n\
             impl R {{\n  fn tick(&self) {{ let g = a.lock(); self.bump(); }}\n\
             fn bump(&self) {{ let g = a.lock(); }}\n}}\n\
             impl Other {{ fn bump(&self) {{ }} }}\n"
        );
        let out = findings(&[("crates/x/src/lib.rs", &src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("`bump` re-acquires"));
    }

    #[test]
    fn test_scaffolding_locks_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n  struct T { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f() { let g = a.lock(); let h = b.lock(); }\n\
                   fn g() { let g = b.lock(); let h = a.lock(); }\n}\n";
        assert!(findings(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn same_names_in_different_crates_do_not_collide() {
        let f1 = format!("{DECLS}fn f() {{ let g = a.lock(); let h = b.lock(); }}\n");
        let f2 = format!("{DECLS}fn g() {{ let g = b.lock(); let h = a.lock(); }}\n");
        let out = findings(&[("crates/x/src/lib.rs", &f1), ("crates/y/src/lib.rs", &f2)]);
        assert!(
            out.is_empty(),
            "x::a/x::b vs y::b/y::a never contend: {out:?}"
        );
    }
}

//! `fault-obs`: observability completeness for injected faults.
//!
//! Finds every `enum FaultKind` definition in non-test workspace code and
//! checks that each variant's snake_case label (`RateStorm` →
//! `"rate_storm"`) appears as a string literal somewhere in non-test
//! code, and that the `sift_net_faults_injected_total` counter itself is
//! registered. A fault kind whose label string is missing would be
//! injected but invisible in `/metrics` — chaos runs could not be
//! compared against the exposition. Findings anchor at the enum
//! definition site.
//!
//! Like `route-obs`, the match is workspace-wide on purpose: the counter
//! registration (server dispatch) lives away from the enum and its
//! `label()` mapping.

use crate::config::Config;
use crate::context::{str_literal_content, FileCtx};
use crate::lexer::TokKind;
use crate::rules::RawFinding;

const COUNTER: &str = "sift_net_faults_injected_total";

pub fn check(files: &[FileCtx], cfg: &Config) -> Vec<(String, RawFinding)> {
    // (variant, enum file, enum line, enum col)
    let mut variants: Vec<(String, String, u32, u32)> = Vec::new();
    let mut enum_sites: Vec<(String, u32, u32)> = Vec::new();
    let mut literals: Vec<String> = Vec::new();

    for ctx in files {
        if ctx.is_test_file || ctx.is_bin_file {
            continue;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Str && !ctx.in_test(t.line) {
                literals.push(str_literal_content(&t.text).to_owned());
            }
            // `enum FaultKind { Variant, … }`
            if t.kind == TokKind::Ident
                && t.text == "enum"
                && code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text == "FaultKind")
                && !ctx.in_test(t.line)
            {
                enum_sites.push((ctx.path.clone(), t.line, t.col));
                for v in enum_variants(code, i + 2) {
                    variants.push((v, ctx.path.clone(), t.line, t.col));
                }
            }
        }
    }

    let mut out = Vec::new();
    let counter_registered = literals.iter().any(|l| l == COUNTER);
    for (file, line, col) in &enum_sites {
        if cfg.path_allowed("fault-obs", file) {
            continue;
        }
        if !counter_registered {
            out.push((
                file.clone(),
                RawFinding::new(
                    *line,
                    *col,
                    format!(
                        "`FaultKind` exists but no `{COUNTER}` counter is \
                         registered anywhere: injected faults would be \
                         invisible in /metrics"
                    ),
                ),
            ));
        }
    }
    for (variant, file, line, col) in variants {
        if cfg.path_allowed("fault-obs", &file) {
            continue;
        }
        let label = snake_case(&variant);
        if !literals.iter().any(|l| l == &label) {
            out.push((
                file,
                RawFinding::new(
                    line,
                    col,
                    format!(
                        "`FaultKind::{variant}` has no `\"{label}\"` label \
                         string in non-test code: its injections would miss \
                         the `{COUNTER}` exposition"
                    ),
                ),
            ));
        }
    }
    out
}

/// Collects the unit-variant identifiers of the brace block starting at
/// or after token `from` (the token after the enum's name). Shared with
/// `breaker-obs`, which scans the same enum shape.
pub(crate) fn enum_variants(code: &[crate::lexer::Token], from: usize) -> Vec<String> {
    let mut i = from;
    // Skip to the opening brace (past generics, which FaultKind lacks).
    while i < code.len() && !(code[i].kind == TokKind::Punct && code[i].text == "{") {
        i += 1;
    }
    let mut depth = 0i32;
    let mut out = Vec::new();
    while i < code.len() {
        let t = &code[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        // A variant: an uppercase-initial ident at body depth whose next
        // token closes or separates it (unit variants only — FaultKind's
        // shape; payload variants would still match on the `(`).
        if depth == 1
            && t.kind == TokKind::Ident
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            && code.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Punct && matches!(n.text.as_str(), "," | "}" | "(" | "=")
            })
        {
            out.push(t.text.clone());
        }
        i += 1;
    }
    out
}

/// `RateStorm` → `rate_storm`.
pub(crate) fn snake_case(variant: &str) -> String {
    let mut out = String::with_capacity(variant.len() + 4);
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src, &Config::default())
    }

    const ENUM_SRC: &str = r#"
        pub enum FaultKind {
            InternalError,
            RateStorm,
        }
        impl FaultKind {
            pub fn label(self) -> &'static str {
                match self {
                    FaultKind::InternalError => "internal_error",
                    FaultKind::RateStorm => "rate_storm",
                }
            }
        }
    "#;

    #[test]
    fn fully_labelled_enum_with_counter_passes() {
        let fault = ctx("crates/a/src/fault.rs", ENUM_SRC);
        let server = ctx(
            "crates/a/src/server.rs",
            r#"fn f(k: FaultKind) {
                sift_obs::counter("sift_net_faults_injected_total", &[("kind", k.label())]).inc();
            }"#,
        );
        assert!(check(&[fault, server], &Config::default()).is_empty());
    }

    #[test]
    fn missing_label_string_is_flagged() {
        let fault = ctx(
            "crates/a/src/fault.rs",
            r#"pub enum FaultKind { InternalError, Stall }
               fn label() -> &'static str { "internal_error" }
               fn c() { counter("sift_net_faults_injected_total", &[]); }"#,
        );
        let out = check(&[fault], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("Stall"));
        assert!(out[0].1.message.contains("\"stall\""));
    }

    #[test]
    fn unregistered_counter_is_flagged_at_enum_site() {
        let fault = ctx(
            "crates/a/src/fault.rs",
            r#"pub enum FaultKind { Reset }
               fn label() -> &'static str { "reset" }"#,
        );
        let out = check(&[fault], &Config::default());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].1.message.contains("sift_net_faults_injected_total"));
    }

    #[test]
    fn test_code_enums_do_not_count() {
        let f = ctx(
            "crates/a/src/x.rs",
            r#"#[cfg(test)]
            mod tests {
                enum FaultKind { Oops }
            }"#,
        );
        assert!(check(&[f], &Config::default()).is_empty());
    }

    #[test]
    fn snake_casing() {
        assert_eq!(snake_case("InternalError"), "internal_error");
        assert_eq!(snake_case("RateStorm"), "rate_storm");
        assert_eq!(snake_case("Reset"), "reset");
    }
}

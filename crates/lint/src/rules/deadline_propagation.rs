//! deadline-propagation: every egress call must be deadline-bounded.
//!
//! The fetch fleet budgets each frame against the run's deadline; an
//! egress call (`.send`, `.send_with_retry`, `.post_json`,
//! `.fetch_frame`, `.fetch_rising`) reached from a path that never
//! touches a deadline waits as long as the peer lets it, and one stuck
//! frame stalls a whole round. In files under the rule's `strict_paths`,
//! an egress call is compliant when the enclosing fn mentions a deadline
//! (parameter, field access, budget computation), or — for methods on a
//! type configured once at construction — when any `impl` block for the
//! same self type in the file does. Channel handoffs (`tx.send(…)`) are
//! in-process and exempt; anything else carries an inline allow naming
//! why it is unbounded on purpose.

use crate::config::Config;
use crate::context::FileCtx;
use crate::dataflow;
use crate::lexer::TokKind;
use crate::rules::RawFinding;

/// True when any ident in `code[lo..=hi]` mentions a deadline.
fn mentions_deadline(ctx: &FileCtx, lo: usize, hi: usize) -> bool {
    ctx.code[lo..=hi.min(ctx.code.len() - 1)]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("deadline"))
}

pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<RawFinding>) {
    if !cfg.path_strict("deadline-propagation", &ctx.path) {
        return;
    }
    for e in dataflow::egress_sites(&ctx.code) {
        let Some(f) = ctx.scopes.enclosing_fn(e.idx) else {
            continue;
        };
        // The fn's whole extent, signature included: a `deadline`
        // parameter counts even if the body only forwards it.
        let sig_lo = f.fn_idx;
        if mentions_deadline(ctx, sig_lo, f.body.1) {
            continue;
        }
        // Type-level compliance: the deadline was bound at construction
        // (e.g. a client built `with_deadline(…)`), visible in another
        // impl block of the same type in this file.
        let type_ok = f.self_type.as_deref().is_some_and(|ty| {
            ctx.scopes
                .impls
                .iter()
                .filter(|im| im.self_type == ty)
                .any(|im| mentions_deadline(ctx, im.body.0, im.body.1))
        });
        if type_ok {
            continue;
        }
        out.push(RawFinding::new(
            e.line,
            e.col,
            format!(
                "`.{}()` egress in `{}` with no deadline in scope — forward the \
                 caller's deadline (or bind one at construction); if the wait is \
                 unbounded on purpose, say why in an inline allow",
                e.method, f.name
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn cfg() -> Config {
        let mut cfg = Config::default();
        cfg.rules
            .entry("deadline-propagation".to_owned())
            .or_default()
            .strict_paths = vec!["crates/net/src/**".to_owned()];
        cfg
    }

    fn findings(path: &str, src: &str) -> Vec<RawFinding> {
        let cfg = cfg();
        let ctx = FileCtx::new(path, src, &cfg);
        let mut out = Vec::new();
        check(&ctx, &cfg, &mut out);
        out
    }

    #[test]
    fn egress_without_deadline_is_flagged_in_strict_paths_only() {
        let src = "fn relay(c: &Client, r: Request) { c.send(&r); }";
        assert_eq!(findings("crates/net/src/client.rs", src).len(), 1);
        assert!(findings("crates/tools/src/probe.rs", src).is_empty());
    }

    #[test]
    fn deadline_parameter_or_body_use_complies() {
        let with_param = "fn relay(c: &Client, r: Request, deadline: SimInstant) { c.send(&r); }";
        assert!(findings("crates/net/src/client.rs", with_param).is_empty());
        let in_body = "fn relay(c: &Client, r: Request) { \
                       let left = self.run_deadline - now(); c.send_with_retry(&r, left); }";
        assert!(findings("crates/net/src/client.rs", in_body).is_empty());
    }

    #[test]
    fn impl_level_deadline_binding_complies() {
        let src = "impl Client { fn with_deadline(mut self, d: SimInstant) -> Client { \
                   self.deadline = d; self } }\n\
                   impl TrendsClient for Client { fn fetch(&self, r: &Req) -> Out { \
                   self.http.post_json(\"/q\", r) } }\n";
        assert!(findings("crates/net/src/client.rs", src).is_empty());
    }

    #[test]
    fn other_types_impls_do_not_excuse() {
        let src = "impl Other { fn with_deadline(mut self, d: SimInstant) -> Other { \
                   self.deadline = d; self } }\n\
                   impl Client { fn fetch(&self, r: &Req) -> Out { \
                   self.http.post_json(\"/q\", r) } }\n";
        assert_eq!(findings("crates/net/src/client.rs", src).len(), 1);
    }

    #[test]
    fn channel_sends_are_exempt() {
        let src = "fn pump(tx: &Sender<u32>, out_tx: &Sender<u32>) { \
                   tx.send(1); out_tx.send(2); }";
        assert!(findings("crates/net/src/client.rs", src).is_empty());
    }
}

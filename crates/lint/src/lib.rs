//! # sift-lint — workspace-native static analysis
//!
//! SIFT's pipeline reverses a service's sampling noise and piecewise
//! normalization; its correctness therefore rests on invariants no
//! general-purpose linter knows about: simulation code must read time
//! through `sift-simtime`, interest/index math must not truncate or
//! compare floats exactly, libraries must log through `sift-obs`, and
//! every HTTP route must be visible in `/metrics`. This crate enforces
//! those invariants mechanically, as a tier-1 gate.
//!
//! The engine is zero-dependency on purpose. It lexes Rust precisely
//! enough that rules never fire inside strings, chars or comments (see
//! [`lexer`]), classifies test context from `#[cfg(test)]` / `#[test]`
//! regions and path conventions (see [`context`]), and runs the rule set
//! declared in [`rules::registry`]. Policy — severities, path allowlists,
//! strict paths — comes from `Lint.toml` (see [`config`]); one-off
//! exceptions are written next to the code they excuse:
//!
//! ```text
//! lock().unwrap() // sift-lint: allow(no-panic) — poisoned lock is fatal
//! ```
//!
//! Run it as `cargo run -p sift-lint --release` from the workspace; add
//! `--json` for the machine format, `--rules-md` for the generated rule
//! reference. The process exits nonzero when any `deny` finding stands.

pub mod cache;
pub mod config;
pub mod context;
pub mod dataflow;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod tree;

pub use config::{Config, ConfigError, Severity};
pub use engine::{
    audit_workspace, lint_sources, lint_sources_opts, lint_workspace, lint_workspace_cached,
    lint_workspace_opts, Finding, LintOptions, LintReport, StaleAllow, StaleReason, TimingReport,
};
pub use report::{render_json, render_text, rules_markdown};

use std::path::{Path, PathBuf};

/// The config file's well-known name at the workspace root.
pub const CONFIG_FILE: &str = "Lint.toml";

/// Finds the workspace root by walking up from `start` to the nearest
/// directory holding a `Lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join(CONFIG_FILE).is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Loads the root `Lint.toml` if present, otherwise built-in defaults.
pub fn load_config(root: &Path) -> Result<Config, ConfigError> {
    match std::fs::read_to_string(root.join(CONFIG_FILE)) {
        Ok(text) => Config::parse(&text),
        Err(_) => Ok(Config::default()),
    }
}

/// Rejects config sections for rules that do not exist — a typoed
/// `[rules.no-panics]` must fail loudly, not silently not apply.
pub fn validate_rule_ids(cfg: &Config) -> Result<(), String> {
    let known: Vec<&str> = rules::registry().iter().map(|r| r.id).collect();
    for id in cfg.rules.keys() {
        if !known.contains(&id.as_str()) {
            return Err(format!(
                "Lint.toml configures unknown rule `{id}` (known: {})",
                known.join(", ")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_rule_ids_rejected() {
        let cfg = Config::parse("[rules.no-such-rule]\nseverity = \"warn\"\n").expect("parse");
        assert!(validate_rule_ids(&cfg).is_err());
        let cfg = Config::parse("[rules.no-panic]\nseverity = \"warn\"\n").expect("parse");
        assert!(validate_rule_ids(&cfg).is_ok());
    }
}

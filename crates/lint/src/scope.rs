//! Stage 2 of the semantic engine: a lightweight symbol/scope pass.
//!
//! Over the token forest from [`crate::tree`], this pass resolves the
//! structure rules need to reason semantically: every `fn` item with its
//! body extent and (when inside an `impl`) its self type, every `impl`
//! block, every declared lock (a binding whose type annotation mentions
//! `Mutex` / `RwLock`), and the loop-body ranges. It is a symbol pass, not
//! type inference: names are resolved by suffix, which is exact enough for
//! a workspace that the lint itself keeps honest.

use crate::lexer::{TokKind, Token};
use crate::tree::{self, Delim, Group, Tree};
use std::collections::BTreeSet;

/// One `fn` item: its name, body extent, and enclosing impl self type.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token-index range of the body braces `(open, close)`; trait method
    /// declarations without a body are not recorded.
    pub body: (usize, usize),
    /// The `impl` self type this method belongs to, if any.
    pub self_type: Option<String>,
}

impl FnItem {
    /// True when token index `i` falls inside this fn's body.
    pub fn contains(&self, i: usize) -> bool {
        (self.body.0..=self.body.1).contains(&i)
    }
}

/// One `impl` block: the self type name and its body extent.
#[derive(Clone, Debug)]
pub struct ImplBlock {
    pub self_type: String,
    pub body: (usize, usize),
}

/// Everything the scope pass learned about one file.
pub struct FileScopes {
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplBlock>,
    /// Token-index ranges of loop bodies (from the token tree).
    pub loops: Vec<(usize, usize)>,
    /// Binding names declared with a `Mutex`/`RwLock` type annotation
    /// (struct fields, statics, annotated lets).
    pub lock_names: BTreeSet<String>,
    /// The same lock declarations with their source lines, for rules that
    /// need to tell production locks from test-scaffolding locks.
    pub lock_decls: Vec<(String, u32)>,
    /// The parsed token forest, for rules that walk structure themselves.
    pub trees: Vec<Tree>,
}

impl FileScopes {
    /// Runs the scope pass over a file's code tokens.
    pub fn analyze(code: &[Token]) -> FileScopes {
        let trees = tree::parse(code);
        let loops = tree::loop_body_ranges(code, &trees);
        let mut fns = Vec::new();
        let mut impls = Vec::new();
        collect_items(code, &trees, None, &mut fns, &mut impls);
        let decls = lock_decls(code);
        FileScopes {
            fns,
            impls,
            loops,
            lock_names: decls.iter().map(|(n, _)| n.clone()).collect(),
            lock_decls: decls,
            trees,
        }
    }

    /// The innermost fn item whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.contains(i))
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// True when token index `i` is inside a loop body.
    pub fn in_loop(&self, i: usize) -> bool {
        self.loops.iter().any(|&(lo, hi)| (lo..=hi).contains(&i))
    }
}

/// Walks the forest collecting `fn` items and `impl` blocks. `self_type`
/// carries the enclosing impl's type down the recursion.
fn collect_items(
    code: &[Token],
    children: &[Tree],
    self_type: Option<&str>,
    fns: &mut Vec<FnItem>,
    impls: &mut Vec<ImplBlock>,
) {
    let mut k = 0usize;
    while k < children.len() {
        match &children[k] {
            Tree::Leaf(i) if is_kw(code, *i, "fn") => {
                // `fn` + name idents, then siblings up to the body brace
                // (or a `;` for bodiless trait methods).
                let name = children.get(k + 1).and_then(|t| match t {
                    Tree::Leaf(j) if code[*j].kind == TokKind::Ident => Some(code[*j].text.clone()),
                    _ => None,
                });
                let (body, next_k) = sibling_brace(code, children, k + 1);
                if let (Some(name), Some(body)) = (name, body) {
                    fns.push(FnItem {
                        name,
                        fn_idx: *i,
                        body: (body.open, body.close),
                        self_type: self_type.map(str::to_owned),
                    });
                    // Nested items (closures don't declare `fn`; inner fns
                    // and test mods do) keep the same self type: an inner
                    // fn is still lexically part of the method.
                    collect_items(code, &body.children, self_type, fns, impls);
                }
                k = next_k;
            }
            Tree::Leaf(i) if is_kw(code, *i, "impl") => {
                let header: Vec<&Tree> = children[k + 1..]
                    .iter()
                    .take_while(|t| !matches!(t, Tree::Group(g) if g.delim == Delim::Brace))
                    .collect();
                let ty = impl_self_type(code, &header);
                let (body, next_k) = sibling_brace(code, children, k + 1);
                if let Some(body) = body {
                    if let Some(ty) = &ty {
                        impls.push(ImplBlock {
                            self_type: ty.clone(),
                            body: (body.open, body.close),
                        });
                    }
                    collect_items(code, &body.children, ty.as_deref(), fns, impls);
                }
                k = next_k;
            }
            Tree::Group(g) => {
                collect_items(code, &g.children, self_type, fns, impls);
                k += 1;
            }
            Tree::Leaf(_) => k += 1,
        }
    }
}

fn is_kw(code: &[Token], i: usize, kw: &str) -> bool {
    code[i].kind == TokKind::Ident && code[i].text == kw
}

/// Finds the next sibling brace group from `from`, skipping non-brace
/// siblings (parameter lists, return types, where clauses). Stops at a
/// top-level `;` (bodiless item). Returns the group and the child index
/// just past it.
fn sibling_brace<'t>(
    code: &[Token],
    children: &'t [Tree],
    from: usize,
) -> (Option<&'t Group>, usize) {
    for (k, t) in children.iter().enumerate().skip(from) {
        match t {
            Tree::Group(g) if g.delim == Delim::Brace => return (Some(g), k + 1),
            Tree::Leaf(i) if code[*i].kind == TokKind::Punct && code[*i].text == ";" => {
                return (None, k + 1)
            }
            _ => {}
        }
    }
    (None, children.len())
}

/// The self type of an `impl` header: the last path segment of the type
/// after `for` (trait impls) or of the first type (inherent impls), with
/// generic arguments and `where` clauses ignored.
fn impl_self_type(code: &[Token], header: &[&Tree]) -> Option<String> {
    // Work on the header's leaf idents at angle-depth 0, cut at `where`.
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut after_for = None;
    for t in header {
        let Tree::Leaf(i) = t else { continue };
        let tok = &code[*i];
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "<") => depth += 1,
            (TokKind::Punct, ">") => depth -= 1,
            (TokKind::Punct, ">>") => depth -= 2,
            (TokKind::Punct, "<<") => depth += 2,
            (TokKind::Ident, "where") if depth == 0 => break,
            (TokKind::Ident, "for") if depth == 0 => after_for = Some(idents.len()),
            (TokKind::Ident, name) if depth == 0 => idents.push(name),
            _ => {}
        }
    }
    let slice = match after_for {
        Some(mark) => &idents[mark..],
        None => &idents[..],
    };
    slice.last().map(|s| (*s).to_owned())
}

/// Binding names whose type annotation mentions `Mutex` / `RwLock`: the
/// pattern `name : … Mutex< …` within a bounded lookahead, covering struct
/// fields, statics and annotated lets. Guard types (`MutexGuard`) are not
/// locks and do not count.
fn lock_decls(code: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident {
            continue;
        }
        if !code.get(i + 1).is_some_and(|t| t.text == ":") {
            continue;
        }
        // `::` paths lex as one token, so a bare `:` really is an
        // annotation (or a struct literal field — those never name a
        // Mutex type, so the over-approximation is safe).
        for j in (i + 2)..code.len().min(i + 16) {
            let t = &code[j];
            if t.kind == TokKind::Punct
                && matches!(t.text.as_str(), ";" | "=" | "{" | ")" | "}" | ",")
            {
                break;
            }
            if t.kind == TokKind::Ident
                && (t.text == "RwLock" || t.text.ends_with("Mutex"))
                && code.get(j + 1).is_some_and(|n| n.text == "<")
            {
                out.push((code[i].text.clone(), code[i].line));
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes(src: &str) -> (Vec<Token>, FileScopes) {
        let code: Vec<Token> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let s = FileScopes::analyze(&code);
        (code, s)
    }

    #[test]
    fn fn_items_with_bodies_and_self_types() {
        let (_, s) = scopes(
            "fn free() { a(); }\n\
             struct Foo;\n\
             impl Foo { fn method(&self) -> u32 { 1 } }\n\
             impl Clone for Foo { fn clone(&self) -> Foo { Foo } }\n\
             trait T { fn decl(&self); fn provided(&self) {} }",
        );
        let names: Vec<(&str, Option<&str>)> = s
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None),
                ("method", Some("Foo")),
                ("clone", Some("Foo")),
                ("provided", None),
            ]
        );
    }

    #[test]
    fn impl_self_type_handles_paths_generics_where() {
        let (_, s) = scopes(
            "impl<T> fmt::Display for queue::Run<T> where T: Clone { fn f(&self) {} }\n\
             impl Plain { fn g(&self) {} }",
        );
        let types: Vec<&str> = s.impls.iter().map(|i| i.self_type.as_str()).collect();
        assert_eq!(types, ["Run", "Plain"]);
        assert_eq!(s.fns[0].self_type.as_deref(), Some("Run"));
        assert_eq!(s.fns[1].self_type.as_deref(), Some("Plain"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let (code, s) = scopes("fn outer() { fn inner() { target(); } }");
        let target = code.iter().position(|t| t.text == "target").expect("tok");
        assert_eq!(s.enclosing_fn(target).expect("fn").name, "inner");
    }

    #[test]
    fn lock_decls_from_fields_statics_and_lets() {
        let (_, s) = scopes(
            "struct Store { active: Mutex<u32>, recent: std::sync::Mutex<u8>, data: Vec<u8> }\n\
             static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());\n\
             struct S { series: RwLock<u8>, gate: StdMutex<bool> }\n\
             fn f() { let guard: MutexGuard<u32> = x; }",
        );
        let names: Vec<&str> = s.lock_names.iter().map(String::as_str).collect();
        assert_eq!(names, ["RUN_LOCK", "active", "gate", "recent", "series"]);
    }

    #[test]
    fn in_loop_tracks_loop_bodies_only() {
        let (code, s) = scopes("fn f() { before(); for x in xs { inside(); } after(); }");
        let at = |name: &str| code.iter().position(|t| t.text == name).expect("tok");
        assert!(!s.in_loop(at("before")));
        assert!(s.in_loop(at("inside")));
        assert!(!s.in_loop(at("after")));
    }
}

//! Stage 1 of the semantic engine: a brace-aware token-tree parser.
//!
//! The flat token stream from [`crate::lexer`] is grouped into a forest of
//! delimiter-matched trees — every `{…}`, `(…)` and `[…]` becomes a
//! [`Group`] whose children are the nested trees, everything else a
//! [`Tree::Leaf`] holding its index into the original token slice. This is
//! deliberately *not* a Rust parse: rules pattern-match token runs exactly
//! as before, but can now ask structural questions (is this token inside a
//! loop body? which `fn` item encloses it? where does this block end?)
//! that a flat stream cannot answer.
//!
//! The parser is total, like the lexer: a stray close delimiter becomes a
//! leaf, and EOF closes every open group, so a half-written file still
//! produces a usable forest.

use crate::lexer::{TokKind, Token};

/// Which delimiter pair a [`Group`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `{ … }` — blocks, item bodies, match bodies, struct literals.
    Brace,
    /// `( … )` — call arguments, tuples, conditions.
    Paren,
    /// `[ … ]` — indexing, array literals, attributes.
    Bracket,
}

impl Delim {
    fn open(text: &str) -> Option<Delim> {
        match text {
            "{" => Some(Delim::Brace),
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            _ => None,
        }
    }

    fn closes(self, text: &str) -> bool {
        matches!(
            (self, text),
            (Delim::Brace, "}") | (Delim::Paren, ")") | (Delim::Bracket, "]")
        )
    }
}

/// A delimited group: the token indices of its delimiters and the nested
/// forest between them. `close` is the index of the closing delimiter, or
/// the index just past the last token when EOF closed the group.
#[derive(Clone, Debug)]
pub struct Group {
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter (or `tokens.len()` at EOF).
    pub close: usize,
    pub children: Vec<Tree>,
}

/// One node of the token forest.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A non-delimiter token, by index into the lexed code tokens.
    Leaf(usize),
    Group(Group),
}

impl Tree {
    /// The token index where this node starts.
    pub fn start(&self) -> usize {
        match self {
            Tree::Leaf(i) => *i,
            Tree::Group(g) => g.open,
        }
    }
}

/// Parses the code-token slice into a forest.
pub fn parse(code: &[Token]) -> Vec<Tree> {
    let mut i = 0usize;
    parse_children(code, &mut i, None)
}

fn parse_children(code: &[Token], i: &mut usize, enclosing: Option<Delim>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < code.len() {
        let t = &code[*i];
        if t.kind == TokKind::Punct {
            if let Some(delim) = Delim::open(&t.text) {
                let open = *i;
                *i += 1;
                let children = parse_children(code, i, Some(delim));
                let close = if *i < code.len() { *i } else { code.len() };
                if *i < code.len() {
                    *i += 1; // consume the close delimiter
                }
                out.push(Tree::Group(Group {
                    delim,
                    open,
                    close,
                    children,
                }));
                continue;
            }
            if let Some(d) = enclosing {
                if d.closes(&t.text) {
                    return out; // caller consumes the close token
                }
            }
            // A close delimiter with no matching open (or closing a
            // different group): tolerate it as a leaf.
        }
        out.push(Tree::Leaf(*i));
        *i += 1;
    }
    out
}

/// Calls `f` on every group in the forest, pre-order.
pub fn walk_groups(trees: &[Tree], f: &mut impl FnMut(&Group)) {
    for t in trees {
        if let Tree::Group(g) = t {
            f(g);
            walk_groups(&g.children, f);
        }
    }
}

/// Token-index ranges `(open, close)` of every loop body in the forest: a
/// `for` / `while` / `loop` keyword followed by its first sibling brace
/// group. Rust keeps struct literals out of loop headers (they need
/// parentheses), so the first brace sibling after the keyword is the body.
pub fn loop_body_ranges(code: &[Token], trees: &[Tree]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    collect_loops(code, trees, &mut out);
    out
}

fn collect_loops(code: &[Token], children: &[Tree], out: &mut Vec<(usize, usize)>) {
    let mut pending_loop = false;
    // `for` is not a loop after `impl` (`impl Trait for T {`) or before `<`
    // (higher-ranked bounds, `for<'a> Fn(…)`).
    let mut impl_header = false;
    for t in children {
        match t {
            Tree::Leaf(i) => {
                let tok = &code[*i];
                if tok.kind == TokKind::Ident {
                    match tok.text.as_str() {
                        "impl" => impl_header = true,
                        "while" | "loop" => pending_loop = true,
                        "for" => {
                            let hrtb = code.get(*i + 1).is_some_and(|n| n.text == "<");
                            if !impl_header && !hrtb {
                                pending_loop = true;
                            }
                        }
                        _ => {}
                    }
                } else if tok.kind == TokKind::Punct && tok.text == ";" {
                    pending_loop = false;
                    impl_header = false;
                }
            }
            Tree::Group(g) => {
                if g.delim == Delim::Brace {
                    if pending_loop {
                        out.push((g.open, g.close));
                    }
                    pending_loop = false;
                    impl_header = false;
                }
                collect_loops(code, &g.children, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Token> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    #[test]
    fn groups_nest_and_match() {
        let toks = code("fn f() { let v = [1, (2)]; }");
        let forest = parse(&toks);
        let mut delims = Vec::new();
        walk_groups(&forest, &mut |g| delims.push(g.delim));
        assert_eq!(
            delims,
            [Delim::Paren, Delim::Brace, Delim::Bracket, Delim::Paren]
        );
        // Every group's close token really is its delimiter's partner.
        walk_groups(&forest, &mut |g| {
            let close = &toks[g.close];
            assert!(g.delim.closes(&close.text), "{close:?}");
        });
    }

    #[test]
    fn tolerates_unbalanced_input() {
        // A stray `}` leafs out; an unterminated `{` closes at EOF.
        let toks = code("} fn f() { open(");
        let forest = parse(&toks);
        assert!(matches!(forest[0], Tree::Leaf(0)));
        let mut groups = 0;
        walk_groups(&forest, &mut |_| groups += 1);
        assert_eq!(groups, 3); // (), {, (
    }

    #[test]
    fn loop_bodies_found_for_all_three_forms() {
        let toks = code(
            "fn f() { for x in xs { a(); } while let Some(y) = it.next() { b(); } loop { c(); } }",
        );
        let forest = parse(&toks);
        let loops = loop_body_ranges(&toks, &forest);
        assert_eq!(loops.len(), 3);
        // Each range must contain its marker call and not the others'.
        let ident_at = |i: usize| toks[i].text.clone();
        let inside =
            |range: (usize, usize), name: &str| (range.0..range.1).any(|i| ident_at(i) == name);
        assert!(inside(loops[0], "a") && !inside(loops[0], "b"));
        assert!(inside(loops[1], "b") && !inside(loops[1], "c"));
        assert!(inside(loops[2], "c") && !inside(loops[2], "a"));
    }

    #[test]
    fn non_loop_braces_are_not_loop_bodies() {
        let toks = code("fn f() { if x { a(); } match y { _ => {} } }");
        let forest = parse(&toks);
        assert!(loop_body_ranges(&toks, &forest).is_empty());
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let toks = code(
            "impl Display for Foo { fn fmt(&self) {} }\n\
             fn takes<F>(f: F) where F: for<'a> Fn(&'a str) { f(\"x\"); }",
        );
        let forest = parse(&toks);
        assert!(loop_body_ranges(&toks, &forest).is_empty());
    }

    #[test]
    fn statement_boundary_cancels_a_pending_loop_keyword() {
        // `loop` as an ident in other positions must not claim the next
        // brace group (e.g. a stray `break 'outer;` style sequence).
        let toks = code("fn f() { let is_loop = loop_count(); { body(); } }");
        let forest = parse(&toks);
        // `loop_count` is a single ident, not the `loop` keyword; nothing
        // matches.
        assert!(loop_body_ranges(&toks, &forest).is_empty());
    }
}

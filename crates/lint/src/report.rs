//! Human and machine output, plus the generated rule-reference table.

use crate::config::Severity;
use crate::engine::Finding;
use crate::rules::registry;
use std::fmt::Write as _;

/// `file:line:col severity[rule] message` lines plus a summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: {}[{}] {}",
            f.path, f.line, f.col, f.severity, f.rule, f.message
        );
    }
    let deny = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warn = findings.len() - deny;
    if findings.is_empty() {
        let _ = writeln!(out, "sift-lint: clean");
    } else {
        let _ = writeln!(
            out,
            "sift-lint: {} finding{} ({deny} deny, {warn} warn)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
        );
    }
    out
}

/// Stable machine format for CI: one JSON object, findings ordered as
/// reported.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.severity.to_string()),
            json_str(&f.message),
        );
    }
    let deny = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let _ = write!(
        out,
        "],\"total\":{},\"deny\":{},\"warn\":{}}}",
        findings.len(),
        deny,
        findings.len() - deny
    );
    out.push('\n');
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The rule-reference table, generated from the registry so documentation
/// cannot drift from the code. Embedded verbatim in the README (a test
/// keeps the two in sync).
pub fn rules_markdown() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| rule | default | in tests | bins | enforces |");
    let _ = writeln!(out, "|------|---------|----------|------|----------|");
    for r in registry() {
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} |",
            r.id,
            r.default_severity,
            if r.applies_in_tests {
                "checked"
            } else {
                "exempt"
            },
            if r.skips_bins { "exempt" } else { "checked" },
            collapse_ws(r.summary),
        );
    }
    out.push('\n');
    for r in registry() {
        let _ = writeln!(out, "- **`{}`** — {}", r.id, collapse_ws(r.rationale));
    }
    out
}

/// Multi-line string literals in the registry carry indentation; collapse
/// every whitespace run to one space for prose output.
fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: "no-panic",
            severity: Severity::Deny,
            message: "a \"quoted\" message".into(),
        }]
    }

    #[test]
    fn text_format_is_file_line_col() {
        let text = render_text(&sample());
        assert!(text.starts_with("crates/x/src/lib.rs:3:7: deny[no-panic]"));
        assert!(text.contains("1 finding (1 deny, 0 warn)"));
        assert!(render_text(&[]).contains("clean"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"rule\":\"no-panic\""));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"deny\":1"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn markdown_covers_every_rule() {
        let md = rules_markdown();
        for r in registry() {
            assert!(md.contains(&format!("`{}`", r.id)), "{} missing", r.id);
        }
    }
}

//! Property tests for coordinator crash recovery.
//!
//! Two invariants carry the nemesis harness's correctness argument:
//!
//! 1. **Epoch monotonicity**: across *arbitrary* crash/replay points in
//!    an arbitrary schedule of joins, grants, releases, expiries and
//!    uploads, the sequence of granted lease epochs is strictly
//!    increasing — no incarnation ever re-issues an epoch any earlier
//!    incarnation handed out, so epoch fencing actually fences.
//! 2. **Torn-tail reconstruction**: cutting the WAL mid-record (the
//!    shape of a crash during an un-acknowledged append) recovers
//!    exactly the shard table an uncrashed coordinator held after the
//!    last *complete* record — never a panic, never a half-applied
//!    mutation, with the torn tail reported.
//!
//! The simulation drives a real [`CoordDurability`] (real files, real
//! fsyncs, real checkpoint compaction) while folding the same records
//! into a pure in-memory [`CoordCheckpoint`] — the model the recovered
//! state must match.

use proptest::prelude::*;
use sift_cluster::{outcome_digest, CoordCheckpoint, CoordDurability, CoordRecord};
use sift_core::{RegionOutcome, Timeline};
use sift_geo::State;
use sift_journal::testutil::scratch_dir;
use sift_journal::Journal;
use sift_simtime::Hour;

const REGIONS: [State; 3] = [State::CA, State::TX, State::NY];
const ATTEMPT_BUDGET: u32 = 3;

fn outcome(state: State) -> RegionOutcome {
    RegionOutcome {
        state,
        timeline: Timeline {
            state,
            start: Hour(0),
            values: vec![1.0, 2.0, 3.0],
        },
        rounds: 1,
        converged: true,
        frames_requested: 3,
        frames_degraded: 0,
        coverage: 1.0,
        halted: false,
        resumed_from_round: 0,
        frames_replayed: 0,
        rising_requested: 0,
        spikes: Vec::new(),
    }
}

/// The coordinator-shaped simulation: folds every appended record into
/// the same in-memory projection the real coordinator snapshots, and
/// tracks live leases (which, like the real ones, never reach the
/// checkpoint).
struct Sim {
    model: CoordCheckpoint,
    /// `(shard index, epoch)` for leases currently in flight.
    live: Vec<(usize, u64)>,
    /// Records actually appended (ops can no-op on an invalid pick).
    appended: u64,
}

impl Sim {
    fn new(model: CoordCheckpoint) -> Sim {
        Sim {
            model,
            live: Vec::new(),
            appended: 0,
        }
    }

    /// Appends (and mirrors) the record, honouring the coordinator's
    /// checkpoint cadence. Returns the granted epoch for lease ops.
    fn step(&mut self, d: &mut CoordDurability, op: u8, pick: u8) -> Option<u64> {
        let rec = match op % 4 {
            0 => CoordRecord::Joined {
                worker: format!("w{}", pick % 4),
            },
            1 => {
                let shard = usize::from(pick) % REGIONS.len();
                let sh = &self.model.shards[shard];
                if sh.done.is_some() || sh.failed || self.live.iter().any(|&(s, _)| s == shard) {
                    return None;
                }
                let epoch = self.model.next_epoch;
                self.live.push((shard, epoch));
                CoordRecord::Leased {
                    state: REGIONS[shard],
                    worker: format!("w{}", pick % 4),
                    epoch,
                }
            }
            2 => {
                if self.live.is_empty() {
                    return None;
                }
                let (shard, epoch) = self.live.remove(usize::from(pick) % self.live.len());
                if pick % 2 == 0 {
                    let out = outcome(REGIONS[shard]);
                    CoordRecord::Done {
                        state: REGIONS[shard],
                        worker: format!("w{}", pick % 4),
                        epoch,
                        digest: outcome_digest(&out),
                        outcome: Box::new(out),
                    }
                } else {
                    CoordRecord::Released {
                        state: REGIONS[shard],
                        epoch,
                    }
                }
            }
            _ => {
                if self.live.is_empty() {
                    return None;
                }
                let (shard, epoch) = self.live.remove(usize::from(pick) % self.live.len());
                CoordRecord::Expired {
                    state: REGIONS[shard],
                    worker: format!("w{}", pick % 4),
                    epoch,
                    failed: self.model.shards[shard].attempts + 1 >= ATTEMPT_BUDGET,
                }
            }
        };
        d.append(&rec).expect("wal append");
        self.appended += 1;
        self.model.apply(rec.clone());
        if d.should_checkpoint() {
            d.install_checkpoint(&self.model).expect("checkpoint");
        }
        match rec {
            CoordRecord::Leased { epoch, .. } => Some(epoch),
            _ => None,
        }
    }
}

/// Serialized-state equality: `CoordCheckpoint` holds floats inside the
/// boxed outcomes, so compare the exact persisted representation.
fn state_json(snap: &CoordCheckpoint) -> String {
    serde_json::to_string(snap).expect("encodable checkpoint")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lease epochs are strictly monotonic across arbitrary crash and
    /// replay points: each outer segment runs ops against a real WAL,
    /// each segment boundary is a crash (drop, reopen, replay, apply
    /// the recovery bump the way `Coordinator::durable` does), and the
    /// concatenation of every incarnation's grants never repeats or
    /// regresses.
    #[test]
    fn lease_epochs_are_strictly_monotonic_across_crashes(
        segments in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
            1..5,
        ),
        checkpoint_every in 1u64..6,
    ) {
        let dir = scratch_dir("prop_epochs");
        let mut granted: Vec<u64> = Vec::new();
        let mut durable_state = false;
        for (incarnation, segment) in segments.iter().enumerate() {
            let (mut d, mut snap, rec) =
                CoordDurability::open(&dir, &REGIONS, checkpoint_every).expect("open durability");
            prop_assert_eq!(
                rec.had_state, durable_state,
                "incarnation {} sees state iff something was durably written",
                incarnation
            );
            if rec.had_state {
                // Mirror `Coordinator::durable`: bump the fence, count
                // the recovery, seal both into a fresh checkpoint.
                snap.recoveries = snap.recoveries.saturating_add(1);
                snap.next_epoch = snap.next_epoch.saturating_add(1);
                d.install_checkpoint(&snap).expect("recovery checkpoint");
            }
            if let Some(&max_granted) = granted.iter().max() {
                prop_assert!(
                    snap.next_epoch > max_granted,
                    "incarnation {} fence {} must clear every prior grant (max {})",
                    incarnation, snap.next_epoch, max_granted
                );
            }
            let mut sim = Sim::new(snap);
            for &(op, pick) in segment {
                granted.extend(sim.step(&mut d, op, pick));
            }
            durable_state = durable_state || rec.had_state || sim.appended > 0;
            // `d` and the live leases drop here — the crash.
        }
        prop_assert!(
            granted.windows(2).all(|w| w[0] < w[1]),
            "granted epochs must be strictly increasing: {granted:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cutting the WAL at an arbitrary byte inside its final record —
    /// the on-disk shape of dying mid-append, before the acknowledgement
    /// went out — recovers exactly the state an uncrashed coordinator
    /// held after the last complete record: same shard table (grants,
    /// attempts, digests, outcomes), same membership, same fence.
    #[test]
    fn torn_tail_replay_reconstructs_the_uncrashed_shard_table(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..20),
        checkpoint_every in 1u64..8,
        cut_seed in any::<usize>(),
    ) {
        let dir = scratch_dir("prop_torn");
        let (mut d, snap, _) =
            CoordDurability::open(&dir, &REGIONS, checkpoint_every).expect("open durability");
        let mut sim = Sim::new(snap);
        for &(op, pick) in &ops {
            let _ = sim.step(&mut d, op, pick);
        }
        drop(d);
        let want = state_json(&sim.model);

        // Stage the torn tail: append one more genuine record through the
        // raw journal, then cut the file strictly inside it.
        let wal = dir.join("coord.wal");
        let clean_len = std::fs::metadata(&wal).expect("wal metadata").len() as usize;
        {
            let (mut j, _) = Journal::open(&wal).expect("raw journal");
            let torn = CoordRecord::Leased {
                state: REGIONS[0],
                worker: "wz".into(),
                epoch: sim.model.next_epoch,
            };
            j.append(&serde_json::to_vec(&torn).expect("encodable record"))
                .expect("append torn record");
            j.sync().expect("sync");
        }
        let full = std::fs::read(&wal).expect("read wal");
        prop_assert!(full.len() > clean_len + 1, "the extra record spans bytes");
        let cut = clean_len + 1 + cut_seed % (full.len() - clean_len - 1);
        std::fs::write(&wal, &full[..cut]).expect("stage cut wal");

        let (mut d, got, rec) =
            CoordDurability::open(&dir, &REGIONS, checkpoint_every).expect("recovery");
        prop_assert!(rec.torn_tail, "a mid-record cut must be reported");
        prop_assert_eq!(
            state_json(&got), want,
            "replay after the cut must equal the uncrashed projection"
        );
        // The healed WAL keeps working: the next acknowledgement-bearing
        // append lands after the truncation point and replays cleanly.
        d.append(&CoordRecord::Joined {
            worker: "post".into(),
        })
        .expect("append after recovery");
        drop(d);
        let (_d, after, rec2) =
            CoordDurability::open(&dir, &REGIONS, checkpoint_every).expect("second recovery");
        prop_assert!(!rec2.torn_tail, "the tail was healed");
        prop_assert!(after.workers.iter().any(|w| w == "post"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

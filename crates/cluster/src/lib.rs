//! SIFT's sharded crawl: a coordinator/worker cluster over `sift-net`.
//!
//! The paper's crawl is embarrassingly parallel across regions — each of
//! the 51 study regions is an independent frame workload — so the
//! natural scale-out is to shard *regions* across worker processes. This
//! crate promotes the old `examples/distributed_crawl.rs` sketch into an
//! architecture:
//!
//! * [`ring`] — deterministic consistent-hash assignment of shards to
//!   workers, with minimal movement when a worker dies,
//! * [`proto`] — the compact JSON job protocol (join / lease /
//!   heartbeat / result / status) spoken over the `sift-net` HTTP stack,
//!   with trace context riding the existing `X-Sift-Trace` header,
//! * [`coord`] — the [`Coordinator`]: shard table, lease epochs,
//!   heartbeat-based death detection, bounded reroutes,
//! * [`recovery`] — the coordinator's WAL + checkpoint state machine
//!   over `sift-journal`: control state is durable before it is
//!   acknowledged, so a killed coordinator replays, re-fences, resumes,
//! * [`worker`] — the worker thread: lease → crawl via
//!   [`sift_core::run_region_study`] → upload, with optional per-worker
//!   response journaling,
//! * [`nemesis`] — the chaos harness: runs a full sharded study under a
//!   seeded [`sift_net::NemesisPlan`] (coordinator kills, partitions,
//!   heartbeat loss) and hands back the converged result for
//!   baseline-equality audits.
//!
//! The design invariant is **bit-identical assembly**: workers run the
//! same deterministic per-region pipeline the in-process driver runs,
//! and the coordinator folds their outcomes through
//! [`sift_core::assemble_study`] — so a sharded run (even one that loses
//! a worker mid-crawl and reroutes its shards) produces a `StudyResult`
//! equal to single-process `run_study` on the same parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod nemesis;
pub mod proto;
pub mod recovery;
pub mod ring;
pub mod worker;

pub use coord::{cluster_router, ClusterConfig, ClusterError, Coordinator, RerouteReason};
pub use nemesis::{NemesisCluster, NemesisError, NemesisReport, COORDINATOR};
pub use proto::{
    HeartbeatReply, HeartbeatRequest, JoinReply, JoinRequest, LeaseReply, LeaseRequest,
    ResultReply, ResultUpload, ShardJob, StatusReply,
};
pub use recovery::{
    outcome_digest, CoordCheckpoint, CoordDurability, CoordRecord, CoordRecovery, ShardSnapshot,
};
pub use ring::HashRing;
pub use worker::{spawn_worker, WorkerConfig, WorkerHandle, WorkerSummary};

//! Crash recovery for the coordinator: WAL records, checkpoints, replay.
//!
//! The coordinator's control state — shard table, lease grants and
//! epochs, worker membership, accepted-result digests — is journaled
//! through `sift-journal` *before* any acknowledgement leaves the
//! process, and periodically compacted into an atomic checkpoint. A
//! killed coordinator therefore restarts by loading the checkpoint,
//! replaying the WAL tail, reverting any lease that was live at the
//! crash to pending, and resuming with a fencing epoch strictly above
//! every epoch it ever granted.
//!
//! The key ordering argument: a lease epoch reaches a worker only after
//! its [`CoordRecord::Leased`] record is durably appended (WAL before
//! acknowledgement), so a torn tail can only ever cut records whose
//! replies were never sent. Replay consequently observes every epoch any
//! worker observed, and `max(replayed epochs) + 1` is a safe restart
//! fence — the explicit recovery bump on top is defence in depth.

use serde::{Deserialize, Serialize};
use sift_core::RegionOutcome;
use sift_geo::State;
use sift_journal::{read_checkpoint, write_checkpoint, Journal};
use std::io;
use std::path::{Path, PathBuf};

/// One durably-logged coordinator state transition. Appended (and
/// fsynced) before the protocol reply that acknowledges it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CoordRecord {
    /// A worker joined the run (membership feeds the consistent-hash
    /// ring, so it must survive restart).
    Joined {
        /// The joining worker.
        worker: String,
    },
    /// A shard was leased to `worker` under fencing token `epoch`.
    Leased {
        /// The leased region.
        state: State,
        /// The lease holder.
        worker: String,
        /// The granted fencing epoch.
        epoch: u64,
    },
    /// The holder handed the lease back voluntarily (no attempt burned,
    /// no benching).
    Released {
        /// The released region.
        state: State,
        /// The epoch the lease was held under.
        epoch: u64,
    },
    /// The lease expired: the holder is benched and one attempt burned;
    /// `failed` records whether that exhausted the attempt budget.
    Expired {
        /// The expired region.
        state: State,
        /// The benched (presumed dead) holder.
        worker: String,
        /// The epoch the lease was held under.
        epoch: u64,
        /// Whether the expiry spent the shard's last attempt.
        failed: bool,
    },
    /// An upload was accepted under `epoch`; `digest` fingerprints the
    /// serialized outcome for post-run audits.
    Done {
        /// The completed region.
        state: State,
        /// The uploading worker.
        worker: String,
        /// The epoch the result was computed under.
        epoch: u64,
        /// FNV-1a digest of the serialized outcome.
        digest: u64,
        /// The accepted outcome itself (the journal is the system of
        /// record: a restarted coordinator must not re-crawl it).
        outcome: Box<RegionOutcome>,
    },
}

/// The durable projection of one shard.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The region.
    pub state: State,
    /// Expiry-burned attempts (the budget the run fails on).
    pub attempts: u32,
    /// Total lease grants, including re-grants after reroute or restart
    /// (`/cluster/status` exposes this as the per-shard attempt count).
    pub grants: u32,
    /// The accepted outcome and its digest, once uploaded.
    pub done: Option<(u64, Box<RegionOutcome>)>,
    /// Whether the shard exhausted its attempt budget.
    pub failed: bool,
}

/// The coordinator's recoverable control state: the checkpoint payload,
/// and equally the in-memory target WAL replay folds into.
///
/// Leases are deliberately *absent*: a lease is a promise about a live
/// worker's heartbeat stream, which does not survive the coordinator
/// process. On recovery every leased shard is pending again and the
/// epoch fence invalidates the old grants.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoordCheckpoint {
    /// The next epoch to grant (strictly above every granted epoch).
    pub next_epoch: u64,
    /// Completed coordinator recoveries for this run.
    pub recoveries: u64,
    /// Reroutes performed so far.
    pub rerouted: u64,
    /// Worker membership, in join order.
    pub workers: Vec<String>,
    /// Benched (presumed dead) workers.
    pub dead: Vec<String>,
    /// Per-shard durable state, in study-region order.
    pub shards: Vec<ShardSnapshot>,
}

impl CoordCheckpoint {
    /// The pristine state for a fresh run over `regions`.
    pub fn initial(regions: &[State]) -> CoordCheckpoint {
        CoordCheckpoint {
            next_epoch: 0,
            recoveries: 0,
            rerouted: 0,
            workers: Vec::new(),
            dead: Vec::new(),
            shards: regions
                .iter()
                .map(|&state| ShardSnapshot {
                    state,
                    attempts: 0,
                    grants: 0,
                    done: None,
                    failed: false,
                })
                .collect(),
        }
    }

    /// Folds one WAL record into the state, mirroring the coordinator's
    /// live mutations. Unknown regions are ignored (a record can never
    /// reference one unless the study parameters changed under the
    /// journal, which [`CoordDurability::open`] rejects up front).
    pub fn apply(&mut self, rec: CoordRecord) {
        match rec {
            CoordRecord::Joined { worker } => {
                if !self.workers.iter().any(|w| w == &worker) {
                    self.workers.push(worker);
                }
            }
            CoordRecord::Leased {
                state,
                worker,
                epoch,
            } => {
                self.next_epoch = self.next_epoch.max(epoch.saturating_add(1));
                if !self.workers.iter().any(|w| w == &worker) {
                    self.workers.push(worker);
                }
                if let Some(sh) = self.shards.iter_mut().find(|sh| sh.state == state) {
                    sh.grants = sh.grants.saturating_add(1);
                }
            }
            CoordRecord::Released { state: _, epoch } => {
                self.next_epoch = self.next_epoch.max(epoch.saturating_add(1));
                self.rerouted = self.rerouted.saturating_add(1);
            }
            CoordRecord::Expired {
                state,
                worker,
                epoch,
                failed,
            } => {
                self.next_epoch = self.next_epoch.max(epoch.saturating_add(1));
                if !self.dead.iter().any(|w| w == &worker) {
                    self.dead.push(worker);
                }
                if let Some(sh) = self.shards.iter_mut().find(|sh| sh.state == state) {
                    sh.attempts = sh.attempts.saturating_add(1);
                    sh.failed = failed;
                    if !failed {
                        self.rerouted = self.rerouted.saturating_add(1);
                    }
                }
            }
            CoordRecord::Done {
                state,
                epoch,
                digest,
                outcome,
                ..
            } => {
                self.next_epoch = self.next_epoch.max(epoch.saturating_add(1));
                if let Some(sh) = self.shards.iter_mut().find(|sh| sh.state == state) {
                    sh.done = Some((digest, outcome));
                    sh.failed = false;
                }
            }
        }
    }
}

/// What [`CoordDurability::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct CoordRecovery {
    /// Whether any prior state existed (checkpoint or WAL records): the
    /// condition under which the restart counts as a recovery and the
    /// fencing epoch is bumped.
    pub had_state: bool,
    /// Whether an intact checkpoint was loaded.
    pub checkpoint_loaded: bool,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// Whether the WAL ended in a torn record that was truncated.
    pub torn_tail: bool,
}

/// The coordinator's durability driver: one WAL plus one checkpoint file
/// under a run directory. Always mutated under the coordinator's state
/// lock, so the journal order equals the state mutation order.
pub struct CoordDurability {
    journal: Journal,
    ckpt_path: PathBuf,
    checkpoint_every: u64,
    since_checkpoint: u64,
}

impl CoordDurability {
    /// Opens (creating if needed) the durable state under `dir` and
    /// recovers: checkpoint first, then the WAL tail folded on top.
    /// `regions` must match the study parameters; a journal written for a
    /// different region set is rejected rather than silently misapplied.
    pub fn open(
        dir: &Path,
        regions: &[State],
        checkpoint_every: u64,
    ) -> io::Result<(CoordDurability, CoordCheckpoint, CoordRecovery)> {
        std::fs::create_dir_all(dir)?;
        let ckpt_path = dir.join("coord.ckpt");
        let (mut journal, wal) = Journal::open(&dir.join("coord.wal"))?;
        // Control records are acknowledgements-in-waiting: every append
        // must be durable before the reply goes out, so fsync per record.
        journal.set_sync_every(1);

        let mut recovery = CoordRecovery {
            torn_tail: wal.torn_tail,
            records_replayed: wal.records.len(),
            ..CoordRecovery::default()
        };
        let mut snap = match read_checkpoint(&ckpt_path)? {
            Some(payload) => {
                recovery.checkpoint_loaded = true;
                serde_json::from_slice::<CoordCheckpoint>(&payload)
                    .map_err(|e| invalid(format!("corrupt coordinator checkpoint: {e}")))?
            }
            None => CoordCheckpoint::initial(regions),
        };
        recovery.had_state = recovery.checkpoint_loaded || !wal.records.is_empty() || wal.torn_tail;

        let want: Vec<State> = regions.to_vec();
        let have: Vec<State> = snap.shards.iter().map(|sh| sh.state).collect();
        if want != have {
            return Err(invalid(
                "coordinator journal does not match the study parameters' region set".to_owned(),
            ));
        }
        for bytes in &wal.records {
            let rec = serde_json::from_slice::<CoordRecord>(bytes)
                .map_err(|e| invalid(format!("corrupt coordinator WAL record: {e}")))?;
            snap.apply(rec);
        }

        Ok((
            CoordDurability {
                journal,
                ckpt_path,
                checkpoint_every: checkpoint_every.max(1),
                since_checkpoint: 0,
            },
            snap,
            recovery,
        ))
    }

    /// Durably appends one record: on the OS *and* fsynced before return.
    pub fn append(&mut self, rec: &CoordRecord) -> io::Result<()> {
        let payload = serde_json::to_vec(rec)
            .map_err(|e| invalid(format!("unencodable coordinator record: {e}")))?;
        self.journal.append(&payload)?;
        self.since_checkpoint = self.since_checkpoint.saturating_add(1);
        Ok(())
    }

    /// Whether enough records accumulated to warrant compaction.
    pub fn should_checkpoint(&self) -> bool {
        self.since_checkpoint >= self.checkpoint_every
    }

    /// Atomically installs `snap` as the checkpoint and empties the WAL
    /// it subsumes. Crash-ordering: the checkpoint is durable (temp +
    /// fsync + rename) before the journal is truncated, so a crash
    /// between the two replays WAL records the checkpoint already
    /// contains — [`CoordCheckpoint::apply`] is tolerant of that
    /// (grants/attempts saturate; `done` overwrites with equal bytes).
    pub fn install_checkpoint(&mut self, snap: &CoordCheckpoint) -> io::Result<()> {
        let payload = serde_json::to_vec(snap)
            .map_err(|e| invalid(format!("unencodable coordinator checkpoint: {e}")))?;
        write_checkpoint(&self.ckpt_path, &payload, None)?;
        self.journal.truncate_all()?;
        self.since_checkpoint = 0;
        sift_obs::counter("sift_cluster_coord_checkpoints_total", &[]).inc();
        Ok(())
    }
}

/// FNV-1a over the serialized outcome: the digest WAL'd (and auditable)
/// alongside every accepted upload.
pub fn outcome_digest(outcome: &RegionOutcome) -> u64 {
    let bytes = serde_json::to_vec(outcome).unwrap_or_default();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_journal::testutil::scratch_dir;

    fn regions() -> Vec<State> {
        vec![State::CA, State::TX]
    }

    fn open(dir: &Path) -> (CoordDurability, CoordCheckpoint, CoordRecovery) {
        CoordDurability::open(dir, &regions(), 100).expect("open durability")
    }

    #[test]
    fn fresh_dir_recovers_to_initial_state() {
        let dir = scratch_dir("recovery_fresh");
        let (_d, snap, rec) = open(&dir);
        assert!(!rec.had_state);
        assert_eq!(snap.next_epoch, 0);
        assert_eq!(snap.shards.len(), 2);
        assert!(snap.shards.iter().all(|sh| sh.done.is_none() && !sh.failed));
    }

    #[test]
    fn replay_reconstructs_epochs_membership_and_attempts() {
        let dir = scratch_dir("recovery_replay");
        {
            let (mut d, _, _) = open(&dir);
            d.append(&CoordRecord::Joined {
                worker: "w0".into(),
            })
            .expect("wal");
            d.append(&CoordRecord::Leased {
                state: State::CA,
                worker: "w0".into(),
                epoch: 0,
            })
            .expect("wal");
            d.append(&CoordRecord::Expired {
                state: State::CA,
                worker: "w0".into(),
                epoch: 0,
                failed: false,
            })
            .expect("wal");
            d.append(&CoordRecord::Leased {
                state: State::CA,
                worker: "w1".into(),
                epoch: 1,
            })
            .expect("wal");
        }
        let (_d, snap, rec) = open(&dir);
        assert!(rec.had_state);
        assert_eq!(rec.records_replayed, 4);
        assert_eq!(snap.next_epoch, 2, "fence sits above every granted epoch");
        assert_eq!(snap.workers, vec!["w0".to_string(), "w1".to_string()]);
        assert_eq!(snap.dead, vec!["w0".to_string()]);
        let ca = &snap.shards[0];
        assert_eq!((ca.attempts, ca.grants), (1, 2));
        assert_eq!(snap.rerouted, 1);
    }

    #[test]
    fn checkpoint_compacts_and_composes_with_the_wal_tail() {
        let dir = scratch_dir("recovery_compact");
        {
            let (mut d, mut snap, _) = open(&dir);
            let rec = CoordRecord::Leased {
                state: State::CA,
                worker: "w0".into(),
                epoch: 7,
            };
            d.append(&rec).expect("wal");
            snap.apply(rec);
            d.install_checkpoint(&snap).expect("checkpoint");
            // Post-checkpoint tail.
            d.append(&CoordRecord::Released {
                state: State::CA,
                epoch: 7,
            })
            .expect("wal");
        }
        let (_d, snap, rec) = open(&dir);
        assert!(rec.checkpoint_loaded);
        assert_eq!(rec.records_replayed, 1, "checkpoint subsumed the prefix");
        assert_eq!(snap.next_epoch, 8);
        assert_eq!(snap.shards[0].grants, 1);
        assert_eq!(snap.rerouted, 1);
    }

    #[test]
    fn mismatched_region_set_is_rejected() {
        let dir = scratch_dir("recovery_mismatch");
        {
            let (mut d, snap, _) = open(&dir);
            d.install_checkpoint(&snap).expect("checkpoint");
        }
        let err = match CoordDurability::open(&dir, &[State::NY], 100) {
            Ok(_) => panic!("a mismatched region set must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_tail_is_cut_and_reported() {
        let dir = scratch_dir("recovery_torn");
        {
            let (mut d, _, _) = open(&dir);
            d.append(&CoordRecord::Joined {
                worker: "w0".into(),
            })
            .expect("wal");
        }
        // Stage a torn half-record at the tail, as a mid-append crash would.
        let wal = dir.join("coord.wal");
        let mut bytes = std::fs::read(&wal).expect("read wal");
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe]);
        std::fs::write(&wal, &bytes).expect("stage torn tail");
        let (_d, snap, rec) = open(&dir);
        assert!(rec.torn_tail);
        assert_eq!(rec.records_replayed, 1);
        assert_eq!(snap.workers, vec!["w0".to_string()]);
    }
}

//! Consistent-hash assignment of shards to workers.
//!
//! The coordinator places every worker on a hash ring at a fixed number
//! of virtual points and assigns each shard key to the first worker point
//! at or past the key's own hash. Two properties matter here:
//!
//! * **Determinism** — the ring is a pure function of the worker set, so
//!   every participant (and every re-run) computes the same assignment.
//! * **Minimal movement** — when a worker dies, only *its* shards move
//!   (to the next point on the ring); every other shard keeps its owner.
//!   This is what keeps a mid-run reroute cheap: the surviving workers'
//!   in-progress leases are untouched.

/// 64-bit FNV-1a with a SplitMix64 finalizer. Small, dependency-free and
/// stable across platforms — the ring must hash identically on every
/// worker and every run. Raw FNV-1a has weak high-bit avalanche on the
/// short, shared-prefix keys used here (`"worker-0#17"`, `"CA"`): its
/// points cluster into tight bands and one worker ends up owning nearly
/// the whole ring. The finalizer's xor-shift-multiply rounds spread the
/// low-byte differences across all 64 bits.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// A consistent-hash ring over a set of worker identities.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, worker index)`, sorted by point (ties break by index, so
    /// equal hashes still order deterministically).
    points: Vec<(u64, usize)>,
    workers: Vec<String>,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual points per worker. More points
    /// smooth the load split (at ~40 the imbalance across 51 regions is
    /// small); the cost is only `workers × vnodes` sort entries.
    pub fn new(workers: &[String], vnodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(workers.len() * vnodes.max(1));
        for (idx, worker) in workers.iter().enumerate() {
            for v in 0..vnodes.max(1) {
                points.push((fnv1a(format!("{worker}#{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            workers: workers.to_vec(),
        }
    }

    /// Whether the ring has no workers at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The worker owning `key`: the first ring point clockwise from the
    /// key's hash. `None` only on an empty ring.
    pub fn assign(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(key.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[i % self.points.len()];
        Some(&self.workers[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_geo::State;

    fn workers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("worker-{i}")).collect()
    }

    #[test]
    fn assignment_is_deterministic() {
        let a = HashRing::new(&workers(3), 40);
        let b = HashRing::new(&workers(3), 40);
        for state in State::ALL {
            assert_eq!(a.assign(state.abbrev()), b.assign(state.abbrev()));
        }
    }

    #[test]
    fn every_worker_gets_a_reasonable_share() {
        let ring = HashRing::new(&workers(3), 40);
        let mut counts = [0usize; 3];
        for state in State::ALL {
            let owner = ring.assign(state.abbrev()).expect("non-empty ring");
            let idx: usize = owner
                .strip_prefix("worker-")
                .and_then(|s| s.parse().ok())
                .expect("worker name");
            counts[idx] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), State::ALL.len());
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c >= State::ALL.len() / 10,
                "worker-{i} got only {c} of {} shards: {counts:?}",
                State::ALL.len()
            );
        }
    }

    #[test]
    fn removing_a_worker_moves_only_its_shards() {
        let all = workers(4);
        let full = HashRing::new(&all, 40);
        let survivors: Vec<String> = all.iter().filter(|w| *w != "worker-2").cloned().collect();
        let reduced = HashRing::new(&survivors, 40);
        let mut moved = 0usize;
        for state in State::ALL {
            let before = full.assign(state.abbrev()).expect("full ring");
            let after = reduced.assign(state.abbrev()).expect("reduced ring");
            if before == "worker-2" {
                moved += 1;
                assert_ne!(after, "worker-2");
            } else {
                assert_eq!(before, after, "{} moved off a live worker", state.abbrev());
            }
        }
        assert!(moved > 0, "the removed worker owned nothing — weak test");
    }

    #[test]
    fn empty_ring_assigns_nothing() {
        let ring = HashRing::new(&[], 40);
        assert!(ring.is_empty());
        assert_eq!(ring.assign("CA"), None);
    }
}

//! Wire types of the compact coordinator/worker job protocol.
//!
//! Four POST routes and one GET, all JSON over the `sift-net` stack:
//!
//! * `POST /cluster/join` — a worker announces itself; the reply carries
//!   the coordinator's trace root (the `X-Sift-Trace` value the worker
//!   reopens so the whole sharded run assembles into one trace tree).
//! * `POST /cluster/lease` — a worker asks for work; the reply is a shard
//!   job with a fencing epoch, a wait hint, or "done, go home".
//! * `POST /cluster/heartbeat` — lease renewal (or, with `releasing`, a
//!   voluntary handback). A `keep: false` reply means the lease was
//!   revoked: stop working on it and don't upload.
//! * `POST /cluster/result` — the shard's [`RegionOutcome`] upload,
//!   fenced by the lease epoch so a zombie's late upload is rejected.
//! * `GET /cluster/status` — progress counters for drivers and tests.
//!
//! Transport concerns — retries, trace propagation, identity headers,
//! deadlines — ride on the existing `sift-net` client/server machinery;
//! nothing here reimplements them.

use serde::{Deserialize, Serialize};
use sift_core::RegionOutcome;
use sift_geo::State;

/// `POST /cluster/join` body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinRequest {
    /// The worker's identity (stable for its lifetime).
    pub worker: String,
}

/// `POST /cluster/join` reply.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinReply {
    /// Whether the worker was admitted to the run.
    pub accepted: bool,
    /// The coordinator's trace root in `X-Sift-Trace` header format, if
    /// the coordinator runs inside a trace.
    pub trace: Option<String>,
    /// Total shards in the run (progress denominator).
    pub shards: usize,
    /// The heartbeat cadence the coordinator expects, milliseconds. The
    /// death threshold is a configured multiple of this same number, so
    /// worker and coordinator can never disagree about the tolerance.
    pub heartbeat_ms: u64,
}

/// `POST /cluster/lease` body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// The requesting worker.
    pub worker: String,
}

/// One leased shard: a region to crawl, fenced by `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardJob {
    /// The region to run [`sift_core::run_region_study`] for.
    pub state: State,
    /// Lease fencing token: heartbeats and the result upload must echo
    /// it. A reroute issues a fresh epoch, invalidating the old holder.
    pub epoch: u64,
}

/// `POST /cluster/lease` reply.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseReply {
    /// A shard to work on.
    Job(ShardJob),
    /// Nothing assignable right now; poll again after `poll_ms`.
    Wait {
        /// Suggested delay before the next lease request, milliseconds.
        poll_ms: u64,
    },
    /// The run is complete (or aborted); the worker should exit.
    Done,
}

/// `POST /cluster/heartbeat` body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatRequest {
    /// The renewing worker.
    pub worker: String,
    /// The leased shard.
    pub state: State,
    /// The lease epoch being renewed.
    pub epoch: u64,
    /// `true` hands the lease back voluntarily (graceful shutdown): the
    /// shard reroutes immediately instead of waiting for expiry.
    pub releasing: bool,
}

/// `POST /cluster/heartbeat` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatReply {
    /// `false` means the lease is gone (expired, rerouted, or released):
    /// abandon the shard and do not upload its result.
    pub keep: bool,
}

/// `POST /cluster/result` body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResultUpload {
    /// The uploading worker.
    pub worker: String,
    /// The lease epoch the shard was computed under.
    pub epoch: u64,
    /// The computed per-region outcome (identifies its region).
    pub outcome: RegionOutcome,
}

/// `POST /cluster/result` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultReply {
    /// `false` means the upload was fenced off (stale epoch) or unknown.
    pub accepted: bool,
}

/// `GET /cluster/status` reply.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReply {
    /// Total shards in the run.
    pub total: usize,
    /// Shards with an accepted result.
    pub done: usize,
    /// Shards abandoned after the reroute budget was exhausted.
    pub failed: usize,
    /// Reroutes performed so far (any reason).
    pub rerouted: u64,
    /// The current fencing epoch (the next to be granted): strictly
    /// above every epoch ever issued, across coordinator restarts.
    pub epoch: u64,
    /// Completed coordinator recoveries feeding this run.
    pub recoveries: u64,
    /// Currently live leases as `(worker, region)`.
    pub leases: Vec<(String, State)>,
    /// Lease grants per shard, including re-grants after reroutes or a
    /// coordinator restart — the audit trail for "re-crawled at most the
    /// in-flight shards".
    pub shard_attempts: Vec<(State, u32)>,
    /// Regions with an accepted result, in shard order.
    pub done_states: Vec<State>,
    /// Every worker that ever joined, in join order.
    pub workers: Vec<String>,
    /// Workers flagged dead (missed heartbeats).
    pub dead: Vec<String>,
}

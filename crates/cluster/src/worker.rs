//! The worker role: lease shards, crawl them, upload outcomes.
//!
//! A worker is one OS thread (plus a heartbeat thread per active lease)
//! speaking the `/cluster/*` protocol to the coordinator and the
//! `/api/*` crawl protocol to the trends service. Each leased shard runs
//! through the public [`sift_core::run_region_study`] with a locally
//! computed [`sift_core::plan_frames`] plan — both deterministic
//! functions of the study parameters, which is the worker-side half of
//! the bit-identical guarantee.
//!
//! Fetched responses are optionally journaled to a per-worker
//! [`DurableStore`] directory, so a driver can later audit the union of
//! worker journals with [`sift_fetcher::merge_journal_dirs`].

use crate::proto::{
    HeartbeatReply, HeartbeatRequest, JoinReply, JoinRequest, LeaseReply, LeaseRequest,
    ResultReply, ResultUpload,
};
use parking_lot::Mutex;
use sift_core::{plan_frames, run_region_study, StudyParams};
use sift_fetcher::{DurableStore, HttpTrendsClient, ResponseSink};
use sift_net::{ClientError, HttpClient, Request, RetryPolicy};
use sift_trends::{
    FetchError, FrameRequest, FrameResponse, RisingRequest, RisingResponse, TrendsClient,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker tuning.
#[derive(Clone, Debug, Default)]
pub struct WorkerConfig {
    /// Override for the lease poll interval (the coordinator's `poll_ms`
    /// hint is used when `None`).
    pub poll: Option<Duration>,
    /// Override for the heartbeat cadence while a shard is leased. When
    /// `None` the cadence advertised by the coordinator at join is used,
    /// so both sides derive beat rate and death threshold from the same
    /// configured interval.
    pub heartbeat_every: Option<Duration>,
    /// How long the worker keeps retrying (with full-jitter backoff)
    /// when the coordinator is unreachable before giving up — sized to
    /// span a coordinator crash-and-restart. Defaults to 5 s.
    pub coord_down_grace: Option<Duration>,
    /// Source identity the fetch client crawls under (defaults to the
    /// worker id).
    pub fetch_identity: Option<String>,
    /// When set, fetched responses are journaled to
    /// `<durability_root>/<worker id>` for post-run merge audits.
    pub durability_root: Option<PathBuf>,
    /// Retry policy for the crawl client (the `sift-net` default applies
    /// when `None`).
    pub retry: Option<RetryPolicy>,
}

/// What a worker thread did, reported by [`WorkerHandle::join`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards whose results the coordinator accepted.
    pub shards_done: usize,
    /// Whether the worker exited via [`WorkerHandle::kill`].
    pub killed: bool,
}

/// A handle on a spawned worker thread.
pub struct WorkerHandle {
    id: String,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<WorkerSummary>,
}

impl WorkerHandle {
    /// The worker's identity.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Simulates abrupt worker death: the thread stops cold at its next
    /// checkpoint — no release heartbeat, no result upload, no journal
    /// sync. The coordinator only learns of it by missed heartbeats.
    pub fn kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
    }

    /// Requests a graceful stop: the current shard is handed back with a
    /// `releasing` heartbeat and the journal is synced before exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the worker thread to exit.
    pub fn join(self) -> WorkerSummary {
        self.thread
            .join()
            .unwrap_or_else(|_| WorkerSummary::default())
    }
}

/// A [`TrendsClient`] that tees every successful response into a
/// per-worker [`DurableStore`] journal before returning it.
struct JournalingClient {
    inner: HttpTrendsClient,
    store: Option<Mutex<DurableStore>>,
}

impl TrendsClient for JournalingClient {
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
        let resp = self.inner.fetch_frame(req)?;
        if let Some(store) = &self.store {
            store.lock().insert_frame(req.tag, resp.clone());
        }
        Ok(resp)
    }

    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
        let resp = self.inner.fetch_rising(req)?;
        if let Some(store) = &self.store {
            store.lock().insert_rising(req.len, resp.clone());
        }
        Ok(resp)
    }

    fn identity(&self) -> &str {
        self.inner.identity()
    }

    fn healthy(&self) -> bool {
        self.inner.healthy()
    }
}

/// Spawns a worker thread that joins the coordinator at `coord_addr`,
/// leases shards until the run completes, and crawls each shard against
/// the trends service at `trends_addr`.
///
/// `params` must equal the coordinator's study parameters — the frame
/// plan is recomputed locally from them, not shipped over the wire.
pub fn spawn_worker(
    id: impl Into<String>,
    coord_addr: SocketAddr,
    trends_addr: SocketAddr,
    params: StudyParams,
    config: WorkerConfig,
) -> WorkerHandle {
    let id = id.into();
    let stop = Arc::new(AtomicBool::new(false));
    let kill = Arc::new(AtomicBool::new(false));
    let thread = {
        let id = id.clone();
        let stop = Arc::clone(&stop);
        let kill = Arc::clone(&kill);
        std::thread::spawn(move || {
            run_worker(
                &id,
                coord_addr,
                trends_addr,
                &params,
                &config_or(config),
                &stop,
                &kill,
            )
        })
    };
    WorkerHandle {
        id,
        stop,
        kill,
        thread,
    }
}

struct ResolvedConfig {
    poll: Option<Duration>,
    heartbeat_every: Option<Duration>,
    coord_down_grace: Duration,
    fetch_identity: Option<String>,
    durability_root: Option<PathBuf>,
    retry: Option<RetryPolicy>,
}

fn config_or(config: WorkerConfig) -> ResolvedConfig {
    ResolvedConfig {
        poll: config.poll,
        heartbeat_every: config.heartbeat_every,
        coord_down_grace: config.coord_down_grace.unwrap_or(Duration::from_secs(5)),
        fetch_identity: config.fetch_identity,
        durability_root: config.durability_root,
        retry: config.retry,
    }
}

fn run_worker(
    id: &str,
    coord_addr: SocketAddr,
    trends_addr: SocketAddr,
    params: &StudyParams,
    config: &ResolvedConfig,
    stop: &AtomicBool,
    kill: &Arc<AtomicBool>,
) -> WorkerSummary {
    let coord = HttpClient::new(coord_addr).with_identity(id.to_string());
    let mut summary = WorkerSummary::default();

    // Join, and reopen the coordinator's trace root so every span this
    // thread opens hangs off the run's single trace tree.
    let join: Result<JoinReply, _> = coord.post_json(
        "/cluster/join",
        &JoinRequest {
            worker: id.to_string(),
        },
    );
    let joined = join.ok();
    // Heartbeat cadence: explicit override first, then the cadence the
    // coordinator advertised at join (derived from the same interval its
    // death threshold is), then a conservative default.
    let heartbeat_every = config
        .heartbeat_every
        .or_else(|| {
            joined
                .as_ref()
                .map(|j| Duration::from_millis(j.heartbeat_ms.max(1)))
        })
        .unwrap_or(Duration::from_millis(100));
    let trace = joined
        .and_then(|j| j.trace)
        .and_then(|h| sift_obs::SpanContext::from_header(&h));
    let _worker_span = match trace {
        Some(ctx) => sift_obs::span_in(ctx, "worker"),
        None => sift_obs::span_root("worker"),
    };

    let identity = config
        .fetch_identity
        .clone()
        .unwrap_or_else(|| id.to_string());
    let mut fetch = HttpTrendsClient::new(trends_addr, identity);
    if let Some(retry) = config.retry {
        fetch = fetch.with_retry(retry);
    }
    let store = match &config.durability_root {
        Some(root) => match DurableStore::open(&root.join(id)) {
            Ok((store, _resume)) => Some(Mutex::new(store)),
            Err(e) => {
                sift_obs::event(
                    sift_obs::Level::Warn,
                    "cluster.worker",
                    "worker journal unavailable; crawling without one",
                    &[("error", serde_json::Value::Str(e.to_string()))],
                );
                None
            }
        },
        None => None,
    };
    let client = JournalingClient {
        inner: fetch,
        store,
    };

    // The frame plan is a pure function of the study parameters, so
    // every worker (and the single-process driver) computes the same one.
    let plan = plan_frames(params.range, params.plan);

    // Consecutive lease failures: (first failure instant, attempt count).
    let mut outage: Option<(Instant, u32)> = None;
    loop {
        if kill.load(Ordering::SeqCst) {
            summary.killed = true;
            return summary;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let (reply, retry_after) = match lease_once(&coord, id) {
            Ok(ok) => ok,
            Err(e) => {
                // Coordinator unreachable — quite possibly restarting.
                // Back off with full jitter instead of hammering it the
                // moment it comes back, and only give up once the grace
                // window (sized to span a crash-and-restart) is spent.
                let (since, attempt) = match outage {
                    Some((since, attempt)) => (since, attempt.saturating_add(1)),
                    None => (Instant::now(), 1),
                };
                if since.elapsed() > config.coord_down_grace {
                    sift_obs::event(
                        sift_obs::Level::Warn,
                        "cluster.worker",
                        "coordinator unreachable past grace window; worker exiting",
                        &[("error", serde_json::Value::Str(e.to_string()))],
                    );
                    break;
                }
                outage = Some((since, attempt));
                sift_obs::counter("sift_cluster_worker_lease_retry_total", &[]).inc();
                sleep_watching(full_jitter_backoff(id, attempt), stop, kill);
                continue;
            }
        };
        outage = None;
        match reply {
            LeaseReply::Done => break,
            LeaseReply::Wait { poll_ms } => {
                let wait = match retry_after {
                    // An explicit `Retry-After` is the coordinator saying
                    // polling sooner cannot help (benched, or nothing
                    // pending anywhere): honour it over local preference.
                    Some(hint) => hint.clamp(Duration::from_millis(1), Duration::from_secs(2)),
                    None => config
                        .poll
                        .unwrap_or(Duration::from_millis(poll_ms))
                        .clamp(Duration::from_millis(1), Duration::from_millis(250)),
                };
                sleep_watching(wait, stop, kill);
            }
            LeaseReply::Job(job) => {
                let done = run_shard(
                    id,
                    &coord,
                    coord_addr,
                    &client,
                    params,
                    &plan.frames,
                    job,
                    heartbeat_every,
                    kill,
                );
                if done {
                    summary.shards_done += 1;
                }
                if kill.load(Ordering::SeqCst) {
                    summary.killed = true;
                    return summary;
                }
            }
        }
    }

    // Graceful exit: make the journal durable.
    if let Some(store) = &client.store {
        if let Err(e) = store.lock().sync() {
            sift_obs::event(
                sift_obs::Level::Warn,
                "cluster.worker",
                "worker journal sync failed on exit",
                &[("error", serde_json::Value::Str(e.to_string()))],
            );
        }
    }
    summary
}

/// One lease request over the wire, surfacing the `Retry-After` header
/// alongside the decoded reply. `HttpClient::post_json` discards
/// response headers, so the hint needs the raw send path.
fn lease_once(
    coord: &HttpClient,
    worker: &str,
) -> Result<(LeaseReply, Option<Duration>), ClientError> {
    let req = Request::post_json(
        "/cluster/lease",
        &LeaseRequest {
            worker: worker.to_string(),
        },
    )
    .map_err(ClientError::Json)?;
    let resp = coord.send_with_retry(&req)?;
    let retry_after = resp
        .headers
        .get("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs);
    let reply = resp.parse_json().map_err(ClientError::Json)?;
    Ok((reply, retry_after))
}

/// Full-jitter backoff for coordinator outages: uniform over
/// `(0, min(25 ms × 2^(attempt−1), 1 s)]`, drawn from a deterministic
/// hash of `(worker, attempt)` so a seeded nemesis schedule replays the
/// exact same waits.
fn full_jitter_backoff(worker: &str, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(6);
    let ceiling_ms = (25u64 << exp).min(1_000);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in worker.bytes().chain(*b"CBKF") {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= u64::from(attempt);
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    Duration::from_millis(hash % ceiling_ms + 1)
}

/// Sleeps up to `total`, waking early on stop or kill so a backing-off
/// worker still dies (or exits) promptly.
fn sleep_watching(total: Duration, stop: &AtomicBool, kill: &AtomicBool) {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::SeqCst) || kill.load(Ordering::SeqCst) {
            return;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// Crawls one leased shard; returns whether its result was accepted.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    id: &str,
    coord: &HttpClient,
    coord_addr: SocketAddr,
    client: &JournalingClient,
    params: &StudyParams,
    frames: &[sift_simtime::HourRange],
    job: crate::proto::ShardJob,
    heartbeat_every: Duration,
    kill: &Arc<AtomicBool>,
) -> bool {
    // The heartbeat thread renews the lease while the crawl runs. It
    // uses its own connection so a long fetch cannot starve renewals,
    // and it watches the kill flag so a killed worker goes silent
    // immediately — even while the crawl thread is still mid-fetch —
    // which is what lets the coordinator detect the death mid-run.
    let hb_stop = Arc::new(AtomicBool::new(false));
    let lost = Arc::new(AtomicBool::new(false));
    let hb_thread = {
        let hb_stop = Arc::clone(&hb_stop);
        let lost = Arc::clone(&lost);
        let kill = Arc::clone(kill);
        let worker = id.to_string();
        let every = heartbeat_every;
        let ctx = sift_obs::SpanContext::current();
        std::thread::spawn(move || {
            let hb = HttpClient::new(coord_addr).with_identity(worker.clone());
            let _span = ctx.map(|c| sift_obs::span_in(c, "heartbeat"));
            while !hb_stop.load(Ordering::SeqCst) && !kill.load(Ordering::SeqCst) {
                std::thread::sleep(every);
                if hb_stop.load(Ordering::SeqCst) || kill.load(Ordering::SeqCst) {
                    break;
                }
                let reply: Result<HeartbeatReply, _> = hb.post_json(
                    "/cluster/heartbeat",
                    &HeartbeatRequest {
                        worker: worker.clone(),
                        state: job.state,
                        epoch: job.epoch,
                        releasing: false,
                    },
                );
                if let Ok(HeartbeatReply { keep: false }) = reply {
                    // Lease revoked: flag the crawl as wasted work.
                    lost.store(true, Ordering::SeqCst);
                    break;
                }
            }
        })
    };

    let outcome = {
        let _span = sift_obs::span("region");
        run_region_study(client, params, frames, job.state, None)
    };

    hb_stop.store(true, Ordering::SeqCst);
    // sift-lint: allow(swallowed-result) — a panicked heartbeat thread only stops renewals; lease expiry then reroutes the shard, which is the designed fallback
    let _ = hb_thread.join();

    if kill.load(Ordering::SeqCst) {
        // Died mid-shard: say nothing, upload nothing. The coordinator
        // finds out the hard way, via the missed heartbeat deadline.
        return false;
    }

    match outcome {
        Ok(outcome) if !lost.load(Ordering::SeqCst) => {
            let reply: Result<ResultReply, _> = coord.post_json(
                "/cluster/result",
                &ResultUpload {
                    worker: id.to_string(),
                    epoch: job.epoch,
                    outcome,
                },
            );
            matches!(reply, Ok(ResultReply { accepted: true }))
        }
        Ok(_) => false,
        Err(e) => {
            sift_obs::event(
                sift_obs::Level::Warn,
                "cluster.worker",
                "shard crawl failed; releasing lease",
                &[
                    (
                        "state",
                        serde_json::Value::Str(job.state.abbrev().to_string()),
                    ),
                    ("error", serde_json::Value::Str(e.to_string())),
                ],
            );
            // Hand the shard back so another attempt can start now
            // rather than after the heartbeat timeout.
            let _: Result<HeartbeatReply, _> = coord.post_json(
                "/cluster/heartbeat",
                &HeartbeatRequest {
                    worker: id.to_string(),
                    state: job.state,
                    epoch: job.epoch,
                    releasing: true,
                },
            );
            false
        }
    }
}

//! The crawl coordinator: shard table, leases, heartbeats, reroutes.
//!
//! One [`Coordinator`] owns one study: it partitions `params.regions`
//! into shards, assigns each shard to a worker by consistent hashing over
//! the live worker set, and tracks progress through lease epochs. A
//! worker that misses its heartbeat deadline is declared dead; its shards
//! go back to pending, the ring (now excluding the dead worker) routes
//! them to survivors, and an attempt budget bounds how often a shard may
//! bounce before the run is declared failed — the same
//! bounce-then-shed shape the fetcher queue applies to individual
//! requests.
//!
//! Once every shard has an accepted [`RegionOutcome`], the coordinator
//! folds them through [`sift_core::assemble_study`] — the *same* global
//! phase the in-process driver runs — which is what makes the sharded
//! result bit-identical to single-process [`sift_core::run_study`].

use crate::proto::{
    HeartbeatReply, HeartbeatRequest, JoinReply, JoinRequest, LeaseReply, LeaseRequest,
    ResultReply, ResultUpload, ShardJob, StatusReply,
};
use crate::ring::HashRing;
use parking_lot::Mutex;
use sift_core::{assemble_study, RegionOutcome, StudyParams, StudyResult};
use sift_geo::State;
use sift_net::{Method, Request, Response, Router, StatusCode};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a shard was taken from its worker and rerouted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RerouteReason {
    /// The lease holder missed its heartbeat deadline — the worker is
    /// presumed dead and benched for the rest of the run.
    HeartbeatMissed,
    /// The holder handed the lease back voluntarily (graceful shutdown or
    /// a failed crawl attempt it could not complete).
    WorkerLeft,
}

impl RerouteReason {
    /// Every reason, in declaration order.
    pub const ALL: [RerouteReason; 2] = [RerouteReason::HeartbeatMissed, RerouteReason::WorkerLeft];

    /// The metric label this reason is counted under in
    /// `sift_cluster_reroute_total{reason=…}`.
    pub fn label(self) -> &'static str {
        match self {
            RerouteReason::HeartbeatMissed => "heartbeat_missed",
            RerouteReason::WorkerLeft => "worker_left",
        }
    }
}

impl std::fmt::Display for RerouteReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Coordinator tuning.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// A lease not renewed within this window is expired and its worker
    /// declared dead.
    pub heartbeat_timeout: Duration,
    /// The wait hint handed to workers with nothing to do.
    pub poll_ms: u64,
    /// Times a shard may be (re)issued before the run fails. Mirrors the
    /// fetcher queue's per-item attempt budget.
    pub attempt_budget: u32,
    /// Virtual points per worker on the consistent-hash ring.
    pub vnodes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            heartbeat_timeout: Duration::from_secs(1),
            poll_ms: 25,
            attempt_budget: 3,
            vnodes: 40,
        }
    }
}

/// How a sharded run can fail.
#[derive(Debug)]
pub enum ClusterError {
    /// Not every shard completed within the caller's wait budget.
    Timeout {
        /// Shards with an accepted result.
        done: usize,
        /// Total shards.
        total: usize,
    },
    /// A shard exhausted its attempt budget.
    ShardFailed {
        /// The region that could not be completed.
        state: State,
        /// Lease attempts consumed.
        attempts: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Timeout { done, total } => {
                write!(f, "cluster run timed out with {done}/{total} shards done")
            }
            ClusterError::ShardFailed { state, attempts } => {
                write!(f, "shard {state} failed after {attempts} lease attempts")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

enum ShardStatus {
    Pending,
    Leased {
        worker: String,
        epoch: u64,
        hb_deadline_ms: u64,
    },
    Done {
        outcome: Box<RegionOutcome>,
    },
    Failed,
}

struct Shard {
    state: State,
    attempts: u32,
    status: ShardStatus,
}

#[derive(Default)]
struct CoordState {
    shards: Vec<Shard>,
    workers: Vec<String>,
    dead: BTreeSet<String>,
    next_epoch: u64,
    rerouted: u64,
}

/// The coordinator role: owns the shard table for one study.
pub struct Coordinator {
    params: StudyParams,
    config: ClusterConfig,
    /// Monotonic clock anchor; all protocol timing is milliseconds since
    /// this instant, never wall-clock time-of-day.
    epoch: Instant,
    /// The trace context workers parent their spans onto.
    trace_root: Option<sift_obs::SpanContext>,
    baseline: sift_obs::SpanBaseline,
    inner: Mutex<CoordState>,
}

impl Coordinator {
    /// A coordinator for `params`, one shard per region. The span active
    /// at construction time (if any) becomes the run's trace root,
    /// propagated to workers at join.
    pub fn new(params: StudyParams, config: ClusterConfig) -> Coordinator {
        let shards = params
            .regions
            .iter()
            .map(|&state| Shard {
                state,
                attempts: 0,
                status: ShardStatus::Pending,
            })
            .collect();
        sift_obs::gauge("sift_cluster_shards_pending", &[])
            .set(i64::try_from(params.regions.len()).unwrap_or(i64::MAX));
        Coordinator {
            params,
            config,
            epoch: Instant::now(),
            trace_root: sift_obs::SpanContext::current(),
            baseline: sift_obs::SpanBaseline::capture(),
            inner: Mutex::new(CoordState {
                shards,
                ..CoordState::default()
            }),
        }
    }

    /// The study parameters this run shards over.
    pub fn params(&self) -> &StudyParams {
        &self.params
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn timeout_ms(&self) -> u64 {
        u64::try_from(self.config.heartbeat_timeout.as_millis()).unwrap_or(u64::MAX)
    }

    fn count_reroute(&self, reason: RerouteReason, state: State, worker: &str) {
        sift_obs::counter("sift_cluster_reroute_total", &[("reason", reason.label())]).inc();
        sift_obs::event(
            sift_obs::Level::Warn,
            "cluster.coord",
            "shard rerouted",
            &[
                ("reason", serde_json::Value::Str(reason.label().into())),
                ("state", serde_json::Value::Str(state.abbrev().into())),
                ("worker", serde_json::Value::Str(worker.into())),
            ],
        );
    }

    /// Expires stale leases: holders past their heartbeat deadline are
    /// declared dead and their shards rerouted (or failed once the
    /// attempt budget is spent). Called from every protocol handler and
    /// from the wait loop, so detection does not depend on traffic from
    /// the dead worker itself.
    fn expire(&self, s: &mut CoordState, now_ms: u64) {
        let budget = self.config.attempt_budget;
        let mut newly_dead: Vec<String> = Vec::new();
        let mut reroutes: Vec<(State, String)> = Vec::new();
        let mut failures = 0usize;
        for shard in &mut s.shards {
            if let ShardStatus::Leased {
                worker,
                hb_deadline_ms,
                ..
            } = &shard.status
            {
                if now_ms > *hb_deadline_ms {
                    let worker = worker.clone();
                    newly_dead.push(worker.clone());
                    shard.attempts += 1;
                    if shard.attempts >= budget {
                        shard.status = ShardStatus::Failed;
                        failures += 1;
                        sift_obs::counter("sift_cluster_shards_failed_total", &[]).inc();
                    } else {
                        shard.status = ShardStatus::Pending;
                        reroutes.push((shard.state, worker.clone()));
                    }
                    self.count_reroute(RerouteReason::HeartbeatMissed, shard.state, &worker);
                }
            }
        }
        s.rerouted += reroutes.len() as u64;
        let _ = failures;
        for w in newly_dead {
            s.dead.insert(w);
        }
    }

    fn join(&self, req: &JoinRequest) -> JoinReply {
        let mut s = self.inner.lock();
        if !s.workers.iter().any(|w| w == &req.worker) {
            s.workers.push(req.worker.clone());
        }
        sift_obs::gauge("sift_cluster_workers", &[])
            .set(i64::try_from(s.workers.len()).unwrap_or(i64::MAX));
        JoinReply {
            accepted: !s.dead.contains(&req.worker),
            trace: self.trace_root.map(|c| c.to_header()),
            shards: s.shards.len(),
        }
    }

    fn lease(&self, req: &LeaseRequest) -> LeaseReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        // Tolerate a lease before (or instead of) an explicit join.
        if !s.workers.iter().any(|w| w == &req.worker) {
            s.workers.push(req.worker.clone());
        }
        let finished = s
            .shards
            .iter()
            .all(|sh| matches!(sh.status, ShardStatus::Done { .. } | ShardStatus::Failed));
        if finished {
            return LeaseReply::Done;
        }
        if s.dead.contains(&req.worker) {
            // Benched: a presumed-dead worker gets no new work; its old
            // epochs are already fenced off.
            return LeaseReply::Wait {
                poll_ms: self.config.poll_ms,
            };
        }
        let live: Vec<String> = s
            .workers
            .iter()
            .filter(|w| !s.dead.contains(*w))
            .cloned()
            .collect();
        let ring = HashRing::new(&live, self.config.vnodes);
        let picked = s.shards.iter().position(|sh| {
            matches!(sh.status, ShardStatus::Pending)
                && ring.assign(sh.state.abbrev()) == Some(req.worker.as_str())
        });
        let Some(idx) = picked else {
            return LeaseReply::Wait {
                poll_ms: self.config.poll_ms,
            };
        };
        let epoch = s.next_epoch;
        s.next_epoch += 1;
        let shard = &mut s.shards[idx];
        shard.status = ShardStatus::Leased {
            worker: req.worker.clone(),
            epoch,
            hb_deadline_ms: now.saturating_add(self.timeout_ms()),
        };
        sift_obs::counter("sift_cluster_lease_total", &[]).inc();
        LeaseReply::Job(ShardJob {
            state: shard.state,
            epoch,
        })
    }

    fn heartbeat(&self, req: &HeartbeatRequest) -> HeartbeatReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        let timeout = self.timeout_ms();
        let mut release: Option<(State, String)> = None;
        let mut keep = false;
        if let Some(shard) = s.shards.iter_mut().find(|sh| sh.state == req.state) {
            if let ShardStatus::Leased {
                worker,
                epoch,
                hb_deadline_ms,
            } = &mut shard.status
            {
                if *worker == req.worker && *epoch == req.epoch {
                    if req.releasing {
                        // Voluntary handback: reroute immediately, and —
                        // unlike an expiry — without burning an attempt
                        // or benching the worker.
                        release = Some((shard.state, worker.clone()));
                        shard.status = ShardStatus::Pending;
                    } else {
                        *hb_deadline_ms = now.saturating_add(timeout);
                        keep = true;
                    }
                }
            }
        }
        sift_obs::counter("sift_cluster_heartbeat_total", &[]).inc();
        if let Some((state, worker)) = release {
            s.rerouted += 1;
            self.count_reroute(RerouteReason::WorkerLeft, state, &worker);
        }
        HeartbeatReply { keep }
    }

    fn result(&self, up: ResultUpload) -> ResultReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        let state = up.outcome.state;
        let mut accepted = false;
        if let Some(shard) = s.shards.iter_mut().find(|sh| sh.state == state) {
            if let ShardStatus::Leased { worker, epoch, .. } = &shard.status {
                // Epoch fencing: only the current holder's upload counts.
                // A zombie that lost its lease (and whose shard was
                // re-issued under a newer epoch) is rejected here even if
                // it finished the crawl.
                if *worker == up.worker && *epoch == up.epoch {
                    shard.status = ShardStatus::Done {
                        outcome: Box::new(up.outcome),
                    };
                    accepted = true;
                }
            }
        }
        sift_obs::counter(
            "sift_cluster_result_total",
            &[("accepted", bool_label(accepted))],
        )
        .inc();
        let done = s
            .shards
            .iter()
            .filter(|sh| matches!(sh.status, ShardStatus::Done { .. }))
            .count();
        sift_obs::gauge("sift_cluster_shards_done", &[])
            .set(i64::try_from(done).unwrap_or(i64::MAX));
        ResultReply { accepted }
    }

    /// A progress snapshot (the `GET /cluster/status` payload).
    pub fn status(&self) -> StatusReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        let mut reply = StatusReply {
            total: s.shards.len(),
            rerouted: s.rerouted,
            workers: s.workers.clone(),
            dead: s.dead.iter().cloned().collect(),
            ..StatusReply::default()
        };
        for sh in &s.shards {
            match &sh.status {
                ShardStatus::Done { .. } => reply.done += 1,
                ShardStatus::Failed => reply.failed += 1,
                ShardStatus::Leased { worker, .. } => {
                    reply.leases.push((worker.clone(), sh.state));
                }
                ShardStatus::Pending => {}
            }
        }
        reply
    }

    /// Blocks until every shard has an accepted outcome, then assembles
    /// the final [`StudyResult`] exactly as single-process
    /// [`sift_core::run_study`] would. The wait loop also drives lease
    /// expiry, so worker death is detected even with no surviving
    /// protocol traffic.
    pub fn wait_result(&self, timeout: Duration) -> Result<StudyResult, ClusterError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let now = self.now_ms();
                let mut s = self.inner.lock();
                self.expire(&mut s, now);
                if let Some(sh) = s
                    .shards
                    .iter()
                    .find(|sh| matches!(sh.status, ShardStatus::Failed))
                {
                    return Err(ClusterError::ShardFailed {
                        state: sh.state,
                        attempts: sh.attempts,
                    });
                }
                let outcomes: Vec<RegionOutcome> = s
                    .shards
                    .iter()
                    .filter_map(|sh| match &sh.status {
                        ShardStatus::Done { outcome } => Some((**outcome).clone()),
                        _ => None,
                    })
                    .collect();
                if outcomes.len() == s.shards.len() {
                    drop(s);
                    let mut result = assemble_study(&self.params, outcomes, false);
                    result.stats.telemetry = sift_obs::TelemetrySnapshot::since(&self.baseline);
                    sift_obs::event(
                        sift_obs::Level::Info,
                        "cluster.coord",
                        "sharded study assembled",
                        &[(
                            "frames_requested",
                            serde_json::Value::UInt(result.stats.frames_requested),
                        )],
                    );
                    return Ok(result);
                }
                let done = outcomes.len();
                if Instant::now() >= deadline {
                    return Err(ClusterError::Timeout {
                        done,
                        total: s.shards.len(),
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(self.config.poll_ms.clamp(1, 100)));
        }
    }
}

fn bool_label(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// The coordinator's HTTP surface: the five `/cluster/*` routes plus the
/// standard observability mounts. Serve it with [`sift_net::Server`].
pub fn cluster_router(coord: &Arc<Coordinator>) -> Router {
    let join_c = Arc::clone(coord);
    let lease_c = Arc::clone(coord);
    let hb_c = Arc::clone(coord);
    let result_c = Arc::clone(coord);
    let status_c = Arc::clone(coord);

    sift_net::mount_observability(Router::new())
        .route(Method::Post, "/cluster/join", move |req: &Request| {
            sift_obs::counter("sift_cluster_join_total", &[]).inc();
            match req.json::<JoinRequest>() {
                Ok(body) => json_reply(&join_c.join(&body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad join: {e}")),
            }
        })
        .route(
            Method::Post,
            "/cluster/lease",
            move |req: &Request| match req.json::<LeaseRequest>() {
                Ok(body) => json_reply(&lease_c.lease(&body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad lease: {e}")),
            },
        )
        .route(
            Method::Post,
            "/cluster/heartbeat",
            move |req: &Request| match req.json::<HeartbeatRequest>() {
                Ok(body) => json_reply(&hb_c.heartbeat(&body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad heartbeat: {e}")),
            },
        )
        .route(
            Method::Post,
            "/cluster/result",
            move |req: &Request| match req.json::<ResultUpload>() {
                Ok(body) => json_reply(&result_c.result(body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad result: {e}")),
            },
        )
        .route(Method::Get, "/cluster/status", move |_req: &Request| {
            sift_obs::counter("sift_cluster_status_total", &[]).inc();
            json_reply(&status_c.status())
        })
}

fn json_reply<T: serde::Serialize>(value: &T) -> Response {
    Response::json(value)
        .unwrap_or_else(|e| Response::text(StatusCode::INTERNAL_SERVER_ERROR, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_simtime::{Hour, HourRange};

    fn params(regions: Vec<State>) -> StudyParams {
        StudyParams {
            range: HourRange::new(Hour(0), Hour(336)),
            regions,
            ..StudyParams::default()
        }
    }

    fn config() -> ClusterConfig {
        ClusterConfig {
            heartbeat_timeout: Duration::from_millis(50),
            poll_ms: 5,
            attempt_budget: 3,
            vnodes: 40,
        }
    }

    fn lease(c: &Coordinator, worker: &str) -> LeaseReply {
        c.lease(&LeaseRequest {
            worker: worker.into(),
        })
    }

    #[test]
    fn reroute_reason_labels_cover_every_variant() {
        let labels: Vec<_> = RerouteReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["heartbeat_missed", "worker_left"]);
    }

    #[test]
    fn leases_follow_the_ring_and_epochs_are_unique() {
        let c = Coordinator::new(params(vec![State::CA, State::TX, State::NY]), config());
        let mut epochs = Vec::new();
        // One worker owns everything on a single-worker ring.
        for _ in 0..3 {
            match lease(&c, "w0") {
                LeaseReply::Job(job) => epochs.push(job.epoch),
                other => panic!("expected a job, got {other:?}"),
            }
        }
        assert!(matches!(lease(&c, "w0"), LeaseReply::Wait { .. }));
        epochs.sort_unstable();
        epochs.dedup();
        assert_eq!(epochs.len(), 3, "every lease gets a fresh epoch");
    }

    #[test]
    fn missed_heartbeats_reroute_to_survivors_with_fencing() {
        let c = Coordinator::new(params(vec![State::CA]), config());
        c.join(&JoinRequest {
            worker: "w0".into(),
        });
        c.join(&JoinRequest {
            worker: "w1".into(),
        });
        // Whichever worker the ring prefers takes the shard.
        let (holder, other, job) = match lease(&c, "w0") {
            LeaseReply::Job(job) => ("w0", "w1", job),
            _ => match lease(&c, "w1") {
                LeaseReply::Job(job) => ("w1", "w0", job),
                reply => panic!("neither worker got the shard, got {reply:?}"),
            },
        };
        // Heartbeats renew the lease...
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            c.heartbeat(&HeartbeatRequest {
                worker: holder.into(),
                state: job.state,
                epoch: job.epoch,
                releasing: false,
            })
            .keep
        );
        // ...until the holder goes silent past the timeout.
        std::thread::sleep(Duration::from_millis(80));
        let status = c.status();
        assert_eq!(status.rerouted, 1, "{status:?}");
        assert_eq!(status.dead, vec![holder.to_string()]);
        // The survivor now owns the shard (ring excludes the dead).
        let rejob = match lease(&c, other) {
            LeaseReply::Job(job) => job,
            other => panic!("expected reroute job, got {other:?}"),
        };
        assert_eq!(rejob.state, job.state);
        assert!(rejob.epoch > job.epoch, "reroute issues a fresh epoch");
        // The dead worker is benched and its stale epoch fenced off.
        assert!(matches!(lease(&c, holder), LeaseReply::Wait { .. }));
        assert!(
            !c.heartbeat(&HeartbeatRequest {
                worker: holder.into(),
                state: job.state,
                epoch: job.epoch,
                releasing: false,
            })
            .keep
        );
    }

    #[test]
    fn attempt_budget_fails_the_shard_eventually() {
        let mut cfg = config();
        cfg.heartbeat_timeout = Duration::from_millis(10);
        cfg.attempt_budget = 2;
        let c = Coordinator::new(params(vec![State::CA]), cfg);
        for worker in ["w0", "w1", "w2"] {
            if let LeaseReply::Job(_) = lease(&c, worker) {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        let err = c.wait_result(Duration::from_millis(200)).unwrap_err();
        assert!(
            matches!(
                err,
                ClusterError::ShardFailed {
                    state: State::CA,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn voluntary_release_reroutes_without_benching() {
        let c = Coordinator::new(params(vec![State::CA]), config());
        let job = match lease(&c, "w0") {
            LeaseReply::Job(job) => job,
            other => panic!("expected a job, got {other:?}"),
        };
        let reply = c.heartbeat(&HeartbeatRequest {
            worker: "w0".into(),
            state: job.state,
            epoch: job.epoch,
            releasing: true,
        });
        assert!(!reply.keep);
        let status = c.status();
        assert_eq!(status.rerouted, 1);
        assert!(status.dead.is_empty(), "a graceful release is not a death");
        // The same worker may take the shard right back.
        assert!(matches!(lease(&c, "w0"), LeaseReply::Job(_)));
    }
}

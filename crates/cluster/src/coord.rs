//! The crawl coordinator: shard table, leases, heartbeats, reroutes.
//!
//! One [`Coordinator`] owns one study: it partitions `params.regions`
//! into shards, assigns each shard to a worker by consistent hashing over
//! the live worker set, and tracks progress through lease epochs. A
//! worker that misses its heartbeat deadline is declared dead; its shards
//! go back to pending, the ring (now excluding the dead worker) routes
//! them to survivors, and an attempt budget bounds how often a shard may
//! bounce before the run is declared failed — the same
//! bounce-then-shed shape the fetcher queue applies to individual
//! requests.
//!
//! A coordinator opened with [`Coordinator::durable`] additionally
//! journals every control-state transition through `sift-journal` before
//! acknowledging it (see [`crate::recovery`]): kill the process at any
//! point and a restart replays the WAL, bumps the fencing epoch past
//! everything it ever granted, and resumes the run without re-crawling
//! accepted shards.
//!
//! Once every shard has an accepted [`RegionOutcome`], the coordinator
//! folds them through [`sift_core::assemble_study`] — the *same* global
//! phase the in-process driver runs — which is what makes the sharded
//! result bit-identical to single-process [`sift_core::run_study`].

use crate::proto::{
    HeartbeatReply, HeartbeatRequest, JoinReply, JoinRequest, LeaseReply, LeaseRequest,
    ResultReply, ResultUpload, ShardJob, StatusReply,
};
use crate::recovery::{
    outcome_digest, CoordCheckpoint, CoordDurability, CoordRecord, CoordRecovery, ShardSnapshot,
};
use crate::ring::HashRing;
use parking_lot::Mutex;
use sift_core::{assemble_study, RegionOutcome, StudyParams, StudyResult};
use sift_geo::State;
use sift_net::{Method, Request, Response, Router, StatusCode};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a shard was taken from its worker and rerouted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RerouteReason {
    /// The lease holder missed its heartbeat deadline — the worker is
    /// presumed dead and benched for the rest of the run.
    HeartbeatMissed,
    /// The holder handed the lease back voluntarily (graceful shutdown or
    /// a failed crawl attempt it could not complete).
    WorkerLeft,
}

impl RerouteReason {
    /// Every reason, in declaration order.
    pub const ALL: [RerouteReason; 2] = [RerouteReason::HeartbeatMissed, RerouteReason::WorkerLeft];

    /// The metric label this reason is counted under in
    /// `sift_cluster_reroute_total{reason=…}`.
    pub fn label(self) -> &'static str {
        match self {
            RerouteReason::HeartbeatMissed => "heartbeat_missed",
            RerouteReason::WorkerLeft => "worker_left",
        }
    }
}

impl std::fmt::Display for RerouteReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Coordinator tuning.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// The heartbeat cadence workers are asked to beat at (advertised in
    /// the join reply, so both sides share one number).
    pub heartbeat_interval: Duration,
    /// Missed beats before a lease holder is declared dead. The death
    /// timeout is *derived* — [`ClusterConfig::heartbeat_timeout`] =
    /// interval × threshold — so the cadence and the tolerance can never
    /// silently disagree the way two hardcoded constants could.
    pub miss_threshold: u32,
    /// The wait hint handed to workers with nothing to do.
    pub poll_ms: u64,
    /// Times a shard may be (re)issued before the run fails. Mirrors the
    /// fetcher queue's per-item attempt budget.
    pub attempt_budget: u32,
    /// Virtual points per worker on the consistent-hash ring.
    pub vnodes: usize,
    /// WAL records between periodic checkpoints (durable runs only).
    pub checkpoint_every: u64,
}

impl ClusterConfig {
    /// The lease expiry window: a lease not renewed within
    /// `heartbeat_interval × miss_threshold` is expired and its worker
    /// declared dead.
    pub fn heartbeat_timeout(&self) -> Duration {
        self.heartbeat_interval
            .saturating_mul(self.miss_threshold.max(1))
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            heartbeat_interval: Duration::from_millis(250),
            miss_threshold: 4,
            poll_ms: 25,
            attempt_budget: 3,
            vnodes: 40,
            checkpoint_every: 8,
        }
    }
}

/// How a sharded run can fail.
#[derive(Debug)]
pub enum ClusterError {
    /// Not every shard completed within the caller's wait budget.
    Timeout {
        /// Shards with an accepted result.
        done: usize,
        /// Total shards.
        total: usize,
    },
    /// A shard exhausted its attempt budget.
    ShardFailed {
        /// The region that could not be completed.
        state: State,
        /// Lease attempts consumed.
        attempts: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Timeout { done, total } => {
                write!(f, "cluster run timed out with {done}/{total} shards done")
            }
            ClusterError::ShardFailed { state, attempts } => {
                write!(f, "shard {state} failed after {attempts} lease attempts")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

enum ShardStatus {
    Pending,
    Leased {
        worker: String,
        epoch: u64,
        hb_deadline_ms: u64,
    },
    Done {
        outcome: Box<RegionOutcome>,
    },
    Failed,
}

struct Shard {
    state: State,
    /// Expiry-burned attempts (the budget the run fails on).
    attempts: u32,
    /// Total lease grants including re-grants — the per-shard attempt
    /// count `/cluster/status` reports for recovery audits.
    grants: u32,
    status: ShardStatus,
}

#[derive(Default)]
struct CoordState {
    shards: Vec<Shard>,
    workers: Vec<String>,
    dead: BTreeSet<String>,
    next_epoch: u64,
    rerouted: u64,
    /// Completed coordinator recoveries feeding this run.
    recoveries: u64,
    /// WAL + checkpoint driver; `None` for a purely in-memory run.
    /// Living inside the state mutex means journal order provably equals
    /// state-mutation order.
    durability: Option<CoordDurability>,
}

/// The durable projection of the live state: leased shards snapshot as
/// pending because a lease is a promise about a live heartbeat stream
/// and deliberately does not survive the coordinator process.
fn snapshot(s: &CoordState) -> CoordCheckpoint {
    CoordCheckpoint {
        next_epoch: s.next_epoch,
        recoveries: s.recoveries,
        rerouted: s.rerouted,
        workers: s.workers.clone(),
        dead: s.dead.iter().cloned().collect(),
        shards: s
            .shards
            .iter()
            .map(|sh| ShardSnapshot {
                state: sh.state,
                attempts: sh.attempts,
                grants: sh.grants,
                done: match &sh.status {
                    ShardStatus::Done { outcome } => {
                        Some((outcome_digest(outcome), outcome.clone()))
                    }
                    _ => None,
                },
                failed: matches!(sh.status, ShardStatus::Failed),
            })
            .collect(),
    }
}

/// Appends `rec` if this coordinator is durable. Returns `false` only
/// when the record could not be made durable — a caller about to
/// acknowledge the mutation must then withhold the acknowledgement
/// (WAL before acknowledgement is the recovery invariant).
fn wal_append(durability: &mut Option<CoordDurability>, rec: &CoordRecord) -> bool {
    let Some(d) = durability.as_mut() else {
        return true;
    };
    match d.append(rec) {
        Ok(()) => true,
        Err(e) => {
            sift_obs::counter("sift_cluster_wal_errors_total", &[]).inc();
            sift_obs::event(
                sift_obs::Level::Error,
                "cluster.coord",
                "coordinator WAL append failed",
                &[("error", serde_json::Value::Str(e.to_string()))],
            );
            false
        }
    }
}

/// Compacts the WAL into a checkpoint when enough records accumulated.
/// A failed compaction is survivable — the WAL keeps the run durable —
/// so it is reported, not propagated.
fn maybe_checkpoint(s: &mut CoordState) {
    let due = s
        .durability
        .as_ref()
        .is_some_and(CoordDurability::should_checkpoint);
    if !due {
        return;
    }
    let snap = snapshot(s);
    if let Some(d) = s.durability.as_mut() {
        if let Err(e) = d.install_checkpoint(&snap) {
            sift_obs::counter("sift_cluster_wal_errors_total", &[]).inc();
            sift_obs::event(
                sift_obs::Level::Error,
                "cluster.coord",
                "coordinator checkpoint failed",
                &[("error", serde_json::Value::Str(e.to_string()))],
            );
        }
    }
}

/// The coordinator role: owns the shard table for one study.
pub struct Coordinator {
    params: StudyParams,
    config: ClusterConfig,
    /// Monotonic clock anchor; all protocol timing is milliseconds since
    /// this instant, never wall-clock time-of-day.
    epoch: Instant,
    /// The trace context workers parent their spans onto.
    trace_root: Option<sift_obs::SpanContext>,
    baseline: sift_obs::SpanBaseline,
    inner: Mutex<CoordState>,
}

impl Coordinator {
    /// An in-memory coordinator for `params`, one shard per region. The
    /// span active at construction time (if any) becomes the run's trace
    /// root, propagated to workers at join.
    pub fn new(params: StudyParams, config: ClusterConfig) -> Coordinator {
        let snap = CoordCheckpoint::initial(&params.regions);
        Coordinator::from_state(params, config, snap, None)
    }

    /// A crash-recoverable coordinator whose control state lives under
    /// `dir`. A fresh directory starts a fresh run; a directory holding a
    /// prior coordinator's checkpoint + WAL *recovers* it: the shard
    /// table is replayed, in-flight leases revert to pending, the fencing
    /// epoch is bumped strictly past every epoch the previous incarnation
    /// granted, and already-accepted outcomes are restored so their
    /// shards are never re-crawled.
    pub fn durable(
        params: StudyParams,
        config: ClusterConfig,
        dir: &Path,
    ) -> io::Result<(Coordinator, CoordRecovery)> {
        let (mut durability, mut snap, recovery) =
            CoordDurability::open(dir, &params.regions, config.checkpoint_every)?;
        if recovery.had_state {
            snap.recoveries = snap.recoveries.saturating_add(1);
            // Replay already fences above every *logged* epoch; the
            // explicit bump additionally separates incarnations so the
            // restart is observable in audits even when no grant raced
            // the crash.
            snap.next_epoch = snap.next_epoch.saturating_add(1);
            sift_obs::counter("sift_cluster_coord_recoveries_total", &[]).inc();
            sift_obs::counter("sift_cluster_epoch_bumps_total", &[]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "cluster.coord",
                "coordinator recovered",
                &[
                    (
                        "records_replayed",
                        serde_json::Value::UInt(recovery.records_replayed as u64),
                    ),
                    ("torn_tail", serde_json::Value::Bool(recovery.torn_tail)),
                    ("next_epoch", serde_json::Value::UInt(snap.next_epoch)),
                ],
            );
        }
        // Compact immediately: the bumped fence and recovery count are
        // durable before the first new acknowledgement, and the replayed
        // WAL is subsumed.
        durability.install_checkpoint(&snap)?;
        Ok((
            Coordinator::from_state(params, config, snap, Some(durability)),
            recovery,
        ))
    }

    fn from_state(
        params: StudyParams,
        config: ClusterConfig,
        snap: CoordCheckpoint,
        durability: Option<CoordDurability>,
    ) -> Coordinator {
        let shards: Vec<Shard> = snap
            .shards
            .into_iter()
            .map(|sh| Shard {
                state: sh.state,
                attempts: sh.attempts,
                grants: sh.grants,
                status: if sh.failed {
                    ShardStatus::Failed
                } else if let Some((_, outcome)) = sh.done {
                    ShardStatus::Done { outcome }
                } else {
                    ShardStatus::Pending
                },
            })
            .collect();
        let pending = shards
            .iter()
            .filter(|sh| matches!(sh.status, ShardStatus::Pending))
            .count();
        sift_obs::gauge("sift_cluster_shards_pending", &[])
            .set(i64::try_from(pending).unwrap_or(i64::MAX));
        Coordinator {
            params,
            config,
            epoch: Instant::now(),
            trace_root: sift_obs::SpanContext::current(),
            baseline: sift_obs::SpanBaseline::capture(),
            inner: Mutex::new(CoordState {
                shards,
                workers: snap.workers,
                dead: snap.dead.into_iter().collect(),
                next_epoch: snap.next_epoch,
                rerouted: snap.rerouted,
                recoveries: snap.recoveries,
                durability,
            }),
        }
    }

    /// The study parameters this run shards over.
    pub fn params(&self) -> &StudyParams {
        &self.params
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn timeout_ms(&self) -> u64 {
        u64::try_from(self.config.heartbeat_timeout().as_millis()).unwrap_or(u64::MAX)
    }

    /// The `Retry-After` hint (whole seconds) for a worker with nothing
    /// leasable: roughly one death-detection window, when new work could
    /// plausibly exist.
    fn retry_after_secs(&self) -> u64 {
        self.timeout_ms().div_ceil(1000).clamp(1, 5)
    }

    fn count_reroute(&self, reason: RerouteReason, state: State, worker: &str) {
        sift_obs::counter("sift_cluster_reroute_total", &[("reason", reason.label())]).inc();
        sift_obs::event(
            sift_obs::Level::Warn,
            "cluster.coord",
            "shard rerouted",
            &[
                ("reason", serde_json::Value::Str(reason.label().into())),
                ("state", serde_json::Value::Str(state.abbrev().into())),
                ("worker", serde_json::Value::Str(worker.into())),
            ],
        );
    }

    /// Expires stale leases: holders past their heartbeat deadline are
    /// declared dead and their shards rerouted (or failed once the
    /// attempt budget is spent). Called from every protocol handler and
    /// from the wait loop, so detection does not depend on traffic from
    /// the dead worker itself.
    fn expire(&self, s: &mut CoordState, now_ms: u64) {
        let budget = self.config.attempt_budget;
        let mut newly_dead: Vec<String> = Vec::new();
        let mut reroutes = 0u64;
        let mut records: Vec<CoordRecord> = Vec::new();
        for shard in &mut s.shards {
            if let ShardStatus::Leased {
                worker,
                epoch,
                hb_deadline_ms,
            } = &shard.status
            {
                if now_ms > *hb_deadline_ms {
                    let worker = worker.clone();
                    let epoch = *epoch;
                    newly_dead.push(worker.clone());
                    shard.attempts += 1;
                    let failed = shard.attempts >= budget;
                    if failed {
                        shard.status = ShardStatus::Failed;
                        sift_obs::counter("sift_cluster_shards_failed_total", &[]).inc();
                    } else {
                        shard.status = ShardStatus::Pending;
                        reroutes += 1;
                    }
                    records.push(CoordRecord::Expired {
                        state: shard.state,
                        worker: worker.clone(),
                        epoch,
                        failed,
                    });
                    self.count_reroute(RerouteReason::HeartbeatMissed, shard.state, &worker);
                }
            }
        }
        s.rerouted += reroutes;
        for w in newly_dead {
            s.dead.insert(w);
        }
        // Expiry acknowledges nothing to a worker, so a failed append is
        // survivable: a recovered coordinator simply re-learns the death
        // the same way — via a missed heartbeat deadline.
        for rec in records {
            wal_append(&mut s.durability, &rec);
        }
    }

    fn join(&self, req: &JoinRequest) -> JoinReply {
        let mut s = self.inner.lock();
        if !s.workers.iter().any(|w| w == &req.worker) {
            s.workers.push(req.worker.clone());
            // Membership is also re-established by the worker's first
            // lease record, so a failed append degrades, not corrupts.
            wal_append(
                &mut s.durability,
                &CoordRecord::Joined {
                    worker: req.worker.clone(),
                },
            );
        }
        sift_obs::gauge("sift_cluster_workers", &[])
            .set(i64::try_from(s.workers.len()).unwrap_or(i64::MAX));
        JoinReply {
            accepted: !s.dead.contains(&req.worker),
            trace: self.trace_root.map(|c| c.to_header()),
            shards: s.shards.len(),
            heartbeat_ms: u64::try_from(self.config.heartbeat_interval.as_millis())
                .unwrap_or(u64::MAX),
        }
    }

    /// Grants a lease, or explains the wait. The second component is a
    /// `Retry-After` hint in seconds, set only when polling sooner cannot
    /// help: the requester is benched, or no shard is pending at all.
    fn lease(&self, req: &LeaseRequest) -> (LeaseReply, Option<u64>) {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        // Tolerate a lease before (or instead of) an explicit join.
        if !s.workers.iter().any(|w| w == &req.worker) {
            s.workers.push(req.worker.clone());
            wal_append(
                &mut s.durability,
                &CoordRecord::Joined {
                    worker: req.worker.clone(),
                },
            );
        }
        let finished = s
            .shards
            .iter()
            .all(|sh| matches!(sh.status, ShardStatus::Done { .. } | ShardStatus::Failed));
        if finished {
            return (LeaseReply::Done, None);
        }
        let wait = LeaseReply::Wait {
            poll_ms: self.config.poll_ms,
        };
        if s.dead.contains(&req.worker) {
            // Benched: a presumed-dead worker gets no new work; its old
            // epochs are already fenced off. Nothing will change for it
            // before the next death-detection window.
            return (wait, Some(self.retry_after_secs()));
        }
        let live: Vec<String> = s
            .workers
            .iter()
            .filter(|w| !s.dead.contains(*w))
            .cloned()
            .collect();
        let ring = HashRing::new(&live, self.config.vnodes);
        let picked = s.shards.iter().position(|sh| {
            matches!(sh.status, ShardStatus::Pending)
                && ring.assign(sh.state.abbrev()) == Some(req.worker.as_str())
        });
        let Some(idx) = picked else {
            let any_pending = s
                .shards
                .iter()
                .any(|sh| matches!(sh.status, ShardStatus::Pending));
            // No pending shard anywhere → only a completion, expiry, or
            // release can create work; hint a long poll. Pending shards
            // owned by other workers → poll normally (reroutes can move
            // them here at any moment).
            let hint = if any_pending {
                None
            } else {
                Some(self.retry_after_secs())
            };
            return (wait, hint);
        };
        let epoch = s.next_epoch;
        s.next_epoch += 1;
        // WAL before acknowledgement: the epoch may reach the worker only
        // once the grant is durable. On failure the shard stays pending
        // (the epoch counter stays bumped — burning a number is safe,
        // reusing one is not).
        let rec = CoordRecord::Leased {
            state: s.shards[idx].state,
            worker: req.worker.clone(),
            epoch,
        };
        if !wal_append(&mut s.durability, &rec) {
            return (wait, None);
        }
        let timeout = self.timeout_ms();
        let shard = &mut s.shards[idx];
        shard.grants = shard.grants.saturating_add(1);
        shard.status = ShardStatus::Leased {
            worker: req.worker.clone(),
            epoch,
            hb_deadline_ms: now.saturating_add(timeout),
        };
        let job = ShardJob {
            state: shard.state,
            epoch,
        };
        sift_obs::counter("sift_cluster_lease_total", &[]).inc();
        maybe_checkpoint(&mut s);
        (LeaseReply::Job(job), None)
    }

    fn heartbeat(&self, req: &HeartbeatRequest) -> HeartbeatReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        let timeout = self.timeout_ms();
        let mut release: Option<(State, String)> = None;
        let mut keep = false;
        let CoordState {
            shards, durability, ..
        } = &mut *s;
        if let Some(shard) = shards.iter_mut().find(|sh| sh.state == req.state) {
            if let ShardStatus::Leased {
                worker,
                epoch,
                hb_deadline_ms,
            } = &mut shard.status
            {
                if *worker == req.worker && *epoch == req.epoch {
                    if req.releasing {
                        // Voluntary handback: reroute immediately, and —
                        // unlike an expiry — without burning an attempt
                        // or benching the worker. If the release cannot
                        // be journaled the lease simply stands until its
                        // heartbeat deadline expires it.
                        let rec = CoordRecord::Released {
                            state: shard.state,
                            epoch: *epoch,
                        };
                        if wal_append(durability, &rec) {
                            release = Some((shard.state, worker.clone()));
                            shard.status = ShardStatus::Pending;
                        }
                    } else {
                        *hb_deadline_ms = now.saturating_add(timeout);
                        keep = true;
                    }
                }
            }
        }
        sift_obs::counter("sift_cluster_heartbeat_total", &[]).inc();
        if let Some((state, worker)) = release {
            s.rerouted += 1;
            self.count_reroute(RerouteReason::WorkerLeft, state, &worker);
        }
        HeartbeatReply { keep }
    }

    fn result(&self, up: ResultUpload) -> ResultReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        let state = up.outcome.state;
        // Epoch fencing: only the current holder's upload counts. A
        // zombie that lost its lease (and whose shard was re-issued
        // under a newer epoch) is rejected here even if it finished.
        let holder_ok = s.shards.iter().any(|sh| {
            sh.state == state
                && matches!(
                    &sh.status,
                    ShardStatus::Leased { worker, epoch, .. }
                        if *worker == up.worker && *epoch == up.epoch
                )
        });
        let mut accepted = false;
        if holder_ok {
            let digest = outcome_digest(&up.outcome);
            let outcome = Box::new(up.outcome);
            // WAL before acknowledgement: the outcome (and its digest)
            // must be durable before the worker is told "accepted" and
            // stops heartbeating — otherwise a crash here would lose the
            // shard with nobody left responsible for it.
            let rec = CoordRecord::Done {
                state,
                worker: up.worker.clone(),
                epoch: up.epoch,
                digest,
                outcome: outcome.clone(),
            };
            if wal_append(&mut s.durability, &rec) {
                if let Some(shard) = s.shards.iter_mut().find(|sh| sh.state == state) {
                    shard.status = ShardStatus::Done { outcome };
                    accepted = true;
                }
            }
        }
        sift_obs::counter(
            "sift_cluster_result_total",
            &[("accepted", bool_label(accepted))],
        )
        .inc();
        let done = s
            .shards
            .iter()
            .filter(|sh| matches!(sh.status, ShardStatus::Done { .. }))
            .count();
        sift_obs::gauge("sift_cluster_shards_done", &[])
            .set(i64::try_from(done).unwrap_or(i64::MAX));
        maybe_checkpoint(&mut s);
        ResultReply { accepted }
    }

    /// A progress snapshot (the `GET /cluster/status` payload).
    pub fn status(&self) -> StatusReply {
        let now = self.now_ms();
        let mut s = self.inner.lock();
        self.expire(&mut s, now);
        let mut reply = StatusReply {
            total: s.shards.len(),
            rerouted: s.rerouted,
            epoch: s.next_epoch,
            recoveries: s.recoveries,
            workers: s.workers.clone(),
            dead: s.dead.iter().cloned().collect(),
            ..StatusReply::default()
        };
        for sh in &s.shards {
            reply.shard_attempts.push((sh.state, sh.grants));
            match &sh.status {
                ShardStatus::Done { .. } => {
                    reply.done += 1;
                    reply.done_states.push(sh.state);
                }
                ShardStatus::Failed => reply.failed += 1,
                ShardStatus::Leased { worker, .. } => {
                    reply.leases.push((worker.clone(), sh.state));
                }
                ShardStatus::Pending => {}
            }
        }
        reply
    }

    /// Blocks until every shard has an accepted outcome, then assembles
    /// the final [`StudyResult`] exactly as single-process
    /// [`sift_core::run_study`] would. The wait loop also drives lease
    /// expiry, so worker death is detected even with no surviving
    /// protocol traffic.
    pub fn wait_result(&self, timeout: Duration) -> Result<StudyResult, ClusterError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let now = self.now_ms();
                let mut s = self.inner.lock();
                self.expire(&mut s, now);
                if let Some(sh) = s
                    .shards
                    .iter()
                    .find(|sh| matches!(sh.status, ShardStatus::Failed))
                {
                    return Err(ClusterError::ShardFailed {
                        state: sh.state,
                        attempts: sh.attempts,
                    });
                }
                let outcomes: Vec<RegionOutcome> = s
                    .shards
                    .iter()
                    .filter_map(|sh| match &sh.status {
                        ShardStatus::Done { outcome } => Some((**outcome).clone()),
                        _ => None,
                    })
                    .collect();
                if outcomes.len() == s.shards.len() {
                    drop(s);
                    let mut result = assemble_study(&self.params, outcomes, false);
                    result.stats.telemetry = sift_obs::TelemetrySnapshot::since(&self.baseline);
                    sift_obs::event(
                        sift_obs::Level::Info,
                        "cluster.coord",
                        "sharded study assembled",
                        &[(
                            "frames_requested",
                            serde_json::Value::UInt(result.stats.frames_requested),
                        )],
                    );
                    return Ok(result);
                }
                let done = outcomes.len();
                if Instant::now() >= deadline {
                    return Err(ClusterError::Timeout {
                        done,
                        total: s.shards.len(),
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(self.config.poll_ms.clamp(1, 100)));
        }
    }
}

fn bool_label(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// The coordinator's HTTP surface: the five `/cluster/*` routes plus the
/// standard observability mounts. Serve it with [`sift_net::Server`].
pub fn cluster_router(coord: &Arc<Coordinator>) -> Router {
    let join_c = Arc::clone(coord);
    let lease_c = Arc::clone(coord);
    let hb_c = Arc::clone(coord);
    let result_c = Arc::clone(coord);
    let status_c = Arc::clone(coord);

    sift_net::mount_observability(Router::new())
        .route(Method::Post, "/cluster/join", move |req: &Request| {
            sift_obs::counter("sift_cluster_join_total", &[]).inc();
            match req.json::<JoinRequest>() {
                Ok(body) => json_reply(&join_c.join(&body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad join: {e}")),
            }
        })
        .route(
            Method::Post,
            "/cluster/lease",
            move |req: &Request| match req.json::<LeaseRequest>() {
                Ok(body) => {
                    let (reply, retry_after) = lease_c.lease(&body);
                    let mut resp = json_reply(&reply);
                    if let Some(secs) = retry_after {
                        resp.headers.set("retry-after", secs.to_string());
                    }
                    resp
                }
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad lease: {e}")),
            },
        )
        .route(
            Method::Post,
            "/cluster/heartbeat",
            move |req: &Request| match req.json::<HeartbeatRequest>() {
                Ok(body) => json_reply(&hb_c.heartbeat(&body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad heartbeat: {e}")),
            },
        )
        .route(
            Method::Post,
            "/cluster/result",
            move |req: &Request| match req.json::<ResultUpload>() {
                Ok(body) => json_reply(&result_c.result(body)),
                Err(e) => Response::text(StatusCode::BAD_REQUEST, format!("bad result: {e}")),
            },
        )
        .route(Method::Get, "/cluster/status", move |_req: &Request| {
            sift_obs::counter("sift_cluster_status_total", &[]).inc();
            json_reply(&status_c.status())
        })
}

fn json_reply<T: serde::Serialize>(value: &T) -> Response {
    Response::json(value)
        .unwrap_or_else(|e| Response::text(StatusCode::INTERNAL_SERVER_ERROR, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_journal::testutil::scratch_dir;
    use sift_simtime::{Hour, HourRange};

    fn params(regions: Vec<State>) -> StudyParams {
        StudyParams {
            range: HourRange::new(Hour(0), Hour(336)),
            regions,
            ..StudyParams::default()
        }
    }

    fn config() -> ClusterConfig {
        ClusterConfig {
            heartbeat_interval: Duration::from_millis(25),
            miss_threshold: 2,
            poll_ms: 5,
            attempt_budget: 3,
            vnodes: 40,
            checkpoint_every: 8,
        }
    }

    fn lease(c: &Coordinator, worker: &str) -> LeaseReply {
        c.lease(&LeaseRequest {
            worker: worker.into(),
        })
        .0
    }

    #[test]
    fn reroute_reason_labels_cover_every_variant() {
        let labels: Vec<_> = RerouteReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["heartbeat_missed", "worker_left"]);
    }

    #[test]
    fn heartbeat_timeout_derives_from_interval_and_threshold() {
        let cfg = config();
        assert_eq!(cfg.heartbeat_timeout(), Duration::from_millis(50));
        let degenerate = ClusterConfig {
            miss_threshold: 0,
            ..config()
        };
        assert_eq!(
            degenerate.heartbeat_timeout(),
            degenerate.heartbeat_interval,
            "a zero threshold still tolerates one full interval"
        );
    }

    #[test]
    fn leases_follow_the_ring_and_epochs_are_unique() {
        let c = Coordinator::new(params(vec![State::CA, State::TX, State::NY]), config());
        let mut epochs = Vec::new();
        // One worker owns everything on a single-worker ring.
        for _ in 0..3 {
            match lease(&c, "w0") {
                LeaseReply::Job(job) => epochs.push(job.epoch),
                other => panic!("expected a job, got {other:?}"),
            }
        }
        assert!(matches!(lease(&c, "w0"), LeaseReply::Wait { .. }));
        epochs.sort_unstable();
        epochs.dedup();
        assert_eq!(epochs.len(), 3, "every lease gets a fresh epoch");
    }

    #[test]
    fn missed_heartbeats_reroute_to_survivors_with_fencing() {
        let c = Coordinator::new(params(vec![State::CA]), config());
        c.join(&JoinRequest {
            worker: "w0".into(),
        });
        c.join(&JoinRequest {
            worker: "w1".into(),
        });
        // Whichever worker the ring prefers takes the shard.
        let (holder, other, job) = match lease(&c, "w0") {
            LeaseReply::Job(job) => ("w0", "w1", job),
            _ => match lease(&c, "w1") {
                LeaseReply::Job(job) => ("w1", "w0", job),
                reply => panic!("neither worker got the shard, got {reply:?}"),
            },
        };
        // Heartbeats renew the lease...
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            c.heartbeat(&HeartbeatRequest {
                worker: holder.into(),
                state: job.state,
                epoch: job.epoch,
                releasing: false,
            })
            .keep
        );
        // ...until the holder goes silent past the timeout.
        std::thread::sleep(Duration::from_millis(80));
        let status = c.status();
        assert_eq!(status.rerouted, 1, "{status:?}");
        assert_eq!(status.dead, vec![holder.to_string()]);
        // The survivor now owns the shard (ring excludes the dead).
        let rejob = match lease(&c, other) {
            LeaseReply::Job(job) => job,
            other => panic!("expected reroute job, got {other:?}"),
        };
        assert_eq!(rejob.state, job.state);
        assert!(rejob.epoch > job.epoch, "reroute issues a fresh epoch");
        // The dead worker is benched and its stale epoch fenced off.
        assert!(matches!(lease(&c, holder), LeaseReply::Wait { .. }));
        assert!(
            !c.heartbeat(&HeartbeatRequest {
                worker: holder.into(),
                state: job.state,
                epoch: job.epoch,
                releasing: false,
            })
            .keep
        );
    }

    #[test]
    fn attempt_budget_fails_the_shard_eventually() {
        let mut cfg = config();
        cfg.heartbeat_interval = Duration::from_millis(5);
        cfg.attempt_budget = 2;
        let c = Coordinator::new(params(vec![State::CA]), cfg);
        for worker in ["w0", "w1", "w2"] {
            if let LeaseReply::Job(_) = lease(&c, worker) {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        let err = c.wait_result(Duration::from_millis(200)).unwrap_err();
        assert!(
            matches!(
                err,
                ClusterError::ShardFailed {
                    state: State::CA,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn voluntary_release_reroutes_without_benching() {
        let c = Coordinator::new(params(vec![State::CA]), config());
        let job = match lease(&c, "w0") {
            LeaseReply::Job(job) => job,
            other => panic!("expected a job, got {other:?}"),
        };
        let reply = c.heartbeat(&HeartbeatRequest {
            worker: "w0".into(),
            state: job.state,
            epoch: job.epoch,
            releasing: true,
        });
        assert!(!reply.keep);
        let status = c.status();
        assert_eq!(status.rerouted, 1);
        assert!(status.dead.is_empty(), "a graceful release is not a death");
        // The same worker may take the shard right back.
        assert!(matches!(lease(&c, "w0"), LeaseReply::Job(_)));
    }

    #[test]
    fn benched_worker_and_empty_table_get_a_retry_after_hint() {
        let c = Coordinator::new(params(vec![State::CA]), config());
        let job = match lease(&c, "w0") {
            LeaseReply::Job(job) => job,
            other => panic!("expected a job, got {other:?}"),
        };
        // Another worker with nothing pending: long-poll hint.
        let (reply, hint) = c.lease(&LeaseRequest {
            worker: "w1".into(),
        });
        assert!(matches!(reply, LeaseReply::Wait { .. }));
        assert_eq!(hint, Some(1), "no pending shard anywhere");
        // Bench w0 by letting its lease expire.
        std::thread::sleep(Duration::from_millis(80));
        let (reply, hint) = c.lease(&LeaseRequest {
            worker: "w0".into(),
        });
        assert!(matches!(reply, LeaseReply::Wait { .. }));
        assert_eq!(hint, Some(1), "benched workers are told to back off");
        let _ = job;
        // The survivor's re-lease carries no hint: it got a job.
        let (reply, hint) = c.lease(&LeaseRequest {
            worker: "w1".into(),
        });
        assert!(matches!(reply, LeaseReply::Job(_)));
        assert_eq!(hint, None);
    }

    #[test]
    fn status_reports_epoch_recoveries_and_per_shard_grants() {
        let c = Coordinator::new(params(vec![State::CA, State::TX]), config());
        let _ = lease(&c, "w0");
        let _ = lease(&c, "w0");
        let status = c.status();
        assert_eq!(status.epoch, 2, "two grants consumed two epochs");
        assert_eq!(status.recoveries, 0);
        assert_eq!(
            status.shard_attempts,
            vec![(State::CA, 1), (State::TX, 1)],
            "{status:?}"
        );
        assert!(status.done_states.is_empty());
    }

    #[test]
    fn durable_coordinator_recovers_epochs_and_benchings_across_a_crash() {
        let dir = scratch_dir("coord_durable_crash");
        let p = params(vec![State::CA, State::TX]);
        let first_epochs: Vec<u64> = {
            let (c, rec) = Coordinator::durable(p.clone(), config(), &dir).expect("fresh durable");
            assert!(!rec.had_state);
            let mut epochs = Vec::new();
            for _ in 0..2 {
                if let LeaseReply::Job(job) = lease(&c, "w0") {
                    epochs.push(job.epoch);
                }
            }
            assert_eq!(epochs.len(), 2);
            epochs
            // `c` dropped here with leases in flight — the crash.
        };
        let (c, rec) = Coordinator::durable(p, config(), &dir).expect("recovered durable");
        assert!(rec.had_state);
        let status = c.status();
        assert_eq!(status.recoveries, 1);
        assert!(
            status.epoch > *first_epochs.iter().max().expect("epochs"),
            "the fence must clear every pre-crash grant: {status:?}"
        );
        assert!(status.leases.is_empty(), "leases do not survive a restart");
        assert_eq!(status.done, 0);
        // Old-incarnation epochs are fenced: a zombie heartbeat is refused.
        assert!(
            !c.heartbeat(&HeartbeatRequest {
                worker: "w0".into(),
                state: State::CA,
                epoch: first_epochs[0],
                releasing: false,
            })
            .keep
        );
        // And fresh grants are strictly newer.
        if let LeaseReply::Job(job) = lease(&c, "w0") {
            assert!(job.epoch > first_epochs[1]);
        } else {
            panic!("recovered coordinator must lease pending shards");
        }
    }
}

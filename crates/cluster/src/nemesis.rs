//! The nemesis harness: a full sharded study run under a seeded chaos
//! schedule.
//!
//! A [`NemesisCluster`] owns every process of one sharded run — the
//! durable coordinator, its HTTP server, and N worker threads — plus the
//! cluster-shared [`sift_net::NemesisState`] link-fault table. Driving a
//! [`sift_net::NemesisPlan`] through [`NemesisCluster::run`] executes the
//! schedule's two halves in one place:
//!
//! * **network operations** (partitions, heartbeat loss, slow links) are
//!   installed into the shared table by the [`sift_net::NemesisDriver`]
//!   and take effect inside every nemesis-aware server, and
//! * **process operations** (kill/restart the coordinator, kill a
//!   worker) are handed back to the harness, which actually drops the
//!   coordinator's in-memory state and reboots it from its journal via
//!   [`Coordinator::durable`].
//!
//! Workers reach the coordinator through a harness-owned TCP relay with
//! a stable address: killing the coordinator unplugs the relay's
//! backend (connections are refused, exactly like a dead process), and
//! the restarted incarnation — listening on a fresh ephemeral port — is
//! plugged back in. This sidesteps `TIME_WAIT` rebind flakiness while
//! keeping the worker-visible behaviour of a crash: refused
//! connections, then a coordinator that answers again but fences every
//! pre-crash epoch.
//!
//! The run's acceptance bar is the same as the clean sharded path: the
//! final [`StudyResult`] must be bit-identical to an uninterrupted run,
//! with already-accepted shards never re-crawled.

use crate::coord::{cluster_router, ClusterConfig, ClusterError, Coordinator};
use crate::proto::StatusReply;
use crate::worker::{spawn_worker, WorkerConfig, WorkerHandle, WorkerSummary};
use parking_lot::Mutex;
use sift_core::{StudyParams, StudyResult};
use sift_net::{NemesisDriver, NemesisOp, NemesisPlan, NemesisState, Server, ServerHandle};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The endpoint name the coordinator's server registers under in the
/// nemesis link-fault table. Plans that partition a worker from the
/// coordinator name this side of the link.
pub const COORDINATOR: &str = "coordinator";

/// How a nemesis run can fail beyond the ordinary cluster outcomes.
#[derive(Debug)]
pub enum NemesisError {
    /// The underlying sharded run failed (timeout or a failed shard).
    Cluster(ClusterError),
    /// A process-level operation could not be executed (e.g. the
    /// coordinator restart could not reopen its journal).
    Io(io::Error),
}

impl std::fmt::Display for NemesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NemesisError::Cluster(e) => write!(f, "nemesis run failed: {e}"),
            NemesisError::Io(e) => write!(f, "nemesis process op failed: {e}"),
        }
    }
}

impl std::error::Error for NemesisError {}

impl From<ClusterError> for NemesisError {
    fn from(e: ClusterError) -> NemesisError {
        NemesisError::Cluster(e)
    }
}

impl From<io::Error> for NemesisError {
    fn from(e: io::Error) -> NemesisError {
        NemesisError::Io(e)
    }
}

/// What a completed nemesis run looked like, for audits.
#[derive(Debug)]
pub struct NemesisReport {
    /// The converged study result (the thing baseline equality checks).
    pub result: StudyResult,
    /// The coordinator's final status snapshot.
    pub status: StatusReply,
    /// The status captured immediately before the (first) coordinator
    /// kill — the re-crawl audit compares per-shard grant counts against
    /// it: a shard done before the kill must show no further grants.
    pub pre_kill_status: Option<StatusReply>,
    /// Coordinator kills executed.
    pub coordinator_kills: u32,
    /// Coordinator restarts executed.
    pub coordinator_restarts: u32,
    /// Workers killed by the schedule, in firing order.
    pub workers_killed: Vec<String>,
    /// Requests dropped by link rules (request or reply side).
    pub link_dropped: u64,
    /// Requests delayed by link rules.
    pub link_delayed: u64,
    /// Whether every scheduled step fired before the run converged.
    pub plan_exhausted: bool,
    /// Per-worker exit summaries, in spawn order.
    pub worker_summaries: Vec<WorkerSummary>,
}

/// One sharded study's processes under nemesis control.
pub struct NemesisCluster {
    params: StudyParams,
    config: ClusterConfig,
    dir: PathBuf,
    nemesis: Arc<NemesisState>,
    relay: Relay,
    coord: Option<(Arc<Coordinator>, ServerHandle)>,
    workers: Vec<WorkerHandle>,
}

impl NemesisCluster {
    /// Boots a durable coordinator under `dir`, its HTTP server (nemesis
    /// aware, named [`COORDINATOR`]), the stable-address relay, and one
    /// worker per entry of `worker_ids`, each crawling against the
    /// trends service at `trends_addr`.
    pub fn start(
        params: StudyParams,
        config: ClusterConfig,
        trends_addr: SocketAddr,
        dir: PathBuf,
        worker_ids: &[String],
        worker_config: &WorkerConfig,
    ) -> io::Result<NemesisCluster> {
        let nemesis = Arc::new(NemesisState::new());
        let relay = Relay::start()?;
        let (coord, server) = boot_coordinator(&params, config, &dir, &nemesis)?;
        relay.set_backend(Some(server.addr()));
        let workers = worker_ids
            .iter()
            .map(|id| {
                spawn_worker(
                    id.clone(),
                    relay.addr(),
                    trends_addr,
                    params.clone(),
                    worker_config.clone(),
                )
            })
            .collect();
        Ok(NemesisCluster {
            params,
            config,
            dir,
            nemesis,
            relay,
            coord: Some((coord, server)),
            workers,
        })
    }

    /// The shared link-fault table (for installing extra rules or
    /// reading drop/delay totals mid-run).
    pub fn nemesis_state(&self) -> &Arc<NemesisState> {
        &self.nemesis
    }

    /// The stable coordinator address workers dial (the relay front).
    pub fn coord_addr(&self) -> SocketAddr {
        self.relay.addr()
    }

    /// Drives `plan` against the live cluster until the study converges
    /// or `timeout` passes, executing process operations (coordinator
    /// kill/restart, worker kills) as they come due. Consumes the
    /// cluster: workers are joined and every server shut down on the way
    /// out, success or not.
    pub fn run(
        mut self,
        plan: NemesisPlan,
        timeout: Duration,
    ) -> Result<NemesisReport, NemesisError> {
        let deadline = Instant::now() + timeout;
        let mut driver = NemesisDriver::new(plan, Arc::clone(&self.nemesis));
        let mut pre_kill_status: Option<StatusReply> = None;
        let mut kills = 0u32;
        let mut restarts = 0u32;
        let mut workers_killed: Vec<String> = Vec::new();

        let result = loop {
            for op in driver.due() {
                match op {
                    NemesisOp::KillCoordinator => {
                        if let Some((coord, server)) = self.coord.take() {
                            // The audit baseline: everything done before
                            // this instant must never be granted again.
                            if pre_kill_status.is_none() {
                                pre_kill_status = Some(coord.status());
                            }
                            kills += 1;
                            // Unplug first so new dials are refused like
                            // a dead process, then drop the in-memory
                            // state. Only the journal survives.
                            self.relay.set_backend(None);
                            server.shutdown();
                            drop(coord);
                        }
                    }
                    NemesisOp::RestartCoordinator if self.coord.is_none() => {
                        let (coord, server) = match boot_coordinator(
                            &self.params,
                            self.config,
                            &self.dir,
                            &self.nemesis,
                        ) {
                            Ok(up) => up,
                            Err(e) => {
                                self.teardown();
                                return Err(NemesisError::Io(e));
                            }
                        };
                        restarts += 1;
                        self.relay.set_backend(Some(server.addr()));
                        self.coord = Some((coord, server));
                    }
                    NemesisOp::KillWorker { worker } => {
                        if let Some(w) = self.workers.iter().find(|w| w.id() == worker) {
                            w.kill();
                            workers_killed.push(worker);
                        }
                    }
                    // Network operations were already installed into the
                    // shared table by the driver.
                    _ => {}
                }
            }
            if let Some((coord, _)) = &self.coord {
                // Short slices keep the schedule responsive: the
                // coordinator Arc may be swapped out by the very next
                // fired step.
                match coord.wait_result(Duration::from_millis(30)) {
                    Ok(result) => break result,
                    Err(ClusterError::Timeout { .. }) => {}
                    Err(e) => {
                        self.teardown();
                        return Err(NemesisError::Cluster(e));
                    }
                }
            } else {
                std::thread::sleep(Duration::from_millis(10));
            }
            if Instant::now() >= deadline {
                let (done, total) = match &self.coord {
                    Some((coord, _)) => {
                        let s = coord.status();
                        (s.done, s.total)
                    }
                    None => (0, self.params.regions.len()),
                };
                self.teardown();
                return Err(NemesisError::Cluster(ClusterError::Timeout { done, total }));
            }
        };

        let status = match &self.coord {
            Some((coord, _)) => coord.status(),
            None => StatusReply::default(),
        };
        let plan_exhausted = driver.finished();
        let worker_summaries = self.teardown();
        Ok(NemesisReport {
            result,
            status,
            pre_kill_status,
            coordinator_kills: kills,
            coordinator_restarts: restarts,
            workers_killed,
            link_dropped: self.nemesis.dropped_total(),
            link_delayed: self.nemesis.delayed_total(),
            plan_exhausted,
            worker_summaries,
        })
    }

    /// Stops every process: workers are asked to stop (killed ones are
    /// already gone), joined, and the coordinator server shut down.
    fn teardown(&mut self) -> Vec<WorkerSummary> {
        for w in &self.workers {
            w.stop();
        }
        let summaries = self.workers.drain(..).map(WorkerHandle::join).collect();
        if let Some((_, server)) = self.coord.take() {
            server.shutdown();
        }
        self.relay.stop();
        summaries
    }
}

fn boot_coordinator(
    params: &StudyParams,
    config: ClusterConfig,
    dir: &Path,
    nemesis: &Arc<NemesisState>,
) -> io::Result<(Arc<Coordinator>, ServerHandle)> {
    let (coord, _recovery) = Coordinator::durable(params.clone(), config, dir)?;
    let coord = Arc::new(coord);
    let server = Server::new(cluster_router(&coord))
        .with_workers(8)
        .with_nemesis(Arc::clone(nemesis), COORDINATOR)
        .bind("127.0.0.1:0")?;
    Ok((coord, server))
}

/// A stable-address TCP relay in front of the (restartable) coordinator.
///
/// The front listener never closes, so workers keep one coordinator
/// address for the whole run; the backend is swapped as coordinator
/// incarnations come and go. With no backend plugged in, accepted
/// connections are dropped on the floor — the worker-visible shape of a
/// dead process.
struct Relay {
    addr: SocketAddr,
    backend: Arc<Mutex<Option<SocketAddr>>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Relay {
    fn start() -> io::Result<Relay> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let backend: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let backend = Arc::clone(&backend);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &backend, &stop))
        };
        Ok(Relay {
            addr,
            backend,
            stop,
            thread: Some(thread),
        })
    }

    fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn set_backend(&self, addr: Option<SocketAddr>) {
        *self.backend.lock() = addr;
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            // sift-lint: allow(swallowed-result) — a panicked accept loop cannot forward anything anyway; teardown proceeds regardless
            let _ = thread.join();
        }
    }
}

impl Drop for Relay {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, backend: &Mutex<Option<SocketAddr>>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Some(target) = *backend.lock() else {
                    // No coordinator: the dial is accepted by the kernel
                    // but immediately closed — the client sees the same
                    // dead-process reset a real crash produces.
                    continue;
                };
                match TcpStream::connect_timeout(&target, Duration::from_millis(500)) {
                    Ok(upstream) => pump_pair(client, upstream),
                    Err(_) => {
                        // Backend just died under us: drop the client.
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Shuttles bytes both ways between `client` and `upstream` on two
/// detached threads; each direction propagates EOF as a write shutdown
/// so connection-close semantics survive the hop.
fn pump_pair(client: TcpStream, upstream: TcpStream) {
    // sift-lint: allow(swallowed-result) — nodelay is best-effort; the relay still forwards without it
    let _ = client.set_nodelay(true);
    // sift-lint: allow(swallowed-result) — nodelay is best-effort; the relay still forwards without it
    let _ = upstream.set_nodelay(true);
    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
        return; // both halves close on drop; the client retries
    };
    pump_one_way(client_r, upstream);
    pump_one_way(upstream_r, client);
}

fn pump_one_way(mut from: TcpStream, mut to: TcpStream) {
    std::thread::spawn(move || {
        // sift-lint: allow(swallowed-result) — a failed copy is a closed connection; the shutdown below tells the peer either way
        let _ = io::copy(&mut from, &mut to);
        // sift-lint: allow(swallowed-result) — the peer may already be gone, which is the outcome shutdown was after
        let _ = to.shutdown(Shutdown::Write);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// One-shot echo server: accepts a single connection, echoes until
    /// EOF, exits.
    fn echo_once() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let thread = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 256];
                while let Ok(n) = conn.read(&mut buf) {
                    if n == 0 || conn.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, thread)
    }

    #[test]
    fn relay_forwards_bytes_when_a_backend_is_plugged_in() {
        let (echo_addr, echo) = echo_once();
        let mut relay = Relay::start().expect("start relay");
        relay.set_backend(Some(echo_addr));
        let mut conn = TcpStream::connect(relay.addr()).expect("dial relay");
        conn.write_all(b"ping").expect("write");
        conn.shutdown(Shutdown::Write).expect("half-close");
        let mut got = Vec::new();
        conn.read_to_end(&mut got).expect("read echo");
        assert_eq!(got, b"ping");
        relay.stop();
        echo.join().expect("echo thread");
    }

    #[test]
    fn relay_drops_connections_while_the_backend_is_unplugged() {
        let mut relay = Relay::start().expect("start relay");
        // Dialing succeeds (the kernel accepts), but the connection is
        // promptly closed with nothing read — the dead-process shape.
        let mut conn = TcpStream::connect(relay.addr()).expect("dial relay");
        conn.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut got = Vec::new();
        // A clean EOF with no bytes or a reset are both the dead shape.
        if let Ok(n) = conn.read_to_end(&mut got) {
            assert_eq!(n, 0, "an unplugged relay must return no bytes");
        }
        relay.stop();
    }

    #[test]
    fn relay_retargets_to_a_new_backend_after_a_swap() {
        let (first_addr, first) = echo_once();
        let mut relay = Relay::start().expect("start relay");
        relay.set_backend(Some(first_addr));
        {
            let mut conn = TcpStream::connect(relay.addr()).expect("dial relay");
            conn.write_all(b"one").expect("write");
            conn.shutdown(Shutdown::Write).expect("half-close");
            let mut got = Vec::new();
            conn.read_to_end(&mut got).expect("read");
            assert_eq!(got, b"one");
        }
        first.join().expect("first echo");
        // Swap in a fresh incarnation on a different port.
        let (second_addr, second) = echo_once();
        relay.set_backend(Some(second_addr));
        let mut conn = TcpStream::connect(relay.addr()).expect("redial relay");
        conn.write_all(b"two").expect("write");
        conn.shutdown(Shutdown::Write).expect("half-close");
        let mut got = Vec::new();
        conn.read_to_end(&mut got).expect("read");
        assert_eq!(got, b"two");
        relay.stop();
        second.join().expect("second echo");
    }
}

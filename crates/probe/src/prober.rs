//! The round-based probing engine and its fast closed form.

use crate::address::{AddressPopulation, BlockProfile};
use crate::dataset::{OutageRecord, ProbeDataset};
use crate::infer::{BlockInference, InferenceParams};
use crate::vantage::{vantage_points, VantagePoint};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sift_geo::GeoDb;
use sift_simtime::HourRange;
use sift_trends::events::OutageEvent;
use sift_trends::Scenario;

/// Probing configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Seed of the probing randomness.
    pub seed: u64,
    /// Addresses probed per block per round.
    pub probes_per_round: u32,
    /// Round length in minutes (the ANT dataset: eleven-minute slots).
    pub round_minutes: u32,
    /// Response-rate multiplier while a block's network is down. Not
    /// exactly zero: some CPE answers from battery or partial paths.
    pub down_response_factor: f64,
    /// Inference thresholds.
    pub infer: InferenceParams,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            seed: 0xA47,
            probes_per_round: 16,
            round_minutes: 11,
            down_response_factor: 0.01,
            infer: InferenceParams::default(),
        }
    }
}

/// The probing engine.
pub struct Prober<'a> {
    config: ProbeConfig,
    population: &'a AddressPopulation,
    geodb: &'a GeoDb,
}

impl<'a> Prober<'a> {
    /// A prober over a population with a geolocation database.
    pub fn new(config: ProbeConfig, population: &'a AddressPopulation, geodb: &'a GeoDb) -> Self {
        Prober {
            config,
            population,
            geodb,
        }
    }

    /// Deterministically decides whether a block participates in an
    /// event: a fraction `intensity` of the state's blocks goes down.
    fn block_affected(
        seed: u64,
        block: &BlockProfile,
        event: &OutageEvent,
        intensity: f64,
    ) -> bool {
        let h = mix(seed ^ u64::from(block.prefix.0) ^ (u64::from(event.id) << 32));
        (h >> 11) as f64 / (1u64 << 53) as f64 <= intensity
    }

    /// Events that can take this block down, with their per-block verdict
    /// and hour windows.
    fn down_windows(&self, scenario: &Scenario, block: &BlockProfile) -> Vec<HourRange> {
        let mut out = Vec::new();
        for e in &scenario.events {
            if !e.cause.affects_reachability() {
                continue;
            }
            for (i, (s, intensity)) in e.states.iter().enumerate() {
                if *s == block.state && Self::block_affected(self.config.seed, block, e, *intensity)
                {
                    out.push(e.window_in(i));
                }
            }
        }
        out
    }

    /// Runs the full round-by-round simulation over `window`.
    ///
    /// Exact but O(blocks × rounds); use [`Prober::synthesize`] for
    /// multi-month windows.
    pub fn run(&self, scenario: &Scenario, window: HourRange) -> ProbeDataset {
        let vps = vantage_points();
        let rounds = (window.len() * 60 / i64::from(self.config.round_minutes)) as u64;
        let mut records = Vec::new();

        for block in self.population.wired_blocks() {
            let down_windows = self.down_windows(scenario, block);
            let mut rng = ChaCha8Rng::seed_from_u64(
                self.config.seed ^ u64::from(block.prefix.0).wrapping_mul(0x9e37_79b9),
            );
            let mut inference = BlockInference::new(self.config.infer);

            for round in 0..rounds {
                let minute =
                    window.start.0 * 60 + round as i64 * i64::from(self.config.round_minutes);
                let hour = sift_simtime::Hour(minute.div_euclid(60));
                let down = down_windows.iter().any(|w| w.contains(hour));
                let vp: &VantagePoint = &vps[(round as usize) % vps.len()];
                let rate = block.response_rate
                    * (1.0 - vp.path_loss)
                    * if down {
                        self.config.down_response_factor
                    } else {
                        1.0
                    };
                let mut responses = 0u64;
                for _ in 0..self.config.probes_per_round {
                    if rng.gen::<f64>() < rate {
                        responses += 1;
                    }
                }
                inference.observe(responses);
            }
            inference.finish();

            let located = self
                .geodb
                .locate(block.prefix)
                // sift-lint: allow(no-panic) — the geo db is built from the same plan as the population
                .expect("population prefixes are in the plan");
            for (start_round, end_round) in &inference.outages {
                let start_minute = window.start.0 * 60
                    + *start_round as i64 * i64::from(self.config.round_minutes);
                let duration = u32::try_from(end_round - start_round).unwrap_or(u32::MAX)
                    * self.config.round_minutes;
                records.push(OutageRecord {
                    prefix: block.prefix,
                    located_state: located,
                    start_minute,
                    duration_minutes: duration,
                    cause_event: None,
                });
            }
        }
        ProbeDataset::new(records)
    }

    /// Event-driven closed form of [`Prober::run`] for long windows.
    ///
    /// Instead of simulating every round, it walks the ground-truth
    /// events: each probe-visible event knocks out its deterministic
    /// subset of blocks, which (given the healthy response rates and
    /// inference thresholds) are detected after the expected
    /// `down_rounds` rounds with near-certainty; misses happen for events
    /// shorter than the detection horizon. Statistically equivalent to
    /// the exact engine on the same world — the equivalence is asserted
    /// by an integration test over a short window.
    pub fn synthesize(&self, scenario: &Scenario, window: HourRange) -> ProbeDataset {
        let round_m = i64::from(self.config.round_minutes);
        let horizon_rounds = i64::from(self.config.infer.down_rounds);
        let mut records = Vec::new();

        // Event-major iteration: each probe-visible event only touches the
        // wired blocks of its own regions, so a two-year national world
        // costs Σ(events × state blocks), not blocks × events.
        for e in &scenario.events {
            if !e.cause.affects_reachability() {
                continue;
            }
            for (i, (state, intensity)) in e.states.iter().enumerate() {
                let w = e.window_in(i);
                let Some(overlap) = w.intersect(&window) else {
                    continue;
                };
                for block in self.population.wired_blocks_of(*state) {
                    if !Self::block_affected(self.config.seed, block, e, *intensity) {
                        continue;
                    }
                    let located = self
                        .geodb
                        .locate(block.prefix)
                        // sift-lint: allow(no-panic) — the geo db is built from the same plan as the population
                        .expect("population prefixes are in the plan");
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        self.config.seed
                            ^ u64::from(block.prefix.0).wrapping_mul(0x51F7)
                            ^ (u64::from(e.id) << 17),
                    );
                    let outage_minutes = overlap.len() * 60;
                    // Detection needs the block silent for the full
                    // horizon.
                    let detect_delay_m = horizon_rounds * round_m;
                    if outage_minutes <= detect_delay_m {
                        continue; // too short for the belief to flip
                    }
                    // Phase of the first probing round inside the outage.
                    let phase = rng.gen_range(0..round_m);
                    let start_minute = overlap.start.0 * 60 + phase + detect_delay_m - round_m;
                    let clamped = (outage_minutes - phase - detect_delay_m + round_m).max(round_m);
                    let duration = u32::try_from(clamped).unwrap_or(u32::MAX);
                    records.push(OutageRecord {
                        prefix: block.prefix,
                        located_state: located,
                        start_minute,
                        duration_minutes: duration,
                        cause_event: Some(e.id),
                    });
                }
            }
        }
        ProbeDataset::new(records)
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PopulationMix;
    use rand::SeedableRng;
    use sift_geo::{AddressPlan, State};
    use sift_simtime::Hour;
    use sift_trends::events::{Cause, PowerTrigger};
    use sift_trends::terms::Provider;

    fn world() -> (AddressPopulation, GeoDb, AddressPlan) {
        let plan = AddressPlan::proportional(600);
        let pop = AddressPopulation::new(&plan, PopulationMix::default(), 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let db = GeoDb::from_plan(&plan, 0.0, &mut rng);
        (pop, db, plan)
    }

    fn event(cause: Cause, start: i64, duration: u32, state: State, intensity: f64) -> OutageEvent {
        OutageEvent {
            id: 1,
            name: "e".into(),
            cause,
            start: Hour(start),
            duration_h: duration,
            states: vec![(state, intensity)],
            severity: 9000.0,
            lags_h: vec![0],
        }
    }

    #[test]
    fn network_outage_is_detected() {
        let (pop, db, _plan) = world();
        let scenario = Scenario::single_region(
            State::CA,
            vec![event(
                Cause::Power(PowerTrigger::Storm),
                4,
                6,
                State::CA,
                0.8,
            )],
        );
        let prober = Prober::new(ProbeConfig::default(), &pop, &db);
        let ds = prober.run(&scenario, HourRange::new(Hour(0), Hour(16)));
        assert!(!ds.is_empty(), "outage must appear in the dataset");
        // Records geolocate to CA and overlap the event.
        let window = HourRange::new(Hour(4), Hour(10));
        assert!(ds.match_count(&window, &[State::CA]) > 0);
        // Starts are within the event, allowing the detection horizon.
        for r in &ds.records {
            assert!(r.start_minute >= 4 * 60);
            assert!(r.start_minute < 10 * 60 + 60);
        }
    }

    #[test]
    fn application_outage_is_invisible() {
        let (pop, db, _plan) = world();
        let scenario = Scenario::single_region(
            State::CA,
            vec![event(
                Cause::Application(Provider::Youtube),
                4,
                6,
                State::CA,
                0.9,
            )],
        );
        let prober = Prober::new(ProbeConfig::default(), &pop, &db);
        let ds = prober.run(&scenario, HourRange::new(Hour(0), Hour(16)));
        assert!(
            ds.is_empty(),
            "application outages leave hosts pingable: {ds:?}"
        );
    }

    #[test]
    fn mobile_outage_is_invisible() {
        let (pop, db, _plan) = world();
        let scenario = Scenario::single_region(
            State::CA,
            vec![event(
                Cause::MobileCarrier(Provider::TMobile),
                4,
                6,
                State::CA,
                0.9,
            )],
        );
        let prober = Prober::new(ProbeConfig::default(), &pop, &db);
        let ds = prober.run(&scenario, HourRange::new(Hour(0), Hour(16)));
        assert!(ds.is_empty(), "mobile space answers no probes: {ds:?}");
    }

    #[test]
    fn intensity_scales_affected_blocks() {
        let (pop, db, _plan) = world();
        let prober = Prober::new(ProbeConfig::default(), &pop, &db);
        let count_at = |intensity: f64| {
            let scenario = Scenario::single_region(
                State::CA,
                vec![event(
                    Cause::IspNetwork(Provider::Comcast),
                    4,
                    8,
                    State::CA,
                    intensity,
                )],
            );
            prober
                .run(&scenario, HourRange::new(Hour(0), Hour(16)))
                .len()
        };
        let low = count_at(0.2);
        let high = count_at(0.9);
        assert!(
            high > low * 2,
            "higher intensity must take down more blocks: {low} vs {high}"
        );
    }

    #[test]
    fn synthesize_matches_run_statistically() {
        let (pop, db, _plan) = world();
        let scenario = Scenario::single_region(
            State::CA,
            vec![event(
                Cause::Power(PowerTrigger::Storm),
                4,
                8,
                State::CA,
                0.6,
            )],
        );
        let prober = Prober::new(ProbeConfig::default(), &pop, &db);
        let window = HourRange::new(Hour(0), Hour(20));
        let exact = prober.run(&scenario, window);
        let fast = prober.synthesize(&scenario, window);
        assert!(!exact.is_empty() && !fast.is_empty());
        // Same affected-block universe: counts agree closely (the exact
        // engine can add/miss a couple through probe luck).
        let ratio = fast.len() as f64 / exact.len() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "exact {} vs fast {}",
            exact.len(),
            fast.len()
        );
        // Durations similar in aggregate.
        let mean = |ds: &ProbeDataset| {
            ds.records
                .iter()
                .map(|r| f64::from(r.duration_minutes))
                .sum::<f64>()
                / ds.len() as f64
        };
        let (me, mf) = (mean(&exact), mean(&fast));
        assert!(
            (me - mf).abs() < 90.0,
            "mean durations diverge: exact {me} vs fast {mf}"
        );
    }

    #[test]
    fn geolocation_errors_shift_some_records() {
        let plan = AddressPlan::proportional(600);
        let pop = AddressPopulation::new(&plan, PopulationMix::default(), 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let db = GeoDb::from_plan(&plan, 0.25, &mut rng);
        let scenario = Scenario::single_region(
            State::CA,
            vec![event(
                Cause::Power(PowerTrigger::Storm),
                4,
                8,
                State::CA,
                0.9,
            )],
        );
        let prober = Prober::new(ProbeConfig::default(), &pop, &db);
        let ds = prober.run(&scenario, HourRange::new(Hour(0), Hour(16)));
        let misplaced = ds
            .records
            .iter()
            .filter(|r| r.located_state != State::CA)
            .count();
        assert!(
            misplaced > 0,
            "a lossy geolocation database must misplace some records"
        );
        assert!(misplaced * 2 < ds.len(), "but not most of them");
    }
}

//! SIFT ↔ probing cross-validation (§4.1, §4.2, §6).
//!
//! The paper's qualitative finding: SIFT sees what users feel (including
//! mobile-carrier, CDN/DNS and application failures that stay pingable),
//! while probing confirms network- and power-level outages. This module
//! scores both detectors against ground truth and against each other.

use crate::dataset::ProbeDataset;
use serde::{Deserialize, Serialize};
use sift_core::detect::Spike;
use sift_geo::State;
use sift_simtime::HourRange;
use sift_trends::events::OutageEvent;
use sift_trends::Scenario;

/// Visibility verdict for one ground-truth event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventVisibility {
    /// Event name.
    pub name: String,
    /// Root-cause label (provider or power trigger).
    pub cause: String,
    /// Whether the cause breaks reachability (probing's theoretical
    /// ceiling).
    pub probe_visible_in_principle: bool,
    /// Did SIFT raise a spike in an affected state during the event?
    pub sift_detected: bool,
    /// Does the probing dataset contain matching records?
    pub probe_detected: bool,
}

/// Aggregate cross-validation outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CrossValReport {
    /// Per-event verdicts, in event order.
    pub events: Vec<EventVisibility>,
    /// Events only SIFT saw.
    pub sift_only: usize,
    /// Events only probing saw.
    pub probe_only: usize,
    /// Events both saw.
    pub both: usize,
    /// Events neither saw.
    pub neither: usize,
}

/// Minimum spike magnitude for "SIFT saw it" (keeps texture spikes from
/// trivially matching everything).
const SIFT_MATCH_FLOOR: f64 = 1.0;

/// Slack applied to event windows when matching, in hours.
const MATCH_SLACK_H: i64 = 2;

/// Checks whether SIFT's spikes contain a match for an event.
pub fn sift_sees(spikes: &[Spike], event: &OutageEvent) -> bool {
    event.states.iter().enumerate().any(|(i, (state, _))| {
        let w = event.window_in(i);
        let widened = HourRange::new(w.start - MATCH_SLACK_H, w.end + MATCH_SLACK_H);
        spikes.iter().any(|s| {
            s.state == *state && s.magnitude >= SIFT_MATCH_FLOOR && s.window().overlaps(&widened)
        })
    })
}

/// Checks whether the probing dataset contains a match for an event.
///
/// Routine outages put block records into every sizable state's every
/// day, so "some record overlaps the window" says nothing. Matching
/// requires a **surge**: the number of records starting inside the event
/// window in an affected state must clearly exceed that state's own
/// empirical background rate (`per_state_rate`, records per state-hour).
pub fn probe_sees(dataset: &ProbeDataset, event: &OutageEvent, per_state_rate: &[f64]) -> bool {
    // Ground-truth-tagged datasets (the fast synthesizer) answer exactly:
    // did this event knock out blocks? Untagged datasets fall back to the
    // statistical surge test below.
    if dataset.records.iter().any(|r| r.cause_event.is_some()) {
        let caused: usize = dataset
            .records
            .iter()
            .filter(|r| r.cause_event == Some(event.id))
            .count();
        return caused >= 3;
    }
    (0..event.states.len()).any(|i| {
        let (state, _) = event.states[i];
        let w = event.window_in(i);
        let widened = HourRange::new(w.start - MATCH_SLACK_H, w.end + MATCH_SLACK_H);
        let observed = dataset
            .records
            .iter()
            .filter(|r| r.located_state == state && widened.contains(r.start_hour()))
            .count() as f64;
        let expected =
            per_state_rate.get(state.index()).copied().unwrap_or(0.0) * widened.len() as f64;
        observed >= 3.0_f64.max(3.0 * expected)
    })
}

/// Empirical record rate per state-hour over the dataset's span.
pub fn per_state_rates(dataset: &ProbeDataset) -> Vec<f64> {
    let span_hours = dataset
        .records
        .iter()
        .map(|r| r.hour_window().end.0)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let mut counts = vec![0usize; State::COUNT];
    for r in &dataset.records {
        counts[r.located_state.index()] += 1;
    }
    counts.into_iter().map(|c| c as f64 / span_hours).collect()
}

/// Scores every event of `scenario` at least `min_duration_h` long
/// against both detectors.
pub fn cross_validate(
    scenario: &Scenario,
    spikes: &[Spike],
    dataset: &ProbeDataset,
    min_duration_h: u32,
) -> CrossValReport {
    let mut report = CrossValReport::default();
    let rates = per_state_rates(dataset);
    for e in &scenario.events {
        if e.duration_h < min_duration_h {
            continue;
        }
        let sift_detected = sift_sees(spikes, e);
        let probe_detected = probe_sees(dataset, e, &rates);
        match (sift_detected, probe_detected) {
            (true, true) => report.both += 1,
            (true, false) => report.sift_only += 1,
            (false, true) => report.probe_only += 1,
            (false, false) => report.neither += 1,
        }
        report.events.push(EventVisibility {
            name: e.name.clone(),
            cause: e.cause.label(),
            probe_visible_in_principle: e.cause.affects_reachability(),
            sift_detected,
            probe_detected,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OutageRecord;
    use sift_geo::Prefix24;
    use sift_simtime::Hour;
    use sift_trends::events::{Cause, PowerTrigger};
    use sift_trends::terms::Provider;

    fn event(id: u32, cause: Cause, start: i64, duration: u32) -> OutageEvent {
        OutageEvent {
            id,
            name: format!("event-{id}"),
            cause,
            start: Hour(start),
            duration_h: duration,
            states: vec![(State::TX, 0.5)],
            severity: 9000.0,
            lags_h: vec![0],
        }
    }

    fn spike(start: i64, end: i64, magnitude: f64) -> Spike {
        Spike {
            state: State::TX,
            start: Hour(start),
            peak: Hour(start),
            end: Hour(end),
            magnitude,
        }
    }

    fn record(start_minute: i64, duration_minutes: u32) -> OutageRecord {
        OutageRecord {
            prefix: Prefix24(0),
            located_state: State::TX,
            start_minute,
            duration_minutes,
            cause_event: None,
        }
    }

    /// A surge of records (the matcher requires several simultaneous
    /// block outages, not a lone coincidental record).
    fn surge(start_minute: i64, duration_minutes: u32) -> Vec<OutageRecord> {
        (0..4)
            .map(|i| OutageRecord {
                prefix: Prefix24(i),
                located_state: State::TX,
                start_minute: start_minute + i64::from(i) * 3,
                duration_minutes,
                cause_event: None,
            })
            .collect()
    }

    #[test]
    fn verdict_matrix() {
        let scenario = Scenario::single_region(
            State::TX,
            vec![
                event(0, Cause::Power(PowerTrigger::Storm), 100, 6), // both
                event(1, Cause::MobileCarrier(Provider::TMobile), 300, 6), // sift only
                event(2, Cause::IspNetwork(Provider::Comcast), 500, 6), // probe only
                event(3, Cause::Application(Provider::Youtube), 700, 6), // neither
            ],
        );
        let spikes = vec![spike(100, 107, 40.0), spike(301, 306, 25.0)];
        let mut records = surge(100 * 60 + 30, 300);
        records.extend(surge(500 * 60 + 30, 300));
        // A lone background record elsewhere must not count as a match.
        records.push(record(700 * 60 + 30, 60));
        let dataset = ProbeDataset::new(records);
        let report = cross_validate(&scenario, &spikes, &dataset, 1);
        assert_eq!(report.events.len(), 4);
        assert_eq!(report.both, 1);
        assert_eq!(report.sift_only, 1);
        assert_eq!(report.probe_only, 1);
        assert_eq!(report.neither, 1);
        assert!(report.events[1].sift_detected && !report.events[1].probe_detected);
        assert!(!report.events[1].probe_visible_in_principle);
        assert!(report.events[2].probe_visible_in_principle);
    }

    #[test]
    fn texture_spikes_do_not_match() {
        let scenario = Scenario::single_region(
            State::TX,
            vec![event(0, Cause::IspNetwork(Provider::Comcast), 100, 6)],
        );
        let weak = vec![spike(100, 103, 0.4)]; // below the match floor
        let report = cross_validate(&scenario, &weak, &ProbeDataset::default(), 1);
        assert!(!report.events[0].sift_detected);
    }

    #[test]
    fn min_duration_filters_events() {
        let scenario = Scenario::single_region(
            State::TX,
            vec![
                event(0, Cause::IspNetwork(Provider::Comcast), 100, 2),
                event(1, Cause::IspNetwork(Provider::Comcast), 300, 12),
            ],
        );
        let report = cross_validate(&scenario, &[], &ProbeDataset::default(), 5);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].name, "event-1");
    }

    #[test]
    fn wrong_state_spike_does_not_match() {
        let e = event(0, Cause::IspNetwork(Provider::Comcast), 100, 6);
        let wrong = Spike {
            state: State::CA,
            ..spike(100, 107, 40.0)
        };
        assert!(!sift_sees(&[wrong], &e));
        assert!(sift_sees(&[spike(100, 107, 40.0)], &e));
    }
}

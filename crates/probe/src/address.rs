//! The probeable address population.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sift_geo::{AddressPlan, Prefix24, State};

/// What kind of network a /24 block belongs to, which decides whether
/// probing can see it at all.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BlockKind {
    /// Wired broadband / enterprise space: answers probes.
    Wired,
    /// Mobile carrier space: never answers probes ("that could be due to
    /// mobile nodes not responding to probes and escaping the ANT's
    /// detection methodology", §4.1).
    Mobile,
    /// Firewalled / dark space: never answers probes.
    Firewalled,
}

/// Per-block probing profile.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BlockProfile {
    /// The block.
    pub prefix: Prefix24,
    /// True region (ground truth; the dataset only sees geolocations).
    pub state: State,
    /// Network kind.
    pub kind: BlockKind,
    /// Probability that a probe to this block is answered when the block
    /// is healthy (zero for non-wired blocks).
    pub response_rate: f64,
}

/// Mix of block kinds in the population.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PopulationMix {
    /// Fraction of blocks that are wired (probe-responsive).
    pub wired: f64,
    /// Fraction that are mobile.
    pub mobile: f64,
    // Remainder is firewalled.
}

impl Default for PopulationMix {
    fn default() -> Self {
        PopulationMix {
            wired: 0.45,
            mobile: 0.30,
        }
    }
}

/// The full address population: every allocated block with its profile.
#[derive(Clone, Debug)]
pub struct AddressPopulation {
    blocks: Vec<BlockProfile>,
    /// Indices of wired blocks per region (probing and the fast dataset
    /// synthesis iterate event-major, by state).
    wired_by_state: Vec<Vec<u32>>,
}

impl AddressPopulation {
    /// Instantiates profiles over an address plan.
    pub fn new(plan: &AddressPlan, mix: PopulationMix, seed: u64) -> Self {
        assert!(mix.wired + mix.mobile <= 1.0, "kind fractions exceed 1");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let blocks = plan
            .iter()
            .map(|(prefix, state)| {
                let x: f64 = rng.gen();
                let kind = if x < mix.wired {
                    BlockKind::Wired
                } else if x < mix.wired + mix.mobile {
                    BlockKind::Mobile
                } else {
                    BlockKind::Firewalled
                };
                let response_rate = match kind {
                    BlockKind::Wired => rng.gen_range(0.55..0.95),
                    _ => 0.0,
                };
                BlockProfile {
                    prefix,
                    state,
                    kind,
                    response_rate,
                }
            })
            .collect::<Vec<BlockProfile>>();
        let mut wired_by_state = vec![Vec::new(); State::COUNT];
        for (i, b) in blocks.iter().enumerate() {
            if b.kind == BlockKind::Wired {
                wired_by_state[b.state.index()].push(u32::try_from(i).unwrap_or(u32::MAX));
            }
        }
        AddressPopulation {
            blocks,
            wired_by_state,
        }
    }

    /// All block profiles, ordered by prefix.
    pub fn blocks(&self) -> &[BlockProfile] {
        &self.blocks
    }

    /// Only the probeable (wired) blocks.
    pub fn wired_blocks(&self) -> impl Iterator<Item = &BlockProfile> {
        self.blocks.iter().filter(|b| b.kind == BlockKind::Wired)
    }

    /// The wired blocks of one region.
    pub fn wired_blocks_of(&self, state: State) -> impl Iterator<Item = &BlockProfile> {
        self.wired_by_state[state.index()]
            .iter()
            .map(move |i| &self.blocks[*i as usize])
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> AddressPopulation {
        let plan = AddressPlan::proportional(5_000);
        AddressPopulation::new(&plan, PopulationMix::default(), 1)
    }

    #[test]
    fn kinds_roughly_match_mix() {
        let p = population();
        let wired = p.wired_blocks().count() as f64 / p.len() as f64;
        assert!((0.40..0.50).contains(&wired), "wired share {wired}");
        let mobile = p
            .blocks()
            .iter()
            .filter(|b| b.kind == BlockKind::Mobile)
            .count() as f64
            / p.len() as f64;
        assert!((0.25..0.35).contains(&mobile), "mobile share {mobile}");
    }

    #[test]
    fn only_wired_blocks_respond() {
        let p = population();
        for b in p.blocks() {
            match b.kind {
                BlockKind::Wired => assert!(b.response_rate > 0.5),
                _ => assert!(b.response_rate.abs() < 1e-12),
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let plan = AddressPlan::proportional(5_000);
        let a = AddressPopulation::new(&plan, PopulationMix::default(), 7);
        let b = AddressPopulation::new(&plan, PopulationMix::default(), 7);
        for (x, y) in a.blocks().iter().zip(b.blocks().iter()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.response_rate, y.response_rate);
        }
    }
}

//! The probing outage dataset.

use serde::{Deserialize, Serialize};
use sift_geo::{Prefix24, State};
use sift_simtime::{Hour, HourRange};

/// One inferred outage: a block that stopped answering probes.
///
/// Mirrors the ANT dataset rows: "IP subnets, the start time of outages,
/// and their durations based on the reachability of the probed end nodes"
/// (§4), augmented with a geolocation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutageRecord {
    /// The affected /24 block.
    pub prefix: Prefix24,
    /// Where the geolocation database places the block (possibly wrong).
    pub located_state: State,
    /// Outage start, in minutes since the study epoch.
    pub start_minute: i64,
    /// Outage duration in minutes.
    pub duration_minutes: u32,
    /// Ground-truth cause (the id of the event that took the block down),
    /// when the dataset generator knows it. `None` for records inferred
    /// blind by the round-based engine. Evaluation-only: a real probing
    /// dataset never knows its causes — which is the paper's §6 point.
    #[serde(default)]
    pub cause_event: Option<u32>,
}

impl OutageRecord {
    /// The hour containing the outage start.
    pub fn start_hour(&self) -> Hour {
        Hour(self.start_minute.div_euclid(60))
    }

    /// The outage window, rounded outward to hours.
    pub fn hour_window(&self) -> HourRange {
        let start = self.start_minute.div_euclid(60);
        let end_minute = self.start_minute + i64::from(self.duration_minutes);
        let end = end_minute.div_euclid(60) + i64::from(end_minute % 60 != 0);
        HourRange::new(Hour(start), Hour(end.max(start + 1)))
    }
}

/// A collection of inferred outages with the query surface the
/// cross-validation needs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbeDataset {
    /// All records, sorted by start minute.
    pub records: Vec<OutageRecord>,
}

impl ProbeDataset {
    /// Builds a dataset, sorting records by start.
    pub fn new(mut records: Vec<OutageRecord>) -> Self {
        records.sort_by_key(|r| (r.start_minute, r.prefix));
        ProbeDataset { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no outages were inferred.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records overlapping `window` that geolocate to one of `states`.
    pub fn matching(
        &self,
        window: &HourRange,
        states: &[State],
    ) -> impl Iterator<Item = &OutageRecord> + '_ {
        let window = *window;
        let states = states.to_vec();
        self.records
            .iter()
            .filter(move |r| states.contains(&r.located_state) && r.hour_window().overlaps(&window))
    }

    /// Count of records overlapping `window` in `states`.
    pub fn match_count(&self, window: &HourRange, states: &[State]) -> usize {
        self.matching(window, states).count()
    }

    /// Merges another dataset into this one.
    pub fn merge(&mut self, other: ProbeDataset) {
        self.records.extend(other.records);
        self.records.sort_by_key(|r| (r.start_minute, r.prefix));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(start_minute: i64, duration_minutes: u32, state: State) -> OutageRecord {
        OutageRecord {
            prefix: Prefix24(1),
            located_state: state,
            start_minute,
            duration_minutes,
            cause_event: None,
        }
    }

    #[test]
    fn hour_window_rounds_outward() {
        let r = record(90, 30, State::TX); // 01:30–02:00
        assert_eq!(r.start_hour(), Hour(1));
        assert_eq!(r.hour_window(), HourRange::new(Hour(1), Hour(2)));
        let r = record(90, 45, State::TX); // 01:30–02:15
        assert_eq!(r.hour_window(), HourRange::new(Hour(1), Hour(3)));
        let r = record(120, 11, State::TX); // exactly within hour 2
        assert_eq!(r.hour_window(), HourRange::new(Hour(2), Hour(3)));
    }

    #[test]
    fn matching_filters_by_state_and_time() {
        let ds = ProbeDataset::new(vec![
            record(60, 120, State::TX),
            record(60, 120, State::CA),
            record(6000, 60, State::TX),
        ]);
        let window = HourRange::new(Hour(0), Hour(5));
        assert_eq!(ds.match_count(&window, &[State::TX]), 1);
        assert_eq!(ds.match_count(&window, &[State::TX, State::CA]), 2);
        assert_eq!(ds.match_count(&window, &[State::NY]), 0);
    }

    #[test]
    fn new_sorts_records() {
        let ds = ProbeDataset::new(vec![record(500, 10, State::TX), record(100, 10, State::TX)]);
        assert_eq!(ds.records[0].start_minute, 100);
        assert_eq!(ds.len(), 2);
    }
}

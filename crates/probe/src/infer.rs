//! Outage inference from per-round response counts.
//!
//! A simplified Trinocular-style belief: a block that answers nothing for
//! `down_rounds` consecutive rounds is declared down (the outage is dated
//! to the first silent round); it is declared recovered after `up_rounds`
//! consecutive responsive rounds.

use serde::{Deserialize, Serialize};

/// Inference thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InferenceParams {
    /// Consecutive silent rounds before a block is declared down.
    pub down_rounds: u32,
    /// Consecutive responsive rounds before a block is declared up again.
    pub up_rounds: u32,
}

impl Default for InferenceParams {
    fn default() -> Self {
        InferenceParams {
            down_rounds: 3,
            up_rounds: 2,
        }
    }
}

/// Streaming outage inference over one block's rounds.
#[derive(Clone, Debug)]
pub struct BlockInference {
    params: InferenceParams,
    silent_streak: u32,
    responsive_streak: u32,
    down_since_round: Option<u64>,
    round: u64,
    /// Completed outages as `(start_round, end_round)` (end exclusive).
    pub outages: Vec<(u64, u64)>,
}

impl BlockInference {
    /// A fresh inference state.
    pub fn new(params: InferenceParams) -> Self {
        BlockInference {
            params,
            silent_streak: 0,
            responsive_streak: 0,
            down_since_round: None,
            round: 0,
            outages: Vec::new(),
        }
    }

    /// Feeds the response count of the next round.
    pub fn observe(&mut self, responses: u64) {
        if responses == 0 {
            self.silent_streak += 1;
            self.responsive_streak = 0;
            if self.silent_streak == self.params.down_rounds && self.down_since_round.is_none() {
                // Date the outage to the first silent round.
                self.down_since_round = Some(self.round + 1 - u64::from(self.params.down_rounds));
            }
        } else {
            self.responsive_streak += 1;
            self.silent_streak = 0;
            if self.responsive_streak >= self.params.up_rounds {
                if let Some(start) = self.down_since_round.take() {
                    // The block came back `up_rounds - 1` rounds ago.
                    let end = self.round + 1 - u64::from(self.params.up_rounds);
                    self.outages.push((start, end.max(start + 1)));
                }
            }
        }
        self.round += 1;
    }

    /// Flushes an outage still open at the end of the observation window.
    pub fn finish(&mut self) {
        if let Some(start) = self.down_since_round.take() {
            self.outages.push((start, self.round.max(start + 1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seq: &[u64]) -> Vec<(u64, u64)> {
        let mut inf = BlockInference::new(InferenceParams::default());
        for &r in seq {
            inf.observe(r);
        }
        inf.finish();
        inf.outages
    }

    #[test]
    fn clean_outage_detected_with_correct_bounds() {
        // Rounds: up up silent*5 up up up
        let seq = [3, 2, 0, 0, 0, 0, 0, 4, 3, 2];
        assert_eq!(run(&seq), vec![(2, 7)]);
    }

    #[test]
    fn short_blips_are_ignored() {
        // Two silent rounds < down_rounds: no outage.
        let seq = [3, 0, 0, 2, 3, 0, 1, 2];
        assert!(run(&seq).is_empty());
    }

    #[test]
    fn single_responsive_round_does_not_end_an_outage() {
        // One responsive round inside an outage (< up_rounds) is treated
        // as a lucky probe, not a recovery.
        let seq = [3, 0, 0, 0, 1, 0, 0, 0, 2, 2];
        assert_eq!(run(&seq), vec![(1, 8)]);
    }

    #[test]
    fn outage_open_at_window_end_is_flushed() {
        let seq = [2, 2, 0, 0, 0, 0];
        assert_eq!(run(&seq), vec![(2, 6)]);
    }

    #[test]
    fn multiple_outages() {
        let seq = [2, 0, 0, 0, 2, 2, 0, 0, 0, 0, 2, 2];
        assert_eq!(run(&seq), vec![(1, 4), (6, 10)]);
    }

    #[test]
    fn never_down_never_records() {
        assert!(run(&[1, 2, 3, 4, 5]).is_empty());
        assert!(run(&[]).is_empty());
    }
}

//! Active-probing outage-detection baseline (ANT / Trinocular style).
//!
//! The paper compares SIFT against "a state-of-the-art active probing
//! data set (i.e., ANT outages data set)": eleven-minute slots of
//! reachability probes from six vantage points, reporting IP subnets,
//! outage start times and durations, geolocated with MaxMind (§4). That
//! dataset is not publicly redistributable, so this crate implements the
//! methodology itself over the same ground truth the trends simulator
//! uses:
//!
//! * [`address`] — a probeable address population over `sift-geo`'s
//!   synthetic address plan: wired blocks that answer pings, mobile and
//!   firewalled blocks that never do (the paper: only a tiny fraction of
//!   IPv4 responds, and mobile networks escape probing entirely),
//! * [`vantage`] — six vantage points with independent loss,
//! * [`prober`] — the round-based probing engine: every 11 minutes each
//!   block is probed from a vantage point; a belief counter turns
//!   consecutive silent rounds into outage records ([`infer`]),
//! * [`dataset`] — the resulting outage dataset, geolocated through the
//!   (imperfect) geolocation database,
//! * [`crossval`] — SIFT↔probing cross-validation: which user-visible
//!   outages does probing miss (mobile carriers, CDN/DNS, applications)
//!   and which does it confirm (ISP and power outages)?

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod crossval;
pub mod dataset;
pub mod infer;
pub mod prober;
pub mod vantage;

pub use address::{AddressPopulation, BlockKind, BlockProfile};
pub use crossval::{cross_validate, CrossValReport, EventVisibility};
pub use dataset::{OutageRecord, ProbeDataset};
pub use infer::InferenceParams;
pub use prober::{ProbeConfig, Prober};
pub use vantage::{VantagePoint, VANTAGE_COUNT};

//! Probing vantage points.

use serde::{Deserialize, Serialize};

/// Number of vantage points, matching the ANT dataset's "six distinct
/// locations in the world" (§4).
pub const VANTAGE_COUNT: usize = 6;

/// One probing vantage point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Index, `0..VANTAGE_COUNT`.
    pub id: usize,
    /// Human-readable site label.
    pub site: &'static str,
    /// Probability that a probe (or its answer) is lost on the path from
    /// this vantage point, independent of the target's health.
    pub path_loss: f64,
}

/// The standard six vantage points.
pub fn vantage_points() -> [VantagePoint; VANTAGE_COUNT] {
    [
        VantagePoint {
            id: 0,
            site: "us-west",
            path_loss: 0.02,
        },
        VantagePoint {
            id: 1,
            site: "us-east",
            path_loss: 0.02,
        },
        VantagePoint {
            id: 2,
            site: "europe",
            path_loss: 0.04,
        },
        VantagePoint {
            id: 3,
            site: "asia",
            path_loss: 0.06,
        },
        VantagePoint {
            id: 4,
            site: "south-america",
            path_loss: 0.05,
        },
        VantagePoint {
            id: 5,
            site: "oceania",
            path_loss: 0.05,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_sites() {
        let vps = vantage_points();
        assert_eq!(vps.len(), VANTAGE_COUNT);
        for (i, vp) in vps.iter().enumerate() {
            assert_eq!(vp.id, i);
            assert!((0.0..0.5).contains(&vp.path_loss));
        }
        let mut sites: Vec<_> = vps.iter().map(|v| v.site).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), VANTAGE_COUNT);
    }
}

//! Property tests: service sampling and indexing invariants.

use proptest::prelude::*;
use sift_geo::State;
use sift_simtime::Hour;
use sift_trends::frame::index_values;
use sift_trends::{FrameRequest, Scenario, SearchTerm, TrendsService};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexing: output in 0..=100; the max value indexes to exactly 100;
    /// order is preserved (monotone).
    #[test]
    fn index_values_monotone_bounded(values in proptest::collection::vec(0.0f64..1e6, 0..300)) {
        let idx = index_values(&values);
        prop_assert_eq!(idx.len(), values.len());
        for v in &idx {
            prop_assert!(*v <= 100);
        }
        if let Some(max_pos) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
        {
            if values[max_pos] > 0.0 {
                prop_assert_eq!(idx[max_pos], 100);
            }
        }
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] <= values[j] {
                    prop_assert!(idx[i] <= idx[j]);
                }
            }
        }
    }

    /// Frame responses: correct length, all values in range, and
    /// reproducible for the same (coordinates, tag).
    #[test]
    fn frames_well_formed_and_reproducible(start in 0i64..17_000, len in 1u32..169, tag in 0u64..4) {
        let service = TrendsService::with_defaults(Scenario::single_region(State::CA, vec![]));
        let req = FrameRequest {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::CA,
            start: Hour(start),
            len,
            tag,
        };
        let a = service.fetch_frame(&req).expect("frame");
        prop_assert_eq!(a.values.len(), len as usize);
        prop_assert!(a.values.iter().all(|v| *v <= 100));
        let b = service.fetch_frame(&req).expect("frame");
        prop_assert_eq!(a, b);
    }
}

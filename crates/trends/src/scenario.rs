//! The generative world model: two years of ground-truth US outages.
//!
//! The paper studies 2020–2021 in the United States and finds ~49 000
//! spikes whose shape is dictated by a handful of mechanisms: population/
//! infrastructure skew across states, heavy-tailed outage durations,
//! weekday-biased human error, seasonal storms, and two climate disasters
//! (the Aug–Sep 2020 western wildfires, the Feb 2021 Texas winter storm).
//! [`Scenario`] encodes those *mechanisms* — plus the specific headline
//! events of Tables 1–3 — and produces the event list that drives both the
//! trends service and the probing baseline.

use crate::dist;
use crate::events::{Cause, OutageEvent, PowerTrigger};
use crate::terms::Provider;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sift_geo::{population, State};
use sift_simtime::{Hour, HourRange, Month, Weekday};

/// Tuning knobs of the world model. [`ScenarioParams::default`] reproduces
/// the full two-year study; tests shrink `background_scale` or restrict
/// regions to keep runtimes tiny.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Seed for every random choice in the generator.
    pub seed: u64,
    /// Scales the number of background events (1.0 ≈ 54 000 over the two
    /// years, sized so SIFT detects on the order of the paper's 49 189
    /// spikes).
    pub background_scale: f64,
    /// Include the paper's named headline events (Tables 1–3, Figs 1–2).
    pub include_named: bool,
    /// Include the wildfire / winter-storm climate clusters (Fig. 6
    /// outliers).
    pub include_clusters: bool,
    /// Regions to generate events for; events touching none of these are
    /// dropped and multi-state events are trimmed to this set.
    pub regions: Vec<State>,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            seed: 0x51F7_2022,
            background_scale: 1.0,
            include_named: true,
            include_clusters: true,
            regions: State::ALL.to_vec(),
        }
    }
}

/// Background events generated per calendar year at `background_scale`
/// 1.0. 2020 runs slightly hotter, reproducing the paper's 25 494 vs
/// 23 695 spike split.
const BACKGROUND_2020: f64 = 28_800.0;
const BACKGROUND_2021: f64 = 25_800.0;

/// Fraction of background outages that are power-caused, per year. 2020 is
/// higher, contributing to its 50 % surplus of ≥ 5 h spikes.
const POWER_FRAC: [f64; 2] = [0.21, 0.17];
const MOBILE_FRAC: f64 = 0.09;
const APP_FRAC: f64 = 0.07;
const CDN_FRAC: f64 = 0.04;

/// Time-bucketed index over a scenario's events.
///
/// Buckets are [`EVENT_INDEX_BUCKET_H`]-hour wide; an event is listed in
/// every bucket its (lag-extended) window touches, so a window query only
/// scans the events of its own buckets.
#[derive(Clone, Debug, Default)]
pub struct EventIndex {
    buckets: Vec<Vec<u32>>,
    origin: i64,
}

/// Width of one event-index bucket, in hours.
pub const EVENT_INDEX_BUCKET_H: i64 = 96;

impl EventIndex {
    fn new(scenario: &Scenario) -> Self {
        let origin = scenario
            .events
            .first()
            .map(|e| e.start.0)
            .unwrap_or(0)
            .div_euclid(EVENT_INDEX_BUCKET_H);
        let mut buckets: Vec<Vec<u32>> = Vec::new();
        for (idx, e) in scenario.events.iter().enumerate() {
            for i in 0..e.states.len() {
                let w = e.window_in(i);
                let lo = w.start.0.div_euclid(EVENT_INDEX_BUCKET_H) - origin;
                let hi = (w.end.0 - 1).div_euclid(EVENT_INDEX_BUCKET_H) - origin;
                for b in lo..=hi {
                    let b = b.max(0) as usize;
                    if buckets.len() <= b {
                        buckets.resize(b + 1, Vec::new());
                    }
                    let bucket = &mut buckets[b];
                    let idx32 = u32::try_from(idx).unwrap_or(u32::MAX);
                    if bucket.last() != Some(&idx32) {
                        bucket.push(idx32);
                    }
                }
            }
        }
        EventIndex { buckets, origin }
    }

    /// Indices (into `scenario.events`) of events whose window in some
    /// region may intersect `window`. May contain a few false positives
    /// (bucket granularity); never misses an event.
    pub fn candidates(&self, window: HourRange) -> Vec<u32> {
        if self.buckets.is_empty() || window.is_empty() {
            return Vec::new();
        }
        let last = self.buckets.len() - 1;
        let lo = (window.start.0.div_euclid(EVENT_INDEX_BUCKET_H) - self.origin)
            .clamp(0, last as i64) as usize;
        let hi = ((window.end.0 - 1).div_euclid(EVENT_INDEX_BUCKET_H) - self.origin)
            .clamp(0, last as i64) as usize;
        let mut out: Vec<u32> = Vec::new();
        for b in lo..=hi {
            out.extend_from_slice(&self.buckets[b]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A fully-instantiated world: ground-truth events plus the parameters
/// that produced them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// The parameters the scenario was generated with.
    pub params: ScenarioParams,
    /// Every ground-truth event, sorted by start hour.
    pub events: Vec<OutageEvent>,
}

impl Scenario {
    /// The full two-year US study world with the default seed.
    pub fn us_2020_2021() -> Self {
        Self::generate(ScenarioParams::default())
    }

    /// Generates a world from explicit parameters.
    pub fn generate(params: ScenarioParams) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let mut events = Vec::new();
        let mut next_id = 0u32;

        if params.include_named {
            for mut e in named_events(&mut rng) {
                e.id = next_id;
                next_id += 1;
                events.push(e);
            }
        }
        if params.include_clusters {
            for mut e in climate_clusters(&mut rng, params.background_scale) {
                e.id = next_id;
                next_id += 1;
                events.push(e);
            }
        }
        for mut e in background_events(&mut rng, params.background_scale) {
            e.id = next_id;
            next_id += 1;
            events.push(e);
        }

        // Trim to the requested regions.
        if params.regions.len() < State::COUNT {
            let keep = |s: &State| params.regions.contains(s);
            events.retain_mut(|e| {
                let mut kept_states = Vec::new();
                let mut kept_lags = Vec::new();
                for (i, (s, w)) in e.states.iter().enumerate() {
                    if keep(s) {
                        kept_states.push((*s, *w));
                        kept_lags.push(e.lags_h[i]);
                    }
                }
                e.states = kept_states;
                e.lags_h = kept_lags;
                !e.states.is_empty()
            });
        }

        events.sort_by_key(|e| (e.start, e.id));
        Scenario { params, events }
    }

    /// A small single-region world for unit tests: a handful of explicit
    /// events, no background noise.
    pub fn single_region(state: State, events: Vec<OutageEvent>) -> Self {
        let params = ScenarioParams {
            background_scale: 0.0,
            include_named: false,
            include_clusters: false,
            regions: vec![state],
            ..ScenarioParams::default()
        };
        let mut events = events;
        events.sort_by_key(|e| (e.start, e.id));
        Scenario { params, events }
    }

    /// Events whose (possibly lagged) interest window in some region
    /// intersects `window`.
    pub fn events_in(&self, window: HourRange) -> impl Iterator<Item = &OutageEvent> {
        self.events
            .iter()
            .filter(move |e| (0..e.states.len()).any(|i| e.window_in(i).overlaps(&window)))
    }

    /// Builds a time index over the events for repeated window queries
    /// (the service answers tens of thousands of rising-term requests per
    /// study; a linear scan per request would dominate the run time).
    pub fn build_index(&self) -> EventIndex {
        EventIndex::new(self)
    }

    /// Convenience: a named event by (unique prefix of) name, for tests
    /// and the experiments harness.
    pub fn find_named(&self, prefix: &str) -> Option<&OutageEvent> {
        self.events.iter().find(|e| e.name.starts_with(prefix))
    }
}

/// Builds one multi-state event affecting the `n` most populous regions
/// with randomized intensities.
fn national_event(
    rng: &mut ChaCha8Rng,
    name: &str,
    cause: Cause,
    start: Hour,
    duration_h: u32,
    n_states: usize,
    severity: f64,
) -> OutageEvent {
    let mut by_pop: Vec<State> = State::ALL.to_vec();
    by_pop.sort_by_key(|s| std::cmp::Reverse(population(*s)));
    let states: Vec<(State, f64)> = by_pop
        .into_iter()
        .take(n_states)
        .map(|s| (s, rng.gen_range(0.25..0.5)))
        .collect();
    let lags = vec![0; states.len()];
    OutageEvent {
        id: 0,
        name: name.to_owned(),
        cause,
        start,
        duration_h,
        states,
        severity,
        lags_h: lags,
    }
}

/// The paper's headline events: every row of Tables 1–3 plus the Fig. 1
/// and Fig. 2 walkthrough spikes.
// Sequential pushes keep each table row next to its source comment.
#[allow(clippy::vec_init_then_push)]
fn named_events(rng: &mut ChaCha8Rng) -> Vec<OutageEvent> {
    let h = Hour::from_ymdh;
    let mut out = Vec::new();

    // ---- Table 1 / Table 3: the Texas winter storm (45 h, TX). Also
    // drives Fig. 1's dominant spike. Neighbouring grid regions see
    // shorter, weaker interest.
    out.push(OutageEvent {
        id: 0,
        name: "Texas winter storm".into(),
        cause: Cause::Power(PowerTrigger::WinterStorm),
        start: h(2021, 2, 15, 10),
        duration_h: 45,
        states: vec![
            (State::TX, 0.7),
            (State::OK, 0.12),
            (State::LA, 0.1),
            (State::AR, 0.09),
            (State::MS, 0.07),
        ],
        severity: 15_000.0,
        lags_h: vec![0; 5],
    });

    // ---- Table 1 rows (most impactful by duration).
    out.push(national_event(
        rng,
        "Xfinity nationwide outage",
        Cause::IspNetwork(Provider::Xfinity),
        h(2021, 11, 9, 4),
        23,
        9,
        9_000.0,
    ));
    out.push(national_event(
        rng,
        "Fastly global outage",
        Cause::CdnOrCloud(Provider::Fastly),
        h(2021, 6, 8, 9),
        22,
        26,
        9_500.0,
    ));
    out.push(OutageEvent {
        id: 0,
        name: "AT&T Nashville outage".into(),
        cause: Cause::IspNetwork(Provider::Att),
        start: h(2020, 12, 26, 12),
        duration_h: 21,
        states: vec![(State::TN, 0.5), (State::KY, 0.12), (State::AL, 0.1)],
        severity: 10_500.0,
        lags_h: vec![0; 3],
    });
    out.push(OutageEvent {
        id: 0,
        name: "Comcast Georgia outage (tropical storm Zeta)".into(),
        cause: Cause::IspNetwork(Provider::Comcast),
        start: h(2020, 10, 29, 9),
        duration_h: 20,
        states: vec![
            (State::GA, 0.5),
            (State::AL, 0.16),
            (State::SC, 0.15),
            (State::TN, 0.12),
        ],
        severity: 9_500.0,
        lags_h: vec![0; 4],
    });
    out.push(national_event(
        rng,
        "T-Mobile nationwide outage",
        Cause::MobileCarrier(Provider::TMobile),
        h(2020, 6, 15, 14),
        19,
        15,
        9_000.0,
    ));
    out.push(OutageEvent {
        id: 0,
        name: "CenturyLink North Carolina outage".into(),
        cause: Cause::IspNetwork(Provider::CenturyLink),
        start: h(2020, 4, 13, 11),
        duration_h: 18,
        states: vec![(State::NC, 0.5), (State::VA, 0.12), (State::SC, 0.12)],
        severity: 8_500.0,
        lags_h: vec![0; 3],
    });

    // ---- Table 2 rows (most extensive), excluding Fastly (above).
    out.push(national_event(
        rng,
        "Akamai DNS misconfiguration",
        Cause::CdnOrCloud(Provider::Akamai),
        h(2021, 7, 22, 14),
        8,
        34,
        11_000.0,
    ));
    out.push(national_event(
        rng,
        "Cloudflare outage",
        Cause::CdnOrCloud(Provider::Cloudflare),
        h(2020, 7, 17, 19),
        6,
        30,
        10_500.0,
    ));
    // Facebook: spikes everywhere, but 22 (less populous, further-west)
    // regions lag behind — the paper attributes this to local-time
    // differences for leisure applications (§4.2).
    {
        let mut by_pop: Vec<State> = State::ALL.to_vec();
        by_pop.sort_by_key(|s| std::cmp::Reverse(population(*s)));
        let mut states = Vec::with_capacity(State::COUNT);
        let mut lags = Vec::with_capacity(State::COUNT);
        for (rank, s) in by_pop.into_iter().enumerate() {
            states.push((s, rng.gen_range(0.25..0.5)));
            if rank < 29 {
                lags.push(0);
            } else {
                // Lag grows westward: one hour per timezone west of
                // Eastern, at least one hour.
                let westness = u32::try_from((-5 - s.division_offset_proxy()).max(1)).unwrap_or(1);
                lags.push(westness);
            }
        }
        out.push(OutageEvent {
            id: 0,
            name: "Facebook global outage".into(),
            cause: Cause::Application(Provider::Facebook),
            start: h(2021, 10, 4, 15),
            duration_h: 7,
            states,
            severity: 12_000.0,
            lags_h: lags,
        });
    }
    out.push(national_event(
        rng,
        "Verizon east-coast outage",
        Cause::IspNetwork(Provider::Verizon),
        h(2021, 1, 26, 16),
        9,
        27,
        9_000.0,
    ));
    out.push(national_event(
        rng,
        "Youtube worldwide outage",
        Cause::Application(Provider::Youtube),
        h(2020, 11, 11, 23),
        5,
        27,
        10_000.0,
    ));
    out.push(national_event(
        rng,
        "AWS us-east outage",
        Cause::CdnOrCloud(Provider::Aws),
        h(2021, 12, 15, 14),
        6,
        26,
        9_000.0,
    ));
    out.push(national_event(
        rng,
        "Comcast nationwide outage",
        Cause::IspNetwork(Provider::Comcast),
        h(2020, 1, 23, 18),
        7,
        25,
        8_500.0,
    ));
    out.push(national_event(
        rng,
        "CenturyLink/Cloudflare outage",
        Cause::IspNetwork(Provider::CenturyLink),
        h(2020, 8, 30, 9),
        7,
        24,
        8_500.0,
    ));

    // ---- Table 3 rows (power, per state) not already present.
    let power = |name: &str,
                 trigger: PowerTrigger,
                 start: Hour,
                 duration_h: u32,
                 state: State,
                 severity: f64| OutageEvent {
        id: 0,
        name: name.to_owned(),
        cause: Cause::Power(trigger),
        start,
        duration_h,
        states: vec![(state, 0.5)],
        severity,
        lags_h: vec![0],
    };
    out.push(power(
        "California heat wave blackouts",
        PowerTrigger::HeatWave,
        h(2020, 9, 6, 18),
        18,
        State::CA,
        9_000.0,
    ));
    out.push(power(
        "Michigan storm flooding",
        PowerTrigger::HeavyRain,
        h(2021, 8, 11, 9),
        15,
        State::MI,
        8_200.0,
    ));
    out.push(power(
        "Washington Pacific Northwest storm",
        PowerTrigger::Storm,
        h(2021, 10, 24, 18),
        13,
        State::WA,
        7_800.0,
    ));
    out.push(power(
        "Colorado severed power line",
        PowerTrigger::SeveredLine,
        h(2021, 7, 22, 14),
        9,
        State::CO,
        7_000.0,
    ));
    out.push(power(
        "Ohio summer storm",
        PowerTrigger::Storm,
        h(2021, 8, 12, 20),
        7,
        State::OH,
        6_500.0,
    ));
    out.push(power(
        "Kentucky tornado outbreak",
        PowerTrigger::Tornado,
        h(2021, 12, 11, 23),
        7,
        State::KY,
        7_800.0,
    ));

    // ---- Fig. 1's second circled spike: the Verizon outage above covers
    // 26 Jan 2021. ---- Fig. 2's walkthrough spike: a Californian power
    // outage taking Spectrum and Metro PCS down, 17 Jul 2020 15:00, 10 h.
    out.push(OutageEvent {
        id: 0,
        name: "San Jose power outage".into(),
        cause: Cause::Power(PowerTrigger::GridFailure),
        start: h(2020, 7, 17, 15),
        duration_h: 10,
        states: vec![(State::CA, 0.035)],
        severity: 6_200.0,
        lags_h: vec![1],
    });

    out
}

/// The Fig. 6 outliers: dense clusters of long power outages during the
/// Aug–Sep 2020 western wildfires/heat events and the Jan–Feb 2021
/// southern winter storms. Each cluster member is a distinct local outage
/// (a different neighbourhood, town or utility), so each yields its own
/// spike.
fn climate_clusters(rng: &mut ChaCha8Rng, scale: f64) -> Vec<OutageEvent> {
    let mut out = Vec::new();

    struct Cluster {
        name: &'static str,
        year: i32,
        month: u8,
        count: f64,
        states: &'static [(State, f64)],
        triggers: &'static [PowerTrigger],
    }
    let clusters = [
        Cluster {
            name: "western wildfires",
            year: 2020,
            month: 8,
            count: 210.0,
            states: &[
                (State::CA, 0.40),
                (State::OR, 0.16),
                (State::WA, 0.13),
                (State::NV, 0.11),
                (State::ID, 0.10),
                (State::CO, 0.10),
                (State::UT, 0.10),
            ],
            triggers: &[PowerTrigger::Wildfire, PowerTrigger::HeatWave],
        },
        Cluster {
            name: "western wildfires",
            year: 2020,
            month: 9,
            count: 320.0,
            states: &[
                (State::CA, 0.42),
                (State::OR, 0.16),
                (State::WA, 0.13),
                (State::NV, 0.10),
                (State::ID, 0.09),
                (State::CO, 0.05),
                (State::UT, 0.05),
            ],
            triggers: &[PowerTrigger::Wildfire, PowerTrigger::HeatWave],
        },
        Cluster {
            name: "southern cold snap",
            year: 2021,
            month: 1,
            count: 90.0,
            states: &[
                (State::TX, 0.4),
                (State::OK, 0.2),
                (State::AR, 0.15),
                (State::LA, 0.15),
                (State::MS, 0.1),
            ],
            triggers: &[PowerTrigger::WinterStorm, PowerTrigger::Storm],
        },
        Cluster {
            name: "winter storm Uri",
            year: 2021,
            month: 2,
            count: 260.0,
            states: &[
                (State::TX, 0.30),
                (State::OK, 0.11),
                (State::LA, 0.10),
                (State::AR, 0.09),
                (State::MS, 0.08),
                (State::KS, 0.08),
                (State::MO, 0.08),
                (State::TN, 0.08),
                (State::AL, 0.08),
            ],
            triggers: &[PowerTrigger::WinterStorm],
        },
    ];

    for c in &clusters {
        let n = (c.count * scale).round() as usize;
        for _ in 0..n {
            let state = pick_weighted(rng, c.states);
            let trigger = *c.triggers.choose(rng).expect("non-empty triggers"); // sift-lint: allow(no-panic) — const cluster tables are non-empty
                                                                                // Winter storm Uri concentrated in a single week; wildfire
                                                                                // outages spread over their month.
            let day_range = if c.month == 2 { 18..27 } else { 1..28 };
            let day = rng.gen_range(day_range);
            let hour = rng.gen_range(6..23);
            let duration = dist::lognormal_clamped(rng, 7.0, 0.55, 3.0, 22.0) as u32; // sift-lint: allow(lossy-cast) — clamped to [3, 22]; `as` saturates
                                                                                      // Climate-cluster outages hit harder than background ones.
            let reach = dist::lognormal_clamped(rng, 650_000.0, 0.9, 80_000.0, 5_000_000.0);
            let (severity, intensity) = reach_to_lift(rng, reach, state);
            out.push(OutageEvent {
                id: 0,
                name: format!("{} local outage", c.name),
                cause: Cause::Power(trigger),
                start: Hour::from_ymdh(c.year, c.month, day, hour),
                duration_h: duration.max(3),
                states: vec![(state, intensity)],
                severity,
                lags_h: vec![0],
            });
        }
    }
    out
}

/// Converts an outage's user reach into the event lift parameters.
///
/// `severity` is the interest proportion lift, in baseline units, of a
/// fully-affected region; `intensity` is the affected fraction of the
/// given region's population (capped — no outage takes a whole state
/// offline). The per-event multiplier models how loudly users react.
fn reach_to_lift(rng: &mut ChaCha8Rng, reach: f64, state: State) -> (f64, f64) {
    // Search propensity of affected users over the baseline proportion:
    // at full intensity the topic occupies ~2% of the region's searches.
    const PROPENSITY_OVER_BASELINE: f64 = 10_000.0;
    let loudness = dist::lognormal_clamped(rng, 1.0, 0.4, 0.35, 3.0);
    let severity = PROPENSITY_OVER_BASELINE * loudness;
    let intensity = (reach / population(state) as f64).min(0.7);
    (severity, intensity)
}

fn pick_weighted(rng: &mut ChaCha8Rng, weights: &[(State, f64)]) -> State {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (s, w) in weights {
        x -= w;
        if x <= 0.0 {
            return *s;
        }
    }
    weights.last().expect("non-empty weights").0 // sift-lint: allow(no-panic) — callers pass const weight tables
}

/// Hour-of-day weighting of outage *onsets* (local time): failures are
/// noticed — and to a degree caused — during waking hours.
const ONSET_DIURNAL: [f64; 24] = [
    0.45, 0.35, 0.3, 0.3, 0.35, 0.5, 0.7, 0.95, 1.15, 1.3, 1.35, 1.35, 1.3, 1.3, 1.3, 1.3, 1.35,
    1.4, 1.45, 1.45, 1.35, 1.15, 0.85, 0.6,
];

/// Weekday weighting of outage onsets: the paper observes fewer outages on
/// weekends and conjectures less service-side human error (Fig. 4).
fn weekday_weight(w: Weekday) -> f64 {
    match w {
        Weekday::Sat => 0.72,
        Weekday::Sun => 0.68,
        _ => 1.0,
    }
}

/// Monthly weighting of *power* outage onsets: summer convective storms
/// and winter weather both elevate rates.
fn power_month_weight(m: Month) -> f64 {
    match m {
        Month::Jun | Month::Jul | Month::Aug => 1.35,
        Month::Dec | Month::Jan | Month::Feb => 1.15,
        Month::Mar | Month::Apr | Month::May => 1.0,
        _ => 0.95,
    }
}

/// The ~54 000 ordinary outages of the study period.
fn background_events(rng: &mut ChaCha8Rng, scale: f64) -> Vec<OutageEvent> {
    let mut out = Vec::new();
    if scale <= 0.0 {
        return out;
    }

    // State selection weights: population with a mildly super-linear
    // exponent (infrastructure density compounds), which lands the
    // top-10 share near the paper's 51 %.
    let weights: Vec<(State, f64)> = State::ALL
        .iter()
        .map(|s| (*s, (population(*s) as f64).powf(1.1)))
        .collect();

    for (year_idx, (year, base_count)) in [(2020, BACKGROUND_2020), (2021, BACKGROUND_2021)]
        .iter()
        .enumerate()
    {
        let n = (base_count * scale).round() as usize;
        let power_frac = POWER_FRAC[year_idx];
        let year_start = Hour::from_ymdh(*year, 1, 1, 0);
        let year_hours = if *year == 2020 { 366 * 24 } else { 365 * 24 };

        for _ in 0..n {
            let state = pick_weighted(rng, &weights);
            let cause = sample_cause(rng, power_frac);

            // Rejection-sample the onset hour against the weekday, local
            // hour-of-day and (for power events) seasonal weights.
            let start = loop {
                let cand = year_start + rng.gen_range(0..year_hours);
                let local = cand.to_local(state_std_offset(state));
                let mut w = ONSET_DIURNAL[usize::from(local.hour_of_day())] / 1.45;
                w *= weekday_weight(local.weekday());
                if matches!(cause, Cause::Power(_)) {
                    w *= power_month_weight(cand.month()) / 1.35;
                }
                if rng.gen::<f64>() < w {
                    break cand;
                }
            };

            let duration_h = match cause {
                Cause::Power(_) => dist::lognormal_clamped(rng, 1.15, 0.8, 1.0, 24.0),
                _ => dist::lognormal_clamped(rng, 0.9, 0.45, 1.0, 12.0),
            }
            .round()
            .max(1.0) as u32; // sift-lint: allow(lossy-cast) — clamped small positive; `as` saturates

            // Reach: how many users the outage affects. Interest lift
            // follows from reach as a fraction of the state's population,
            // so an equally-sized outage is *more* visible in a small
            // state — which is exactly how per-region normalization works
            // on the real service.
            let reach = dist::lognormal_clamped(rng, 400_000.0, 1.0, 60_000.0, 6_000_000.0);
            let (severity, intensity) = reach_to_lift(rng, reach, state);

            // Mostly single-state; occasionally a regional event spills
            // into division neighbours.
            let mut states = vec![(state, intensity)];
            let spill: f64 = rng.gen();
            if spill > 0.92 {
                let mut neighbors = state.division_neighbors();
                neighbors.shuffle(rng);
                let extra = if spill > 0.98 {
                    rng.gen_range(3..=5)
                } else {
                    rng.gen_range(1..=2)
                };
                for n in neighbors.into_iter().take(extra) {
                    let (_, spill_intensity) = reach_to_lift(rng, reach * 0.4, n);
                    states.push((n, spill_intensity));
                }
            }
            let lags = vec![0; states.len()];

            out.push(OutageEvent {
                id: 0,
                name: format!("background {} outage", cause.label()),
                cause,
                start,
                duration_h,
                states,
                severity,
                lags_h: lags,
            });
        }
    }
    out
}

fn sample_cause(rng: &mut ChaCha8Rng, power_frac: f64) -> Cause {
    let x: f64 = rng.gen();
    if x < power_frac {
        let trigger = *[
            PowerTrigger::Storm,
            PowerTrigger::Storm,
            PowerTrigger::GridFailure,
            PowerTrigger::HeavyRain,
            PowerTrigger::SeveredLine,
            PowerTrigger::HeatWave,
            PowerTrigger::WinterStorm,
        ]
        .choose(rng)
        .expect("non-empty"); // sift-lint: allow(no-panic) — const provider tables are non-empty
        Cause::Power(trigger)
    } else if x < power_frac + MOBILE_FRAC {
        Cause::MobileCarrier(*Provider::MOBILE.choose(rng).expect("non-empty")) // sift-lint: allow(no-panic) — const provider tables are non-empty
    } else if x < power_frac + MOBILE_FRAC + APP_FRAC {
        Cause::Application(*Provider::APPS.choose(rng).expect("non-empty")) // sift-lint: allow(no-panic) — const provider tables are non-empty
    } else if x < power_frac + MOBILE_FRAC + APP_FRAC + CDN_FRAC {
        Cause::CdnOrCloud(*Provider::CDN_CLOUD.choose(rng).expect("non-empty")) // sift-lint: allow(no-panic) — const provider tables are non-empty
    } else {
        Cause::IspNetwork(*Provider::ISPS.choose(rng).expect("non-empty")) // sift-lint: allow(no-panic) — const provider tables are non-empty
    }
}

/// Standard-time UTC offset used for onset local-time weighting. Kept
/// private to the generator: analysis code uses the DST-aware
/// `sift_geo::utc_offset`.
fn state_std_offset(s: State) -> i32 {
    sift_geo::utc_offset(s, Hour::from_ymdh(2020, 1, 15, 0))
}

/// Proxy for "how far west" a region is, used only for Facebook lag
/// synthesis; implemented on `State` here to keep `sift-geo` free of
/// scenario concerns.
trait DivisionOffsetProxy {
    fn division_offset_proxy(&self) -> i32;
}

impl DivisionOffsetProxy for State {
    fn division_offset_proxy(&self) -> i32 {
        state_std_offset(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_simtime::STUDY_RANGE;

    fn full() -> Scenario {
        Scenario::generate(ScenarioParams {
            background_scale: 0.05,
            ..ScenarioParams::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = full();
        let b = full();
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(b.events.iter()) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.name, y.name);
            assert_eq!(x.duration_h, y.duration_h);
        }
    }

    #[test]
    fn events_sorted_and_in_study_window() {
        let s = full();
        let mut prev = Hour(i64::MIN);
        for e in &s.events {
            assert!(e.start >= prev);
            prev = e.start;
            assert!(STUDY_RANGE.contains(e.start), "{:?}", e.start);
            assert!(e.duration_h >= 1);
            assert!(!e.states.is_empty());
            assert_eq!(e.states.len(), e.lags_h.len());
            for (_, w) in &e.states {
                assert!(*w > 0.0 && *w <= 1.0);
            }
        }
    }

    #[test]
    fn named_events_present() {
        let s = full();
        let storm = s.find_named("Texas winter storm").expect("storm exists");
        assert_eq!(storm.duration_h, 45);
        assert_eq!(storm.start, Hour::from_ymdh(2021, 2, 15, 10));
        assert!(storm.is_power());

        let akamai = s.find_named("Akamai").expect("akamai exists");
        assert_eq!(akamai.states.len(), 34);
        assert!(!akamai.cause.affects_reachability());

        let fb = s.find_named("Facebook").expect("facebook exists");
        assert_eq!(fb.states.len(), State::COUNT);
        let lagged = fb.lags_h.iter().filter(|l| **l > 0).count();
        assert_eq!(lagged, 22, "22 regions lag (paper §4.2)");
    }

    #[test]
    fn background_counts_scale() {
        let small = Scenario::generate(ScenarioParams {
            background_scale: 0.01,
            include_named: false,
            include_clusters: false,
            ..ScenarioParams::default()
        });
        let expected = ((BACKGROUND_2020 + BACKGROUND_2021) * 0.01) as usize;
        let got = small.events.len();
        assert!(
            (got as i64 - expected as i64).abs() <= 2,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn weekend_onsets_are_rarer() {
        let s = Scenario::generate(ScenarioParams {
            background_scale: 0.2,
            include_named: false,
            include_clusters: false,
            ..ScenarioParams::default()
        });
        let mut by_day = [0usize; 7];
        for e in &s.events {
            by_day[e.start.weekday().index()] += 1;
        }
        let weekday_avg = by_day[..5].iter().sum::<usize>() as f64 / 5.0;
        let weekend_avg = by_day[5..].iter().sum::<usize>() as f64 / 2.0;
        assert!(
            weekend_avg < weekday_avg * 0.9,
            "weekend {weekend_avg} vs weekday {weekday_avg}"
        );
    }

    #[test]
    fn top_states_dominate() {
        let s = Scenario::generate(ScenarioParams {
            background_scale: 0.2,
            include_named: false,
            include_clusters: false,
            ..ScenarioParams::default()
        });
        let mut counts = vec![0usize; State::COUNT];
        for e in &s.events {
            for (st, _) in &e.states {
                counts[st.index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts[..10].iter().sum();
        let share = top10 as f64 / total as f64;
        assert!(
            (0.42..0.60).contains(&share),
            "top-10 share {share} out of calibration band"
        );
    }

    #[test]
    fn region_restriction_trims_events() {
        let s = Scenario::generate(ScenarioParams {
            background_scale: 0.02,
            regions: vec![State::TX],
            ..ScenarioParams::default()
        });
        for e in &s.events {
            assert_eq!(e.states.len(), 1);
            assert_eq!(e.states[0].0, State::TX);
        }
        assert!(s.find_named("Texas winter storm").is_some());
    }

    #[test]
    fn event_index_handles_empty_and_out_of_range() {
        let empty = Scenario::single_region(State::CA, vec![]);
        let idx = empty.build_index();
        assert!(idx
            .candidates(HourRange::new(Hour(0), Hour(100)))
            .is_empty());

        let one = Scenario::single_region(
            State::CA,
            vec![OutageEvent {
                id: 7,
                name: "x".into(),
                cause: Cause::Power(PowerTrigger::Storm),
                start: Hour(500),
                duration_h: 5,
                states: vec![(State::CA, 0.1)],
                severity: 9_000.0,
                lags_h: vec![0],
            }],
        );
        let idx = one.build_index();
        assert_eq!(
            idx.candidates(HourRange::new(Hour(480), Hour(520))),
            vec![0]
        );
        // Windows far outside the indexed span clamp safely (no panic).
        let _ = idx.candidates(HourRange::new(Hour(-10_000), Hour(-9_000)));
        let far = idx.candidates(HourRange::new(Hour(1_000_000), Hour(1_000_100)));
        assert!(far.len() <= 1);
        assert!(idx.candidates(HourRange::new(Hour(0), Hour(0))).is_empty());
    }

    #[test]
    fn single_region_scenario_for_tests() {
        let e = OutageEvent {
            id: 7,
            name: "x".into(),
            cause: Cause::Power(PowerTrigger::Storm),
            start: Hour(50),
            duration_h: 5,
            states: vec![(State::CA, 1.0)],
            severity: 10.0,
            lags_h: vec![0],
        };
        let s = Scenario::single_region(State::CA, vec![e]);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events_in(HourRange::new(Hour(52), Hour(53))).count(), 1);
        assert_eq!(s.events_in(HourRange::new(Hour(60), Hour(61))).count(), 0);
    }
}

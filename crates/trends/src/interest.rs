//! The population-level search-interest model.
//!
//! For every region and hour the model answers two questions the service
//! needs: *how many searches happened* (the sampling denominator) and
//! *what fraction of them were about the tracked topic* (the quantity the
//! service estimates and indexes). Both are ground truth — the service
//! adds sampling noise on top, per request.

use crate::events::Cause;
use crate::scenario::Scenario;
use crate::terms::{SearchTerm, Topic};
use serde::{Deserialize, Serialize};
use sift_geo::{population, utc_offset, State};
use sift_simtime::{Hour, STUDY_RANGE};

/// Tuning knobs of the interest model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ModelParams {
    /// Baseline fraction of a region's searches on the `<Internet outage>`
    /// topic when nothing is wrong.
    pub baseline_proportion: f64,
    /// Baseline fraction for the `<Power outage>` topic (people also
    /// search it out of idle curiosity, so it sits a little higher).
    pub power_baseline_proportion: f64,
    /// Average searches per resident per hour (all topics).
    pub per_capita_hourly_searches: f64,
    /// Shape (sigma) of the multiplicative log-normal wobble on the
    /// baseline proportion, modelling organic day-to-day variation.
    pub baseline_noise_sigma: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        // Calibrated so the hourly `<Internet outage>` topic behaves like
        // the real thing: a *niche* topic. In populous states the daytime
        // baseline hovers just above the anonymity threshold (Fig. 1's
        // low-single-digit Texas texture, touching zero nightly and under
        // sampling noise), which is also what anchors frame stitching;
        // smaller states round to zero almost always. Outage lift is
        // generated reach-based (see the scenario generator): the
        // searching population is a fraction of the *affected users*, so
        // severities are thousands of baseline units and the same outage
        // reach yields similar sampled counts in every state.
        ModelParams {
            baseline_proportion: 4.0e-6,
            power_baseline_proportion: 1.0e-5,
            per_capita_hourly_searches: 0.05,
            baseline_noise_sigma: 0.25,
        }
    }
}

/// Hourly multipliers on search volume by local hour of day (mean ≈ 1):
/// the usual deep night trough and evening peak.
const SEARCH_DIURNAL: [f64; 24] = [
    0.55, 0.4, 0.3, 0.25, 0.25, 0.35, 0.55, 0.8, 1.0, 1.15, 1.2, 1.25, 1.25, 1.25, 1.25, 1.25, 1.3,
    1.35, 1.4, 1.45, 1.4, 1.3, 1.05, 0.8,
];

/// Ground-truth search behaviour for one scenario.
///
/// Event-driven interest lift is pre-computed into dense per-region hourly
/// arrays over the study window, so per-hour queries are O(1) — the
/// service samples hundreds of thousands of frames during a study.
#[derive(Clone, Debug)]
pub struct InterestModel {
    params: ModelParams,
    /// `lift[state][hour]`: summed event lift in baseline units at that
    /// hour, for the `<Internet outage>` topic.
    lift: Vec<Vec<f32>>,
    /// Same, restricted to power-caused events, for `<Power outage>`.
    power_lift: Vec<Vec<f32>>,
    noise_seed: u64,
}

impl InterestModel {
    /// Builds the model for a scenario with default parameters.
    pub fn new(scenario: &Scenario) -> Self {
        Self::with_params(scenario, ModelParams::default())
    }

    /// Builds the model with explicit parameters.
    pub fn with_params(scenario: &Scenario, params: ModelParams) -> Self {
        let len = usize::try_from(STUDY_RANGE.len()).unwrap_or(0);
        let mut lift = vec![vec![0.0f32; len]; State::COUNT];
        let mut power_lift = vec![vec![0.0f32; len]; State::COUNT];
        for e in &scenario.events {
            let is_power = matches!(e.cause, Cause::Power(_));
            for i in 0..e.states.len() {
                let state = e.states[i].0;
                let w = e.window_in(i);
                for h in w.iter() {
                    if !STUDY_RANGE.contains(h) {
                        continue;
                    }
                    // Nonnegative: `contains` was checked just above.
                    let idx = usize::try_from(h - STUDY_RANGE.start).unwrap_or(0);
                    // sift-lint: allow(lossy-cast) — f32 storage halves the table; lift precision is modeling noise
                    let l = e.lift_at(i, h) as f32;
                    lift[state.index()][idx] += l;
                    if is_power {
                        // Power searches rise a touch harder than internet
                        // searches during a blackout.
                        power_lift[state.index()][idx] += l * 1.25;
                    }
                }
            }
        }
        InterestModel {
            params,
            lift,
            power_lift,
            noise_seed: scenario.params.seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The model's parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Total searches (all topics) in `state` during hour `at`.
    pub fn search_volume(&self, state: State, at: Hour) -> f64 {
        let local = at.to_local(utc_offset(state, at));
        let diurnal = SEARCH_DIURNAL[usize::from(local.hour_of_day())];
        // sift-lint: allow(lossy-cast) — populations ≪ 2⁵³, exact in f64
        population(state) as f64 * self.params.per_capita_hourly_searches * diurnal
    }

    /// Event-driven lift (in baseline units) on the `<Internet outage>`
    /// topic; zero outside the study window.
    pub fn outage_lift(&self, state: State, at: Hour) -> f64 {
        if !STUDY_RANGE.contains(at) {
            return 0.0;
        }
        let idx = usize::try_from(at - STUDY_RANGE.start).unwrap_or(0);
        f64::from(self.lift[state.index()][idx])
    }

    /// The true proportion of searches matching `term` in `state` at `at`.
    ///
    /// This is what the service's random samples estimate. Queries map to
    /// a deterministic share of their parent topic: raw phrasings split
    /// the topic's traffic.
    pub fn proportion(&self, term: &SearchTerm, state: State, at: Hour) -> f64 {
        match term {
            SearchTerm::Topic(Topic::InternetOutage) => {
                let noise = self.baseline_noise(state, at, 0);
                self.params.baseline_proportion * (noise + self.outage_lift(state, at))
            }
            SearchTerm::Topic(Topic::PowerOutage) => {
                let noise = self.baseline_noise(state, at, 1);
                let lift = if STUDY_RANGE.contains(at) {
                    let idx = usize::try_from(at - STUDY_RANGE.start).unwrap_or(0);
                    f64::from(self.power_lift[state.index()][idx])
                } else {
                    0.0
                };
                self.params.power_baseline_proportion * (noise + lift)
            }
            SearchTerm::Query(q) => {
                let parent = if q.to_ascii_lowercase().contains("power") {
                    SearchTerm::Topic(Topic::PowerOutage)
                } else {
                    SearchTerm::Topic(Topic::InternetOutage)
                };
                let share = query_share(q);
                share * self.proportion(&parent, state, at)
            }
        }
    }

    /// Deterministic multiplicative wobble on the baseline, log-normal
    /// with sigma [`ModelParams::baseline_noise_sigma`], mean ≈ 1.
    fn baseline_noise(&self, state: State, at: Hour, stream: u64) -> f64 {
        let h = mix64(
            self.noise_seed
                // sift-lint: allow(lossy-cast) — hash mixing; two's-complement wrap is the point
                ^ (state.index() as u64).wrapping_mul(0x100_0000_01b3)
                // sift-lint: allow(lossy-cast) — hash mixing; two's-complement wrap is the point
                ^ (at.0 as u64).wrapping_mul(0x9e37_79b9)
                ^ stream.wrapping_mul(0xdead_beef_cafe),
        );
        // Two 32-bit halves → Box–Muller.
        let half = |x: u64| f64::from(u32::try_from(x & 0xffff_ffff).unwrap_or(u32::MAX));
        let u1 = (half(h >> 32) + 1.0) / (f64::from(u32::MAX) + 2.0);
        let u2 = (half(h) + 1.0) / (f64::from(u32::MAX) + 2.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.params.baseline_noise_sigma * z).exp()
    }
}

/// The deterministic share of its parent topic's traffic a raw query
/// phrase carries, in `[0.04, 0.30]`.
pub(crate) fn query_share(q: &str) -> f64 {
    let h = mix64(fnv(q.to_ascii_lowercase().as_bytes()));
    0.04 + 0.26 * (h >> 11) as f64 / (1u64 << 53) as f64 // sift-lint: allow(lossy-cast) — 53-bit values, exact in f64
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: cheap, well-mixed 64-bit hashing.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{OutageEvent, PowerTrigger};

    fn event(state: State, start: i64, duration: u32, severity: f64, power: bool) -> OutageEvent {
        OutageEvent {
            id: 0,
            name: "e".into(),
            cause: if power {
                Cause::Power(PowerTrigger::Storm)
            } else {
                Cause::IspNetwork(crate::terms::Provider::Comcast)
            },
            start: Hour(start),
            duration_h: duration,
            states: vec![(state, 1.0)],
            severity,
            lags_h: vec![0],
        }
    }

    #[test]
    fn lift_matches_events() {
        let s = Scenario::single_region(State::TX, vec![event(State::TX, 100, 10, 20.0, false)]);
        let m = InterestModel::new(&s);
        assert!(m.outage_lift(State::TX, Hour(99)).abs() < 1e-12);
        assert!(m.outage_lift(State::TX, Hour(104)) > 10.0);
        assert!(m.outage_lift(State::CA, Hour(104)).abs() < 1e-12);
        assert!(m.outage_lift(State::TX, Hour(200)).abs() < 1e-12);
    }

    #[test]
    fn proportion_rises_during_event() {
        let s = Scenario::single_region(State::TX, vec![event(State::TX, 100, 10, 20.0, false)]);
        let m = InterestModel::new(&s);
        let term = SearchTerm::Topic(Topic::InternetOutage);
        let quiet = m.proportion(&term, State::TX, Hour(50));
        let busy = m.proportion(&term, State::TX, Hour(104));
        assert!(busy > quiet * 5.0, "busy {busy} quiet {quiet}");
        assert!(quiet > 0.0);
    }

    #[test]
    fn power_topic_only_sees_power_events() {
        let s = Scenario::single_region(
            State::TX,
            vec![
                event(State::TX, 100, 10, 20.0, false),
                event(State::TX, 500, 10, 20.0, true),
            ],
        );
        let m = InterestModel::new(&s);
        let power = SearchTerm::Topic(Topic::PowerOutage);
        let during_isp = m.proportion(&power, State::TX, Hour(104));
        let during_power = m.proportion(&power, State::TX, Hour(504));
        let quiet = m.proportion(&power, State::TX, Hour(300));
        assert!(during_power > quiet * 5.0);
        // ISP outages leave the power topic near baseline.
        assert!(during_isp < quiet * 3.0);
    }

    #[test]
    fn query_is_share_of_topic() {
        let s = Scenario::single_region(State::TX, vec![event(State::TX, 100, 10, 20.0, false)]);
        let m = InterestModel::new(&s);
        let topic = m.proportion(
            &SearchTerm::Topic(Topic::InternetOutage),
            State::TX,
            Hour(104),
        );
        let q = m.proportion(
            &SearchTerm::Query("comcast outage".into()),
            State::TX,
            Hour(104),
        );
        assert!(q > 0.0 && q < topic);
    }

    #[test]
    fn search_volume_tracks_population_and_time_of_day() {
        let s = Scenario::single_region(State::CA, vec![]);
        let m = InterestModel::new(&s);
        let noon = Hour::from_ymdh(2020, 6, 1, 20); // local daytime
        let night = Hour::from_ymdh(2020, 6, 1, 11); // 4am local in CA
        assert!(m.search_volume(State::CA, noon) > m.search_volume(State::CA, night) * 2.0);
        assert!(m.search_volume(State::CA, noon) > m.search_volume(State::WY, noon) * 20.0);
    }

    #[test]
    fn baseline_noise_is_deterministic_and_centred() {
        let s = Scenario::single_region(State::TX, vec![]);
        let m = InterestModel::new(&s);
        let a = m.baseline_noise(State::TX, Hour(77), 0);
        let b = m.baseline_noise(State::TX, Hour(77), 0);
        assert_eq!(a, b);
        let mean: f64 = (0..2000)
            .map(|i| m.baseline_noise(State::TX, Hour(i), 0))
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 1.0).abs() < 0.06, "noise mean {mean}");
    }

    #[test]
    fn query_share_bounds() {
        for q in ["a", "verizon outage", "power outage austin", ""] {
            let s = query_share(q);
            assert!((0.04..=0.30).contains(&s), "{q}: {s}");
        }
        assert_eq!(query_share("X"), query_share("x"), "case-insensitive");
    }
}

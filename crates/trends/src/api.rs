//! Wire types of the trends-service API.
//!
//! These are the request/response documents exchanged over HTTP between
//! the SIFT fetcher and the service (JSON-encoded by `sift-net`). They are
//! deliberately plain data: everything a client learns from the service
//! goes through these types, which is what makes the service boundary —
//! and everything SIFT must infer — explicit.

use crate::terms::SearchTerm;
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};

/// A request for one indexed time frame.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FrameRequest {
    /// The search term to index.
    pub term: SearchTerm,
    /// The geographical scope.
    pub state: State,
    /// First hour of the frame (inclusive).
    pub start: Hour,
    /// Frame length in hourly blocks; at most 168 (one week).
    pub len: u32,
    /// Sample tag. Requests with the same coordinates and tag see the same
    /// random sample; distinct tags draw independent samples. The fetcher
    /// uses the re-fetch round number.
    pub tag: u64,
}

impl FrameRequest {
    /// The requested hour range.
    pub fn range(&self) -> HourRange {
        HourRange::with_len(self.start, i64::from(self.len))
    }
}

/// One indexed time frame.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FrameResponse {
    /// Echo of the request coordinates.
    pub term: SearchTerm,
    /// Echo of the request coordinates.
    pub state: State,
    /// Echo of the request coordinates.
    pub start: Hour,
    /// The indexed data points, one per hourly block, each in `0..=100`
    /// and scaled to the frame's own maximum.
    pub values: Vec<u8>,
}

/// A request for the rising suggestions of a time frame.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RisingRequest {
    /// The input term suggestions are computed around.
    pub term: SearchTerm,
    /// The geographical scope.
    pub state: State,
    /// First hour of the frame (inclusive).
    pub start: Hour,
    /// Frame length in hourly blocks; at most 168. SIFT requests weekly
    /// frames during collection and daily frames when drilling into spike
    /// days.
    pub len: u32,
    /// Sample tag, as in [`FrameRequest::tag`].
    pub tag: u64,
}

impl RisingRequest {
    /// The requested hour range.
    pub fn range(&self) -> HourRange {
        HourRange::with_len(self.start, i64::from(self.len))
    }
}

/// One rising search suggestion.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RisingTerm {
    /// The suggested raw query.
    pub term: String,
    /// The service's weight: proportional to the term's percent increase
    /// in search interest over the frame.
    pub weight: u32,
}

/// The rising suggestions of a frame, heaviest first.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RisingResponse {
    /// Echo of the request coordinates.
    pub state: State,
    /// Echo of the request coordinates.
    pub start: Hour,
    /// Suggestions, sorted by descending weight.
    pub rising: Vec<RisingTerm>,
}

/// Service-side request counters, exposed for the paper's
/// "160 238 time frames requested" style accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Number of frame requests served.
    pub frames_served: u64,
    /// Number of rising-suggestion requests served.
    pub rising_served: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::Topic;

    #[test]
    fn json_round_trip() {
        let req = FrameRequest {
            term: SearchTerm::Topic(Topic::InternetOutage),
            state: State::TX,
            start: Hour(9874),
            len: 168,
            tag: 3,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        let back: FrameRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(req, back);

        let resp = RisingResponse {
            state: State::CA,
            start: Hour(0),
            rising: vec![RisingTerm {
                term: "spectrum internet outage".into(),
                weight: 100,
            }],
        };
        let json = serde_json::to_string(&resp).expect("serialize");
        let back: RisingResponse = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(resp, back);
    }

    #[test]
    fn range_matches_len() {
        let req = FrameRequest {
            term: SearchTerm::Query("internet down".into()),
            state: State::NY,
            start: Hour(100),
            len: 24,
            tag: 0,
        };
        assert_eq!(req.range().len(), 24);
        assert_eq!(req.range().start, Hour(100));
    }
}

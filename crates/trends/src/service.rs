//! The trends-service facade.
//!
//! [`TrendsService`] is the single entry point clients talk to (directly
//! in-process, or over HTTP via `sift-net`). It enforces the service's
//! frame limits, draws a fresh random sample per request, counts requests,
//! and serves rising suggestions.

use crate::api::{FrameRequest, FrameResponse, RisingRequest, RisingResponse, ServiceStats};
use crate::frame::build_frame;
use crate::interest::{InterestModel, ModelParams};
use crate::rising::rising_terms;
use crate::sampling::{request_rng, request_seed, SamplerConfig};
use crate::scenario::{EventIndex, Scenario};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Longest frame served at hourly resolution: one week, 168 blocks (§2).
pub const MAX_HOURLY_FRAME: u32 = 168;

/// Service configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Seed of the service's sampling randomness (independent of the
    /// scenario seed: re-deploying the service re-samples, the world stays
    /// the same).
    pub seed: u64,
    /// Sampling behaviour.
    pub sampler: SamplerConfig,
    /// Interest-model parameters.
    pub model: ModelParams,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 0x6007_1e7d,
            sampler: SamplerConfig::default(),
            model: ModelParams::default(),
        }
    }
}

/// Errors a request can fail with.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ServiceError {
    /// The requested frame exceeds the hourly-resolution limit.
    FrameTooLong {
        /// Requested length in hours.
        requested: u32,
        /// Maximum allowed length.
        max: u32,
    },
    /// The requested frame is empty.
    EmptyFrame,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::FrameTooLong { requested, max } => write!(
                f,
                "hourly frames are limited to {max} blocks, requested {requested}"
            ),
            ServiceError::EmptyFrame => write!(f, "requested frame is empty"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The simulated trends aggregation service.
pub struct TrendsService {
    config: ServiceConfig,
    scenario: Scenario,
    index: EventIndex,
    model: InterestModel,
    frames_served: AtomicU64,
    rising_served: AtomicU64,
}

impl TrendsService {
    /// Builds a service over a scenario with the given configuration.
    pub fn new(scenario: Scenario, config: ServiceConfig) -> Self {
        let model = InterestModel::with_params(&scenario, config.model);
        let index = scenario.build_index();
        TrendsService {
            config,
            scenario,
            index,
            model,
            frames_served: AtomicU64::new(0),
            rising_served: AtomicU64::new(0),
        }
    }

    /// Builds a service with default configuration.
    pub fn with_defaults(scenario: Scenario) -> Self {
        Self::new(scenario, ServiceConfig::default())
    }

    /// The scenario driving this service — ground truth, available to the
    /// evaluation harness but never exposed over the API.
    pub fn ground_truth(&self) -> &Scenario {
        &self.scenario
    }

    /// The interest model (ground truth, evaluation only).
    pub fn interest_model(&self) -> &InterestModel {
        &self.model
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Serves one indexed time frame.
    pub fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, ServiceError> {
        validate_len(req.len)?;
        self.frames_served.fetch_add(1, Ordering::Relaxed);
        sift_obs::counter("sift_trends_frames_served_total", &[]).inc();
        let seed = request_seed(self.config.seed, req.state, &req.term, req.start, req.tag);
        let mut rng = request_rng(seed);
        let values = build_frame(
            &mut rng,
            &self.config.sampler,
            &self.model,
            &req.term,
            req.state,
            req.range(),
        );
        Ok(FrameResponse {
            term: req.term.clone(),
            state: req.state,
            start: req.start,
            values,
        })
    }

    /// Serves the rising suggestions of a frame.
    pub fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, ServiceError> {
        validate_len(req.len)?;
        self.rising_served.fetch_add(1, Ordering::Relaxed);
        sift_obs::counter("sift_trends_rising_served_total", &[]).inc();
        // Distinct seed stream from frames: suggestions and indices are
        // sampled independently by the service.
        let seed = request_seed(
            self.config.seed ^ 0x5151_5151,
            req.state,
            &req.term,
            req.start,
            req.tag,
        );
        let mut rng = request_rng(seed);
        let rising = rising_terms(
            &mut rng,
            &self.scenario,
            &self.index,
            &self.model,
            req.state,
            req.range(),
        );
        Ok(RisingResponse {
            state: req.state,
            start: req.start,
            rising,
        })
    }

    /// Request counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            frames_served: self.frames_served.load(Ordering::Relaxed),
            rising_served: self.rising_served.load(Ordering::Relaxed),
        }
    }
}

fn validate_len(len: u32) -> Result<(), ServiceError> {
    if len == 0 {
        return Err(ServiceError::EmptyFrame);
    }
    if len > MAX_HOURLY_FRAME {
        return Err(ServiceError::FrameTooLong {
            requested: len,
            max: MAX_HOURLY_FRAME,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Cause, OutageEvent};
    use crate::terms::{Provider, SearchTerm, Topic};
    use sift_geo::State;
    use sift_simtime::Hour;

    fn service() -> TrendsService {
        let event = OutageEvent {
            id: 0,
            name: "e".into(),
            cause: Cause::IspNetwork(Provider::Spectrum),
            start: Hour(1000),
            duration_h: 10,
            states: vec![(State::CA, 1.0)],
            severity: 25.0,
            lags_h: vec![0],
        };
        TrendsService::with_defaults(Scenario::single_region(State::CA, vec![event]))
    }

    fn frame_req(start: i64, len: u32, tag: u64) -> FrameRequest {
        FrameRequest {
            term: SearchTerm::Topic(Topic::InternetOutage),
            state: State::CA,
            start: Hour(start),
            len,
            tag,
        }
    }

    #[test]
    fn frame_limits_enforced() {
        let s = service();
        assert_eq!(
            s.fetch_frame(&frame_req(0, 169, 0)),
            Err(ServiceError::FrameTooLong {
                requested: 169,
                max: 168
            })
        );
        assert_eq!(
            s.fetch_frame(&frame_req(0, 0, 0)),
            Err(ServiceError::EmptyFrame)
        );
        assert!(s.fetch_frame(&frame_req(0, 168, 0)).is_ok());
        assert!(s.fetch_frame(&frame_req(0, 24, 0)).is_ok());
    }

    #[test]
    fn same_tag_same_sample_different_tag_differs() {
        let s = service();
        let a = s.fetch_frame(&frame_req(900, 168, 0)).expect("frame");
        let b = s.fetch_frame(&frame_req(900, 168, 0)).expect("frame");
        assert_eq!(a, b, "same coordinates and tag reproduce the sample");
        let c = s.fetch_frame(&frame_req(900, 168, 1)).expect("frame");
        assert_ne!(a.values, c.values, "a new tag draws a fresh sample");
    }

    #[test]
    fn stats_count_requests() {
        let s = service();
        let _ = s.fetch_frame(&frame_req(900, 168, 0));
        let _ = s.fetch_frame(&frame_req(900, 168, 1));
        let _ = s.fetch_rising(&RisingRequest {
            term: SearchTerm::Topic(Topic::InternetOutage),
            state: State::CA,
            start: Hour(900),
            len: 168,
            tag: 0,
        });
        let stats = s.stats();
        assert_eq!(stats.frames_served, 2);
        assert_eq!(stats.rising_served, 1);
    }

    #[test]
    fn rising_reflects_the_event() {
        let s = service();
        let r = s
            .fetch_rising(&RisingRequest {
                term: SearchTerm::Topic(Topic::InternetOutage),
                state: State::CA,
                start: Hour(900),
                len: 168,
                tag: 0,
            })
            .expect("rising");
        assert!(r.rising.iter().any(|t| t.term.contains("Spectrum")));
    }

    #[test]
    fn errors_render() {
        let e = ServiceError::FrameTooLong {
            requested: 700,
            max: 168,
        };
        assert!(e.to_string().contains("700"));
    }
}

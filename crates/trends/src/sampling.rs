//! Request-level random sampling.
//!
//! "When a request arrives, GT draws an unbiased random sample of Google
//! search data for the given time frame and geographical area" (§2). The
//! sampler reproduces that: each request draws a fresh sample of the
//! region's search volume and counts the hits on the requested term, so
//! repeated requests for the same frame return *different* indices whose
//! error shrinks as `1/sqrt(sample size)` — the property SIFT's iterative
//! re-fetch averaging (§3.2) exploits.

use crate::dist;
use crate::interest::mix64;
use crate::terms::SearchTerm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::Hour;

/// Sampling configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Fraction of the search volume included in each request's sample.
    pub sample_rate: f64,
    /// Sampled counts strictly below this are rounded to zero before
    /// indexing, anonymising tiny volumes (§2, "Data points").
    pub anonymity_threshold: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            sample_rate: 0.20,
            anonymity_threshold: 4,
        }
    }
}

/// Derives the RNG seed for one request's sample.
///
/// The seed mixes the service seed, the request coordinates and a *sample
/// tag*. Two requests with identical coordinates and tag see the same
/// sample (making distributed fetching reproducible regardless of arrival
/// order); changing the tag — as the fetcher does per re-fetch round —
/// draws an independent sample.
pub fn request_seed(
    service_seed: u64,
    state: State,
    term: &SearchTerm,
    frame_start: Hour,
    tag: u64,
) -> u64 {
    let mut h = service_seed;
    h = mix64(h ^ (state.index() as u64));
    for b in term.canonical().bytes() {
        h = mix64(h ^ u64::from(b));
    }
    h = mix64(h ^ (frame_start.0 as u64));
    mix64(h ^ tag)
}

/// Draws one hourly block's sample: `(sampled searches, term hits)`.
///
/// `volume` is the true number of searches that hour, `proportion` the
/// true share matching the term. The sample of searches is Poisson
/// (independent inclusion of each search at `sample_rate`), and hits
/// within the sample are binomial. The service's data point is the
/// *proportion estimate* `hits / sampled` — shares of all searches, not
/// absolute volumes (§2).
pub fn sample_hour(
    rng: &mut ChaCha8Rng,
    cfg: &SamplerConfig,
    volume: f64,
    proportion: f64,
) -> (u64, u64) {
    let sampled = dist::poisson(rng, volume * cfg.sample_rate);
    let hits = dist::binomial(rng, sampled, proportion.clamp(0.0, 1.0));
    (sampled, hits)
}

/// Convenience: just the hit count of [`sample_hour`].
pub fn sample_count(
    rng: &mut ChaCha8Rng,
    cfg: &SamplerConfig,
    volume: f64,
    proportion: f64,
) -> u64 {
    sample_hour(rng, cfg, volume, proportion).1
}

/// Applies the anonymity rounding: counts below the threshold become zero.
pub fn anonymize(cfg: &SamplerConfig, count: u64) -> u64 {
    if count < cfg.anonymity_threshold {
        0
    } else {
        count
    }
}

/// A convenience RNG for one request.
pub fn request_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::Topic;

    fn term() -> SearchTerm {
        SearchTerm::Topic(Topic::InternetOutage)
    }

    #[test]
    fn seed_is_stable_and_tag_sensitive() {
        let a = request_seed(1, State::TX, &term(), Hour(100), 0);
        let b = request_seed(1, State::TX, &term(), Hour(100), 0);
        let c = request_seed(1, State::TX, &term(), Hour(100), 1);
        let d = request_seed(1, State::CA, &term(), Hour(100), 0);
        let e = request_seed(2, State::TX, &term(), Hour(100), 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e);
    }

    #[test]
    fn sampling_is_unbiased() {
        let cfg = SamplerConfig::default();
        let mut rng = request_rng(9);
        let volume = 200_000.0;
        let p = 2.0e-4;
        let n = 3000;
        let total: u64 = (0..n)
            .map(|_| sample_count(&mut rng, &cfg, volume, p))
            .sum();
        let mean = total as f64 / n as f64;
        let expected = volume * cfg.sample_rate * p; // 4.0
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn error_shrinks_with_volume() {
        let cfg = SamplerConfig::default();
        let mut rng = request_rng(10);
        let mut rel_sd = |volume: f64| {
            let p = 1.0e-3;
            let n = 2000;
            let samples: Vec<f64> = (0..n)
                .map(|_| sample_count(&mut rng, &cfg, volume, p) as f64)
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt() / mean
        };
        let small = rel_sd(50_000.0);
        let large = rel_sd(5_000_000.0);
        assert!(
            large < small * 0.25,
            "relative error must shrink with sample size: {small} vs {large}"
        );
    }

    #[test]
    fn anonymity_rounds_tiny_counts() {
        let cfg = SamplerConfig {
            sample_rate: 0.1,
            anonymity_threshold: 3,
        };
        assert_eq!(anonymize(&cfg, 0), 0);
        assert_eq!(anonymize(&cfg, 2), 0);
        assert_eq!(anonymize(&cfg, 3), 3);
        assert_eq!(anonymize(&cfg, 100), 100);
    }
}

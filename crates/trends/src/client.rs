//! The client abstraction over the trends service.
//!
//! The SIFT pipeline is agnostic to *how* it reaches the service: directly
//! in-process (the experiments harness's fast path) or over HTTP through
//! fetcher units (the deployment path, implemented in `sift-fetcher`).
//! Both implement [`TrendsClient`].

use crate::api::{FrameRequest, FrameResponse, RisingRequest, RisingResponse};
use crate::service::{ServiceError, TrendsService};
use std::fmt;

/// Errors surfaced while fetching from the service.
#[derive(Debug)]
pub enum FetchError {
    /// The service rejected the request (frame limits etc.).
    Service(ServiceError),
    /// Transport-level failure (HTTP path).
    Transport(String),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Service(e) => write!(f, "service error: {e}"),
            FetchError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Anything that can answer trends requests.
pub trait TrendsClient: Send + Sync {
    /// Fetches one indexed time frame.
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError>;
    /// Fetches the rising suggestions of a frame.
    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError>;
    /// The identity this client crawls under (diagnostics, rate-limit
    /// keying on the HTTP path).
    fn identity(&self) -> &str {
        "anonymous"
    }
    /// Whether the client believes a request would currently be attempted.
    ///
    /// The HTTP path overrides this with its circuit-breaker state so
    /// orchestration layers (the fetcher queue, the re-fetch loop) can
    /// shed or pause optional work instead of queueing doomed requests
    /// behind an open breaker. Must not mutate breaker state: it is a
    /// peek, not an admission.
    fn healthy(&self) -> bool {
        true
    }
}

impl TrendsClient for TrendsService {
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
        TrendsService::fetch_frame(self, req).map_err(FetchError::Service)
    }

    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
        TrendsService::fetch_rising(self, req).map_err(FetchError::Service)
    }

    fn identity(&self) -> &str {
        "in-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::terms::SearchTerm;
    use sift_geo::State;
    use sift_simtime::Hour;

    #[test]
    fn service_is_a_client() {
        let service = TrendsService::with_defaults(Scenario::single_region(State::CA, vec![]));
        let client: &dyn TrendsClient = &service;
        let resp = client
            .fetch_frame(&FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::CA,
                start: Hour(0),
                len: 168,
                tag: 0,
            })
            .expect("frame");
        assert_eq!(resp.values.len(), 168);
        assert_eq!(client.identity(), "in-process");
    }

    #[test]
    fn service_errors_map() {
        let service = TrendsService::with_defaults(Scenario::single_region(State::CA, vec![]));
        let client: &dyn TrendsClient = &service;
        let err = client
            .fetch_frame(&FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::CA,
                start: Hour(0),
                len: 500,
                tag: 0,
            })
            .unwrap_err();
        assert!(matches!(err, FetchError::Service(_)));
        assert!(err.to_string().contains("168"));
    }
}

//! Search vocabulary: topics, providers and phrase templates.
//!
//! The trends service distinguishes *search topics* (semantic clusters
//! maintained by the service, e.g. `<Internet outage>`) from raw *search
//! queries* (literal user phrasings). SIFT tracks the `<Internet outage>`
//! topic and receives raw queries back as rising suggestions; this module
//! owns both vocabularies.

use serde::{Deserialize, Serialize};
use sift_geo::State;
use std::fmt;

/// A term the service can be asked about: either a curated topic or a raw
/// query string.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SearchTerm {
    /// A curated search topic (semantic cluster of queries).
    Topic(Topic),
    /// A literal query string, matched after normalization.
    Query(String),
}

impl SearchTerm {
    /// Parses the service's canonical string form: topics are spelled
    /// `topic:<name>`, anything else is a raw query.
    pub fn parse(s: &str) -> SearchTerm {
        match s.strip_prefix("topic:") {
            Some(name) => Topic::from_name(name)
                .map(SearchTerm::Topic)
                .unwrap_or_else(|| SearchTerm::Query(s.to_owned())),
            None => SearchTerm::Query(s.to_owned()),
        }
    }

    /// Canonical string form, inverse of [`SearchTerm::parse`].
    pub fn canonical(&self) -> String {
        match self {
            SearchTerm::Topic(t) => format!("topic:{}", t.name()),
            SearchTerm::Query(q) => q.clone(),
        }
    }
}

impl fmt::Display for SearchTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchTerm::Topic(t) => write!(f, "<{}>", t.name()),
            SearchTerm::Query(q) => write!(f, "<{q}>"),
        }
    }
}

/// The curated search topics the simulator models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Topic {
    /// The `<Internet outage>` topic SIFT tracks: every phrasing of "my
    /// internet is down".
    InternetOutage,
    /// The `<Power outage>` topic, the paper's key context annotation.
    PowerOutage,
}

impl Topic {
    /// Service-facing topic name.
    pub fn name(self) -> &'static str {
        match self {
            Topic::InternetOutage => "Internet outage",
            Topic::PowerOutage => "Power outage",
        }
    }

    /// Case-insensitive lookup by name.
    pub fn from_name(s: &str) -> Option<Topic> {
        if s.eq_ignore_ascii_case("internet outage") {
            Some(Topic::InternetOutage)
        } else if s.eq_ignore_ascii_case("power outage") {
            Some(Topic::PowerOutage)
        } else {
            None
        }
    }
}

/// Service and application providers whose outages users search for.
///
/// The list mirrors the providers appearing in the paper's tables and
/// heavy-hitter analysis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Provider {
    // Fixed-line ISPs.
    Comcast,
    Xfinity,
    Spectrum,
    Att,
    Verizon,
    CoxCommunications,
    CenturyLink,
    Frontier,
    // Mobile carriers.
    TMobile,
    Sprint,
    MetroPcs,
    // CDN / cloud.
    Akamai,
    Cloudflare,
    Fastly,
    Aws,
    // Applications.
    Youtube,
    Facebook,
    Instagram,
    Netflix,
    Zoom,
}

impl Provider {
    /// Every modelled provider.
    pub const ALL: [Provider; 20] = [
        Provider::Comcast,
        Provider::Xfinity,
        Provider::Spectrum,
        Provider::Att,
        Provider::Verizon,
        Provider::CoxCommunications,
        Provider::CenturyLink,
        Provider::Frontier,
        Provider::TMobile,
        Provider::Sprint,
        Provider::MetroPcs,
        Provider::Akamai,
        Provider::Cloudflare,
        Provider::Fastly,
        Provider::Aws,
        Provider::Youtube,
        Provider::Facebook,
        Provider::Instagram,
        Provider::Netflix,
        Provider::Zoom,
    ];

    /// The fixed-line ISPs (used for regional network outages).
    pub const ISPS: [Provider; 8] = [
        Provider::Comcast,
        Provider::Xfinity,
        Provider::Spectrum,
        Provider::Att,
        Provider::Verizon,
        Provider::CoxCommunications,
        Provider::CenturyLink,
        Provider::Frontier,
    ];

    /// The mobile carriers.
    pub const MOBILE: [Provider; 3] = [Provider::TMobile, Provider::Sprint, Provider::MetroPcs];

    /// CDN and cloud providers (outages are typically nationwide).
    pub const CDN_CLOUD: [Provider; 4] = [
        Provider::Akamai,
        Provider::Cloudflare,
        Provider::Fastly,
        Provider::Aws,
    ];

    /// Consumer applications (outages are nationwide and ping-invisible).
    pub const APPS: [Provider; 5] = [
        Provider::Youtube,
        Provider::Facebook,
        Provider::Instagram,
        Provider::Netflix,
        Provider::Zoom,
    ];

    /// Human-readable name as it appears in search phrases.
    pub fn name(self) -> &'static str {
        match self {
            Provider::Comcast => "Comcast",
            Provider::Xfinity => "Xfinity",
            Provider::Spectrum => "Spectrum",
            Provider::Att => "AT&T",
            Provider::Verizon => "Verizon",
            Provider::CoxCommunications => "Cox Communications",
            Provider::CenturyLink => "CenturyLink",
            Provider::Frontier => "Frontier",
            Provider::TMobile => "T-Mobile",
            Provider::Sprint => "Sprint",
            Provider::MetroPcs => "Metro PCS",
            Provider::Akamai => "Akamai",
            Provider::Cloudflare => "Cloudflare",
            Provider::Fastly => "Fastly",
            Provider::Aws => "AWS",
            Provider::Youtube => "Youtube",
            Provider::Facebook => "Facebook",
            Provider::Instagram => "Instagram",
            Provider::Netflix => "Netflix",
            Provider::Zoom => "Zoom",
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Phrasing templates users reach for when a provider misbehaves. Each
/// template yields a distinct rising query; together with per-state and
/// per-city phrasings they produce the long-tailed suggestion vocabulary
/// the paper observes (6655 distinct terms, 33 of which cover half the
/// mass).
pub fn provider_phrases(p: Provider) -> Vec<String> {
    let n = p.name();
    vec![
        format!("{n} outage"),
        format!("is {n} down"),
        format!("{n} down"),
        format!("{n} internet outage"),
        format!("{n} not working"),
        format!("{n} outage map"),
    ]
}

/// Phrasings users reach for in a power outage, localised to a state.
pub fn power_phrases(state: State) -> Vec<String> {
    let mut out = vec!["power outage".to_owned(), "power outage map".to_owned()];
    for city in major_cities(state) {
        out.push(format!("{} power outage", city.to_lowercase()));
    }
    out.push(format!("power outage {}", state.name().to_lowercase()));
    out
}

/// Generic internet-outage phrasings localised to a state.
pub fn generic_outage_phrases(state: State) -> Vec<String> {
    vec![
        "internet outage".to_owned(),
        "internet down".to_owned(),
        "is my internet down".to_owned(),
        format!("internet outage {}", state.name().to_lowercase()),
    ]
}

/// The two largest cities of each region, for localized phrasings like the
/// paper's `<san jose power outage>` example.
pub fn major_cities(state: State) -> [&'static str; 2] {
    use State::*;
    match state {
        AK => ["Anchorage", "Fairbanks"],
        AL => ["Birmingham", "Huntsville"],
        AR => ["Little Rock", "Fayetteville"],
        AZ => ["Phoenix", "Tucson"],
        CA => ["Los Angeles", "San Jose"],
        CO => ["Denver", "Colorado Springs"],
        CT => ["Bridgeport", "New Haven"],
        DC => ["Washington", "Georgetown"],
        DE => ["Wilmington", "Dover"],
        FL => ["Jacksonville", "Miami"],
        GA => ["Atlanta", "Savannah"],
        HI => ["Honolulu", "Hilo"],
        IA => ["Des Moines", "Cedar Rapids"],
        ID => ["Boise", "Meridian"],
        IL => ["Chicago", "Aurora"],
        IN => ["Indianapolis", "Fort Wayne"],
        KS => ["Wichita", "Overland Park"],
        KY => ["Louisville", "Lexington"],
        LA => ["New Orleans", "Baton Rouge"],
        MA => ["Boston", "Worcester"],
        MD => ["Baltimore", "Columbia"],
        ME => ["Portland", "Lewiston"],
        MI => ["Detroit", "Grand Rapids"],
        MN => ["Minneapolis", "Saint Paul"],
        MO => ["Kansas City", "Saint Louis"],
        MS => ["Jackson", "Gulfport"],
        MT => ["Billings", "Missoula"],
        NC => ["Charlotte", "Raleigh"],
        ND => ["Fargo", "Bismarck"],
        NE => ["Omaha", "Lincoln"],
        NH => ["Manchester", "Nashua"],
        NJ => ["Newark", "Jersey City"],
        NM => ["Albuquerque", "Las Cruces"],
        NV => ["Las Vegas", "Reno"],
        NY => ["New York", "Buffalo"],
        OH => ["Columbus", "Cleveland"],
        OK => ["Oklahoma City", "Tulsa"],
        OR => ["Portland", "Eugene"],
        PA => ["Philadelphia", "Pittsburgh"],
        RI => ["Providence", "Warwick"],
        SC => ["Charleston", "Columbia"],
        SD => ["Sioux Falls", "Rapid City"],
        TN => ["Nashville", "Memphis"],
        TX => ["Houston", "Austin"],
        UT => ["Salt Lake City", "Provo"],
        VA => ["Virginia Beach", "Richmond"],
        VT => ["Burlington", "Rutland"],
        WA => ["Seattle", "Spokane"],
        WI => ["Milwaukee", "Madison"],
        WV => ["Charleston", "Huntington"],
        WY => ["Cheyenne", "Casper"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_parse_round_trip() {
        let t = SearchTerm::Topic(Topic::InternetOutage);
        assert_eq!(SearchTerm::parse(&t.canonical()), t);
        let q = SearchTerm::Query("is verizon down".into());
        assert_eq!(SearchTerm::parse(&q.canonical()), q);
        // Unknown topic names degrade to raw queries rather than erroring.
        assert_eq!(
            SearchTerm::parse("topic:Quantum outage"),
            SearchTerm::Query("topic:Quantum outage".into())
        );
    }

    #[test]
    fn topic_lookup_case_insensitive() {
        assert_eq!(
            Topic::from_name("internet OUTAGE"),
            Some(Topic::InternetOutage)
        );
        assert_eq!(Topic::from_name("Power outage"), Some(Topic::PowerOutage));
        assert_eq!(Topic::from_name("weather"), None);
    }

    #[test]
    fn provider_groups_partition_all() {
        let mut count = 0;
        count += Provider::ISPS.len();
        count += Provider::MOBILE.len();
        count += Provider::CDN_CLOUD.len();
        count += Provider::APPS.len();
        assert_eq!(count, Provider::ALL.len());
    }

    #[test]
    fn phrases_are_distinct() {
        let ps = provider_phrases(Provider::Verizon);
        let mut sorted = ps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ps.len(), sorted.len());
        assert!(ps.contains(&"is Verizon down".to_string()));
    }

    #[test]
    fn san_jose_power_outage_exists() {
        let phrases = power_phrases(sift_geo::State::CA);
        assert!(phrases.contains(&"san jose power outage".to_string()));
        assert!(phrases.contains(&"power outage".to_string()));
    }

    #[test]
    fn every_state_has_two_cities() {
        for s in State::ALL {
            let [a, b] = major_cities(s);
            assert_ne!(a, b);
            assert!(!a.is_empty() && !b.is_empty());
        }
    }
}

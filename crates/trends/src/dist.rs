//! Small deterministic sampling distributions.
//!
//! `rand` (without `rand_distr`) only ships uniform primitives; the world
//! model needs normal, log-normal and Poisson draws. The implementations
//! here are the textbook ones — Box–Muller, exponentiation, Knuth /
//! normal-approximation — which are exact enough for a workload generator
//! and keep the dependency set at the sanctioned crates.

use rand::Rng;

/// A standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal draw with the given median and shape `sigma`, clamped to
/// `[lo, hi]`.
pub fn lognormal_clamped<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0 && lo <= hi);
    let x = (median.ln() + sigma * standard_normal(rng)).exp();
    x.clamp(lo, hi)
}

/// A Poisson draw with mean `lambda`.
///
/// Knuth's product method below a mean of 30; above it the normal
/// approximation (with continuity correction) is indistinguishable for our
/// purposes and O(1).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            // At lambda < 30 the probability of k exceeding a few hundred
            // is vanishing; the loop terminates with probability one.
        }
    } else {
        let x = lambda + lambda.sqrt() * standard_normal(rng) + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64 // sift-lint: allow(lossy-cast) — float→int `as` saturates; truncating is the draw
        }
    }
}

/// A binomial draw with `n` trials of probability `p`.
///
/// The service samples search hits out of sampled search volume; `n` is
/// large and `p` tiny, so Poisson(np) is used beyond small `n` — the same
/// regime approximation the normal-approximation argument in §3.2 rests
/// on.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        poisson(rng, n as f64 * p).min(n) // sift-lint: allow(lossy-cast) — n ≪ 2⁵³, so f64 holds it exactly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_and_bounds() {
        let mut r = rng();
        let mut below = 0;
        let n = 10_000;
        for _ in 0..n {
            let x = lognormal_clamped(&mut r, 2.0, 0.8, 0.5, 50.0);
            assert!((0.5..=50.0).contains(&x));
            if x < 2.0 {
                below += 1;
            }
        }
        let frac = f64::from(below) / n as f64;
        assert!((0.45..0.55).contains(&frac), "median check: {frac}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = rng();
        for &lambda in &[0.5, 3.0, 20.0, 100.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.1 + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn binomial_edges_and_mean() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        let n = 10_000u64;
        let total: u64 = (0..n).map(|_| binomial(&mut r, 40, 0.25)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
        // Never exceeds trials, even through the Poisson branch.
        for _ in 0..1000 {
            assert!(binomial(&mut r, 100, 0.9) <= 100);
        }
    }
}

//! Ground-truth outage events.
//!
//! An [`OutageEvent`] is something that *really happened* in the simulated
//! world: a provider failure, a power outage, a cloud misconfiguration. It
//! drives user search interest (through [`crate::interest`]) and — for
//! events that break network reachability — probe responsiveness (through
//! the `sift-probe` crate). SIFT never sees events directly; it must
//! recover them from the trends service.

use crate::terms::{power_phrases, provider_phrases, Provider};
use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};

/// What triggered a power outage. The paper's context analysis surfaces
/// climate triggers as a dominant cause of long outages (Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PowerTrigger {
    /// Severe winter weather (the Feb 2021 Texas grid failure).
    WinterStorm,
    /// Heat-wave driven rotating blackouts (CA, Sep 2020).
    HeatWave,
    /// Wildfire-related shutoffs and damage (CA, Aug–Sep 2020).
    Wildfire,
    /// Generic storm damage.
    Storm,
    /// Tornado damage (KY, Dec 2021).
    Tornado,
    /// Flooding / heavy rain (MI, Aug 2021).
    HeavyRain,
    /// Physical infrastructure damage (CO severed line, Jul 2021).
    SeveredLine,
    /// Grid-side failure with no weather trigger.
    GridFailure,
}

impl PowerTrigger {
    /// Human-readable description used in reports, e.g. `"Winter storm"`.
    pub fn description(self) -> &'static str {
        match self {
            PowerTrigger::WinterStorm => "Winter storm",
            PowerTrigger::HeatWave => "Heat wave",
            PowerTrigger::Wildfire => "Wildfire",
            PowerTrigger::Storm => "Storm",
            PowerTrigger::Tornado => "Tornado",
            PowerTrigger::HeavyRain => "Heavy rain and storm",
            PowerTrigger::SeveredLine => "Severed power line",
            PowerTrigger::GridFailure => "Grid failure",
        }
    }

    /// True if the trigger is a climate/weather phenomenon (the paper's
    /// "climate disasters dictate the outliers" observation).
    pub fn is_climate(self) -> bool {
        !matches!(self, PowerTrigger::SeveredLine | PowerTrigger::GridFailure)
    }
}

/// The root cause of an outage event, determining which search phrases
/// rise and whether active probing can see the event at all.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Cause {
    /// A fixed-line ISP's network failure. Probe-visible.
    IspNetwork(Provider),
    /// A mobile carrier failure. Invisible to probing (mobile nodes do not
    /// answer probes — the paper's T-Mobile example, §4.1).
    MobileCarrier(Provider),
    /// CDN / cloud-provider failure (Akamai DNS misconfiguration, Fastly,
    /// Cloudflare, AWS). Servers stay pingable, so probing misses it
    /// (§4.2).
    CdnOrCloud(Provider),
    /// Application-level failure (Youtube buffering, Facebook BGP...).
    /// Also invisible to probing.
    Application(Provider),
    /// A power outage taking network equipment down with it.
    /// Probe-visible.
    Power(PowerTrigger),
}

impl Cause {
    /// Whether the event makes end hosts unreachable to active probing.
    ///
    /// This single bit reproduces the paper's central visibility contrast:
    /// SIFT sees what users feel, probing sees what stops answering pings.
    pub fn affects_reachability(self) -> bool {
        matches!(self, Cause::IspNetwork(_) | Cause::Power(_))
    }

    /// The provider implicated, if any.
    pub fn provider(self) -> Option<Provider> {
        match self {
            Cause::IspNetwork(p)
            | Cause::MobileCarrier(p)
            | Cause::CdnOrCloud(p)
            | Cause::Application(p) => Some(p),
            Cause::Power(_) => None,
        }
    }

    /// Short label for reports: the provider name, or the power trigger.
    pub fn label(self) -> String {
        match self {
            Cause::Power(t) => t.description().to_owned(),
            other => other
                .provider()
                // sift-lint: allow(no-panic) — the match arm above peels off the only provider-less cause
                .expect("non-power causes carry a provider")
                .name()
                .to_owned(),
        }
    }
}

/// A ground-truth outage event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutageEvent {
    /// Stable identifier, unique within a scenario.
    pub id: u32,
    /// Human label for reports, e.g. `"Texas winter storm"`.
    pub name: String,
    /// Root cause.
    pub cause: Cause,
    /// First hour at which user interest rises (UTC).
    pub start: Hour,
    /// How long user interest stays elevated, in hours (≥ 1).
    pub duration_h: u32,
    /// Affected regions with per-region intensity in `(0, 1]`, scaling the
    /// interest lift (and, for probe-visible causes, the fraction of
    /// blocks knocked out).
    pub states: Vec<(State, f64)>,
    /// Peak interest lift in the fully-affected region, as a multiple of
    /// the baseline `<Internet outage>` proportion.
    pub severity: f64,
    /// Per-region start lag in hours, keyed parallel to `states`. Zero for
    /// synchronous events; the Facebook outage uses local-time lags
    /// (§4.2).
    pub lags_h: Vec<u32>,
}

impl OutageEvent {
    /// The UTC window of elevated interest in the *unlagged* regions.
    pub fn window(&self) -> HourRange {
        HourRange::with_len(self.start, i64::from(self.duration_h))
    }

    /// The window of elevated interest in region index `i` of
    /// [`OutageEvent::states`], including its lag.
    pub fn window_in(&self, i: usize) -> HourRange {
        let lag = i64::from(*self.lags_h.get(i).unwrap_or(&0));
        HourRange::with_len(self.start + lag, i64::from(self.duration_h))
    }

    /// Interest lift multiplier at `at` for the region at index `i`:
    /// `severity * intensity * shape(t)`, where `shape` rises steeply over
    /// the first hours, plateaus, and decays towards the end of the
    /// window. Zero outside the window.
    pub fn lift_at(&self, i: usize, at: Hour) -> f64 {
        let w = self.window_in(i);
        if !w.contains(at) {
            return 0.0;
        }
        let t = (at - w.start) as f64;
        let d = self.duration_h as f64;
        self.severity * self.states[i].1 * shape(t, d)
    }

    /// True if this event's cause is a power outage.
    pub fn is_power(&self) -> bool {
        matches!(self.cause, Cause::Power(_))
    }

    /// The search phrases this event drives upward in region `state`,
    /// beyond the `<Internet outage>` topic itself.
    pub fn rising_phrases(&self, state: State) -> Vec<String> {
        match self.cause {
            Cause::Power(_) => {
                let mut out = power_phrases(state);
                // Power outages take providers down with them, so provider
                // queries rise too ("multiple ISP names for the winter
                // storm", §1; the Fig. 2 example suggests <spectrum
                // internet outage> and <metro pcs outage> alongside
                // <san jose power outage>). Which providers depends on
                // who serves the affected area — modelled as a
                // deterministic per-event choice.
                let isp =
                    Provider::ISPS[(self.id as usize * 7 + state.index()) % Provider::ISPS.len()];
                let mobile = Provider::MOBILE[(self.id as usize * 13) % Provider::MOBILE.len()];
                out.push(format!("{} internet outage", isp.name()));
                out.push(format!("{} outage", mobile.name()));
                out
            }
            Cause::IspNetwork(p)
            | Cause::MobileCarrier(p)
            | Cause::CdnOrCloud(p)
            | Cause::Application(p) => {
                let mut out = provider_phrases(p);
                // Localized phrasings give the suggestion vocabulary its
                // long tail (the paper observes 6655 distinct terms).
                out.push(format!(
                    "{} outage {}",
                    p.name(),
                    state.name().to_lowercase()
                ));
                let [a, b] = crate::terms::major_cities(state);
                out.push(format!("{} outage {}", p.name(), a.to_lowercase()));
                out.push(format!("is {} down in {}", p.name(), b.to_lowercase()));
                out
            }
        }
    }
}

/// Temporal shape of user interest within an event window.
///
/// Interest jumps to its maximum within the first two hours (users notice
/// fast, and everyone searches at once — which is also why concurrent
/// spikes across states peak in the same hour), then decays gently while
/// the outage lasts, with a final rolloff in the last quarter of the
/// window. Matches the asymmetric spikes of the paper's Fig. 1.
fn shape(t: f64, duration: f64) -> f64 {
    debug_assert!(t >= 0.0 && t < duration);
    let rise = ((t + 1.0) / 2.0).min(1.0);
    // Gentle attention decay after the peak: stays well above the
    // half-per-hour detection walk threshold.
    let decay = (-0.045 * (t - 1.0).max(0.0)).exp();
    let tail_len = (duration / 4.0).max(1.0);
    let remaining = duration - t;
    let fall = (remaining / tail_len).min(1.0);
    rise * decay * fall
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> OutageEvent {
        OutageEvent {
            id: 1,
            name: "test".into(),
            cause: Cause::IspNetwork(Provider::Verizon),
            start: Hour(100),
            duration_h: 8,
            states: vec![(State::TX, 1.0), (State::OK, 0.5)],
            severity: 10.0,
            lags_h: vec![0, 2],
        }
    }

    #[test]
    fn window_and_lag() {
        let e = event();
        assert_eq!(e.window(), HourRange::new(Hour(100), Hour(108)));
        assert_eq!(e.window_in(0), HourRange::new(Hour(100), Hour(108)));
        assert_eq!(e.window_in(1), HourRange::new(Hour(102), Hour(110)));
    }

    #[test]
    fn lift_zero_outside_window() {
        let e = event();
        assert!(e.lift_at(0, Hour(99)).abs() < 1e-12);
        assert!(e.lift_at(0, Hour(108)).abs() < 1e-12);
        assert!(e.lift_at(0, Hour(103)) > 0.0);
    }

    #[test]
    fn lift_scales_with_intensity() {
        let e = event();
        let full = e.lift_at(0, Hour(104));
        let half = e.lift_at(1, Hour(106)); // same offset into lagged window
        assert!((half - full * 0.5).abs() < 1e-9);
    }

    #[test]
    fn shape_rises_then_falls() {
        let d = 12.0;
        assert!(shape(0.0, d) < shape(2.0, d));
        assert!(shape(4.0, d) >= shape(10.0, d));
        assert!(shape(11.0, d) > 0.0);
        for t in 0..12 {
            let v = shape(t as f64, d);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn one_hour_event_has_full_lift_at_peak() {
        let v = shape(0.0, 1.0);
        assert!(v > 0.4, "one-hour events must still register: {v}");
    }

    #[test]
    fn reachability_split_matches_paper() {
        assert!(Cause::IspNetwork(Provider::Comcast).affects_reachability());
        assert!(Cause::Power(PowerTrigger::WinterStorm).affects_reachability());
        assert!(!Cause::MobileCarrier(Provider::TMobile).affects_reachability());
        assert!(!Cause::CdnOrCloud(Provider::Akamai).affects_reachability());
        assert!(!Cause::Application(Provider::Youtube).affects_reachability());
    }

    #[test]
    fn rising_phrases_match_cause() {
        let e = event();
        let phrases = e.rising_phrases(State::TX);
        assert!(phrases.iter().any(|p| p.contains("Verizon")));

        let power = OutageEvent {
            cause: Cause::Power(PowerTrigger::WinterStorm),
            ..event()
        };
        let phrases = power.rising_phrases(State::TX);
        assert!(phrases.contains(&"power outage".to_string()));
        assert!(phrases.iter().any(|p| p.contains("houston")));
    }

    #[test]
    fn cause_labels() {
        assert_eq!(Cause::Power(PowerTrigger::HeatWave).label(), "Heat wave");
        assert_eq!(Cause::CdnOrCloud(Provider::Akamai).label(), "Akamai");
        assert!(PowerTrigger::Wildfire.is_climate());
        assert!(!PowerTrigger::SeveredLine.is_climate());
    }
}

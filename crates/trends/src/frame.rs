//! Time-frame construction: sampling, anonymising and piecewise indexing.

use crate::interest::InterestModel;
use crate::sampling::{self, SamplerConfig};
use crate::terms::SearchTerm;
use rand_chacha::ChaCha8Rng;
use sift_geo::State;
use sift_simtime::HourRange;

/// Builds the indexed data points of one time frame.
///
/// For every hourly block the sampler draws `(sampled, hits)`; the block's
/// data point is the proportion estimate `hits / sampled` ("its proportion
/// of all searches on all topics", §2) after anonymity rounding of tiny
/// hit counts. Proportions are then indexed **relative to the frame's own
/// maximum** on a 0–100 scale. This *piecewise* normalization is exactly
/// the property that prevents a client from comparing frames directly,
/// forcing SIFT's stitching step.
pub fn build_frame(
    rng: &mut ChaCha8Rng,
    cfg: &SamplerConfig,
    model: &InterestModel,
    term: &SearchTerm,
    state: State,
    range: HourRange,
) -> Vec<u8> {
    let mut zeroed = 0u64;
    let proportions: Vec<f64> = range
        .iter()
        .map(|h| {
            let volume = model.search_volume(state, h);
            let p = model.proportion(term, state, h);
            let (sampled, hits) = sampling::sample_hour(rng, cfg, volume, p);
            let anon = sampling::anonymize(cfg, hits);
            if anon != hits {
                zeroed += 1;
            }
            if sampled == 0 {
                0.0
            } else {
                // sift-lint: allow(lossy-cast) — hit counts are ≪ 2⁵³, so f64 holds them exactly
                anon as f64 / sampled as f64
            }
        })
        .collect();
    if zeroed > 0 {
        sift_obs::counter("sift_trends_anonymized_points_total", &[]).add(zeroed);
    }
    index_values(&proportions)
}

/// Indexes raw values to the service's 0–100 scale, relative to the
/// maximum value in the slice. All-zero input stays all zero; values
/// under half an index unit round to 0, exactly as integer indexing does
/// on the real service.
pub fn index_values(values: &[f64]) -> Vec<u8> {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return vec![0; values.len()];
    }
    values
        .iter()
        .map(|&v| (v * 100.0 / max).round() as u8) // sift-lint: allow(lossy-cast) — [0, 100] after scaling; `as` saturates
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::request_rng;
    use crate::scenario::Scenario;
    use crate::terms::Topic;
    use crate::{Cause, OutageEvent};
    use sift_simtime::Hour;

    #[test]
    fn index_scales_to_100() {
        assert_eq!(index_values(&[0.0, 0.5, 1.0]), vec![0, 50, 100]);
        assert_eq!(index_values(&[0.0, 0.0, 0.0]), vec![0, 0, 0]);
        assert_eq!(index_values(&[0.7]), vec![100]);
    }

    #[test]
    fn tiny_values_round_to_zero_against_a_big_max() {
        // 1 against 1000 is 0.1 index units: rounds to 0, as on the real
        // service (this is what makes quiet baselines vanish in frames
        // containing a big spike).
        assert_eq!(index_values(&[1.0, 1000.0]), vec![0, 100]);
        assert_eq!(index_values(&[1.0, 100.0]), vec![1, 100]);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = index_values(&[2.0, 4.0, 8.0, 16.0]);
        let b = index_values(&[20.0, 40.0, 80.0, 160.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn frame_peaks_at_the_event() {
        let event = OutageEvent {
            id: 0,
            name: "e".into(),
            cause: Cause::IspNetwork(crate::terms::Provider::Verizon),
            start: Hour(1000),
            duration_h: 8,
            states: vec![(State::CA, 0.2)],
            severity: 9_000.0,
            lags_h: vec![0],
        };
        let s = Scenario::single_region(State::CA, vec![event]);
        let m = InterestModel::new(&s);
        let cfg = SamplerConfig::default();
        let mut rng = request_rng(1);
        let range = HourRange::with_len(Hour(900), 168);
        let frame = build_frame(
            &mut rng,
            &cfg,
            &m,
            &SearchTerm::Topic(Topic::InternetOutage),
            State::CA,
            range,
        );
        assert_eq!(frame.len(), 168);
        let (peak_idx, peak) = frame
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .expect("non-empty");
        assert_eq!(*peak, 100);
        // Peak falls within the event window (hours 100..108 of the frame).
        assert!((100..108).contains(&peak_idx), "peak at offset {peak_idx}");
    }

    #[test]
    fn small_region_baseline_mostly_anonymised_to_zero() {
        let s = Scenario::single_region(State::WY, vec![]);
        let m = InterestModel::new(&s);
        let cfg = SamplerConfig::default();
        let mut rng = request_rng(2);
        let range = HourRange::with_len(Hour(5000), 168);
        let frame = build_frame(
            &mut rng,
            &cfg,
            &m,
            &SearchTerm::Topic(Topic::InternetOutage),
            State::WY,
            range,
        );
        let zeros = frame.iter().filter(|v| **v == 0).count();
        assert!(
            zeros > 100,
            "Wyoming's quiet baseline should round to zero often, got {zeros} zeros"
        );
    }
}

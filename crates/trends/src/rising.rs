//! Rising-suggestion computation.
//!
//! "The rising terms represent the search terms that see the most
//! significant increase in their search interests over the selected time
//! frame and geographical area of the input term. GT assigns weights to
//! these suggestions proportional to their percent increase" (§2).
//!
//! The simulator computes exactly that from ground truth: an event active
//! in the frame lifts its phrases' interest relative to the preceding
//! window, yielding a percent-increase weight per phrase, perturbed by
//! per-request sampling noise.

use crate::api::RisingTerm;
use crate::interest::{query_share, InterestModel};
use crate::scenario::{EventIndex, Scenario};
use crate::terms::generic_outage_phrases;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sift_geo::State;
use sift_simtime::HourRange;
use std::collections::HashMap;

/// Maximum number of suggestions returned per request.
pub const MAX_SUGGESTIONS: usize = 25;

/// Computes the rising suggestions for a frame.
pub fn rising_terms(
    rng: &mut ChaCha8Rng,
    scenario: &Scenario,
    index: &EventIndex,
    model: &InterestModel,
    state: State,
    range: HourRange,
) -> Vec<RisingTerm> {
    let mut weights: HashMap<String, f64> = HashMap::new();

    for e in index
        .candidates(range)
        .iter()
        .map(|i| &scenario.events[*i as usize])
    {
        for (i, (s, _)) in e.states.iter().enumerate() {
            if *s != state {
                continue;
            }
            let w = e.window_in(i);
            let Some(overlap) = w.intersect(&range) else {
                continue;
            };

            // Mean lift inside the frame vs the preceding window of the
            // same length: the "percent increase" the service reports.
            let mean_in = mean_lift(model, state, e, i, range);
            let prev = HourRange::new(range.start - range.len(), range.start);
            let mean_prev = mean_lift(model, state, e, i, prev);
            let increase = mean_in / (mean_prev + 1.0);
            if increase < 0.05 {
                continue;
            }
            let coverage = overlap.len() as f64 / w.len().max(1) as f64;
            let percent = 100.0 * increase * coverage.clamp(0.1, 1.0);

            for phrase in e.rising_phrases(state) {
                // Each phrasing carries its own share of the event's
                // traffic, plus per-request sampling jitter.
                let share = query_share(&phrase);
                let jitter = rng.gen_range(0.75..1.25);
                let w = percent * share * 0.05 * jitter;
                if w >= 1.0 {
                    *weights.entry(phrase).or_insert(0.0) += w;
                }
            }
        }
    }

    // Ambient chatter: generic phrasings that drift upwards for no reason
    // users would care about, so clients must learn to rank them down.
    for phrase in generic_outage_phrases(state) {
        if rng.gen::<f64>() < 0.25 {
            let w = rng.gen_range(5.0..40.0);
            *weights.entry(phrase).or_insert(0.0) += w;
        }
    }

    let mut out: Vec<RisingTerm> = weights
        .into_iter()
        .map(|(term, w)| RisingTerm {
            term,
            weight: w.round().max(1.0) as u32, // sift-lint: allow(lossy-cast) — float→int `as` saturates; weights are small
        })
        .collect();
    out.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.term.cmp(&b.term)));
    out.truncate(MAX_SUGGESTIONS);
    out
}

/// Mean lift of event `e` (region index `i`) over `range`, in baseline
/// units.
fn mean_lift(
    model: &InterestModel,
    _state: State,
    e: &crate::events::OutageEvent,
    i: usize,
    range: HourRange,
) -> f64 {
    let _ = model;
    if range.is_empty() {
        return 0.0;
    }
    range.iter().map(|h| e.lift_at(i, h)).sum::<f64>() / range.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Cause, OutageEvent, PowerTrigger};
    use crate::sampling::request_rng;
    use crate::terms::Provider;
    use sift_simtime::Hour;

    fn scenario() -> (Scenario, InterestModel) {
        let events = vec![
            OutageEvent {
                id: 0,
                name: "verizon".into(),
                cause: Cause::IspNetwork(Provider::Verizon),
                start: Hour(1000),
                duration_h: 8,
                states: vec![(State::TX, 1.0)],
                severity: 25.0,
                lags_h: vec![0],
            },
            OutageEvent {
                id: 1,
                name: "power".into(),
                cause: Cause::Power(PowerTrigger::Storm),
                start: Hour(1004),
                duration_h: 12,
                states: vec![(State::TX, 1.0)],
                severity: 20.0,
                lags_h: vec![0],
            },
        ];
        let s = Scenario::single_region(State::TX, events);
        let m = InterestModel::new(&s);
        (s, m)
    }

    #[test]
    fn event_phrases_rise_during_event() {
        let (s, m) = scenario();
        let mut rng = request_rng(5);
        let range = HourRange::with_len(Hour(960), 168);
        let rising = rising_terms(&mut rng, &s, &s.build_index(), &m, State::TX, range);
        assert!(!rising.is_empty());
        let has = |needle: &str| rising.iter().any(|t| t.term.contains(needle));
        assert!(has("Verizon") || has("verizon"), "rising: {rising:?}");
        assert!(has("power outage"), "rising: {rising:?}");
        // Sorted by weight, descending.
        for pair in rising.windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
    }

    #[test]
    fn quiet_frames_yield_little() {
        let (s, m) = scenario();
        let mut rng = request_rng(6);
        let range = HourRange::with_len(Hour(5000), 168);
        let rising = rising_terms(&mut rng, &s, &s.build_index(), &m, State::TX, range);
        // Only ambient chatter possible; no event phrases.
        assert!(rising.iter().all(|t| !t.term.contains("Verizon")));
        assert!(rising.len() <= 4, "rising: {rising:?}");
    }

    #[test]
    fn daily_frame_targets_the_spike_day() {
        let (s, m) = scenario();
        let mut rng = request_rng(7);
        // The day containing the events.
        let range = HourRange::with_len(Hour(984), 24);
        let rising = rising_terms(&mut rng, &s, &s.build_index(), &m, State::TX, range);
        assert!(rising.iter().any(|t| t.term.contains("Verizon")));
    }

    #[test]
    fn other_state_sees_nothing() {
        let (s, m) = scenario();
        let mut rng = request_rng(8);
        let range = HourRange::with_len(Hour(960), 168);
        let rising = rising_terms(&mut rng, &s, &s.build_index(), &m, State::CA, range);
        assert!(rising.iter().all(|t| !t.term.contains("Verizon")));
    }

    #[test]
    fn suggestions_bounded_and_deduped() {
        let (s, m) = scenario();
        let mut rng = request_rng(9);
        let range = HourRange::with_len(Hour(960), 168);
        let rising = rising_terms(&mut rng, &s, &s.build_index(), &m, State::TX, range);
        assert!(rising.len() <= MAX_SUGGESTIONS);
        let mut terms: Vec<&str> = rising.iter().map(|t| t.term.as_str()).collect();
        terms.sort_unstable();
        let before = terms.len();
        terms.dedup();
        assert_eq!(before, terms.len());
    }
}

//! Search-trends aggregation-service simulator.
//!
//! This crate stands in for Google Trends (GT), the data source SIFT
//! crawls. It reproduces the *mechanisms* that make GT data hard to use —
//! the very mechanisms SIFT's processing pipeline (§3.2) exists to undo:
//!
//! * **Random sampling** — every request draws a fresh unbiased random
//!   sample from the underlying search population, so the returned index
//!   carries binomial sampling error that shrinks with the population
//!   volume ([`sampling`]).
//! * **Anonymity rounding** — tiny sampled volumes are rounded to zero
//!   before indexing ([`frame`]).
//! * **Piecewise normalization** — each time frame is indexed 0–100
//!   against *its own* maximum, hiding global magnitudes ([`frame`]).
//! * **Frame limits** — hourly resolution is only served for frames of at
//!   most one week (168 data points) ([`service`]).
//! * **Rising suggestions** — per frame and region, the service suggests
//!   related queries weighted by their percent increase ([`rising`]).
//!
//! Underneath sits a generative world model: a two-year, 51-region
//! [`scenario`] of ground-truth outage [`events`] (the paper's headline
//! outages plus ~50 000 background outages) driving a per-region
//! [`interest`] model of search behaviour. Ground truth is exported so the
//! evaluation can score SIFT against what "really" happened — something
//! the paper could only do by reading the news.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub(crate) mod dist;
pub mod events;
pub mod frame;
pub mod interest;
pub mod rising;
pub mod sampling;
pub mod scenario;
pub mod service;
pub mod terms;

pub use api::{FrameRequest, FrameResponse, RisingRequest, RisingResponse, RisingTerm};
pub use client::{FetchError, TrendsClient};
pub use events::{Cause, OutageEvent, PowerTrigger};
pub use interest::InterestModel;
pub use scenario::{Scenario, ScenarioParams};
pub use service::{ServiceConfig, ServiceError, TrendsService};
pub use terms::SearchTerm;

//! Daemon configuration.

use sift_core::{DetectParams, PlanParams};
use sift_geo::State;
use sift_net::AdmissionConfig;
use sift_simtime::HourRange;
use sift_trends::SearchTerm;
use std::time::Duration;

/// Everything the daemon needs to run: what to ingest, how to detect,
/// how durable to be, and how to behave under load.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The search term ingested for every region.
    pub term: SearchTerm,
    /// Regions served (one ingest state machine and one durability
    /// domain each).
    pub regions: Vec<State>,
    /// The full coverage window the frame plan is built over. Ingest
    /// stops at its end; the simulated clock decides how much of it is
    /// fetchable *now*.
    pub range: HourRange,
    /// Frame planning parameters (length and overlap).
    pub plan: PlanParams,
    /// Detection parameters for the incremental walk. Must satisfy
    /// `min_peak > walk_floor` (asserted by the detector).
    pub detect: DetectParams,
    /// WAL records between checkpoints: a crash replays at most this
    /// many frames per region.
    pub checkpoint_every: u64,
    /// Reads degrade (`MissingFrames`) when the region's watermark
    /// trails the fetchable present by more than this many hours, and
    /// (`DetectorLagging`) when the detector's open segment grows past
    /// it.
    pub lag_budget_hours: i64,
    /// Reads degrade (`WalBacklog`) when the un-checkpointed WAL tail
    /// exceeds this many records (checkpoints are failing).
    pub max_wal_backlog: u64,
    /// Longest a `/spikes/subscribe` long-poll parks before answering
    /// empty.
    pub long_poll_max: Duration,
    /// Admission limits for the HTTP front (see `sift_net::admission`).
    pub admission: AdmissionConfig,
    /// HTTP worker threads. Long-poll subscribers park their admission
    /// slot but still occupy a worker, so size this above the expected
    /// subscriber count.
    pub workers: usize,
    /// Host-time sleep between ingest polls of the simulated clock.
    pub poll_interval: Duration,
}

impl ServeConfig {
    /// A config with sensible defaults for `term`, `regions` and `range`.
    pub fn new(term: SearchTerm, regions: Vec<State>, range: HourRange) -> ServeConfig {
        ServeConfig {
            term,
            regions,
            range,
            plan: PlanParams::default(),
            detect: DetectParams::default(),
            checkpoint_every: 4,
            lag_budget_hours: 14 * 24,
            max_wal_backlog: 16,
            long_poll_max: Duration::from_secs(10),
            admission: AdmissionConfig::default(),
            workers: 8,
            poll_interval: Duration::from_millis(2),
        }
    }
}

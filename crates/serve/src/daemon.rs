//! The online detector daemon: continuous ingest + bounded-staleness
//! HTTP serving.
//!
//! One ingest thread walks the frame plan region by region as the shared
//! [`SimClock`] advances, fetching every frame whose window has closed,
//! journaling it (WAL-before-apply), stitching it into the streaming
//! series and sealing spikes with the incremental walk. Readers go
//! through `sift-net` behind the admission layer:
//!
//! * `GET /spikes?region=TX&since=<hour>` — the region's sealed spikes,
//!   filtered to those ending after `since`.
//! * `GET /spikes/subscribe?region=TX&cursor=<n>` — long-poll: parks
//!   (releasing its admission slot) until the region holds more than `n`
//!   sealed spikes, the poll budget expires, or the server drains.
//! * `GET /regions` — per-region ingest status.
//!
//! Every response carries `X-Sift-Staleness-Ms` (host milliseconds since
//! the region last advanced) and, when the region is degraded, an
//! `X-Sift-Degraded` header naming the [`DegradeReason`] — the read
//! still serves last-good data.

use crate::config::ServeConfig;
use crate::degrade::DegradeReason;
use crate::region::RegionCore;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sift_core::{plan_frames, FramePlan, Spike};
use sift_geo::State;
use sift_journal::CrashInjector;
use sift_net::{
    mount_observability, AdmissionController, Method, Request, Response, Router, Server,
    ServerHandle, StatusCode,
};
use sift_simtime::{Hour, SimClock};
use sift_trends::{FrameRequest, TrendsClient};
use std::io;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Reply body of `/spikes` and `/spikes/subscribe`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpikesReply {
    /// The region asked about.
    pub region: State,
    /// One past the last hour the region's series covers.
    pub watermark: i64,
    /// Total sealed spikes (pass back as `cursor` to subscribe for the
    /// next one).
    pub cursor: u64,
    /// Degrade label when the region serves last-good data, else `None`.
    pub degraded: Option<String>,
    /// Sealed spikes (raw magnitudes on the first frame's scale),
    /// filtered by `since` when given.
    pub spikes: Vec<Spike>,
}

/// One region's ingest status in `/regions`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionStatus {
    /// The region.
    pub region: State,
    /// One past the last hour covered.
    pub watermark: i64,
    /// Frames ingested so far.
    pub frames_ingested: u64,
    /// Frames the plan holds in total.
    pub frames_planned: u64,
    /// Spikes sealed so far.
    pub sealed_spikes: u64,
    /// Hours buffered in the detector's open segment.
    pub open_hours: u64,
    /// Degrade label, if any.
    pub degraded: Option<String>,
}

/// Reply body of `/regions`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionsReply {
    /// The simulated present.
    pub now: i64,
    /// Status per served region.
    pub regions: Vec<RegionStatus>,
}

/// One region's runtime: the core under its mutex plus the condvar that
/// wakes long-poll subscribers when a spike seals.
struct RegionRuntime {
    state: State,
    core: Mutex<RegionCore>,
    cv: Condvar,
}

/// State shared by the ingest thread and every HTTP handler.
struct Shared {
    cfg: ServeConfig,
    plan: FramePlan,
    clock: Arc<SimClock>,
    client: Arc<dyn TrendsClient>,
    admission: Arc<AdmissionController>,
    regions: Vec<Arc<RegionRuntime>>,
    epoch: Instant,
    shutdown: AtomicBool,
    ingest_dead: AtomicBool,
}

impl Shared {
    fn region(&self, state: State) -> Option<&Arc<RegionRuntime>> {
        self.regions.iter().find(|r| r.state == state)
    }

    /// How far the simulated present allows ingest to have progressed.
    fn fetchable_until(&self) -> Hour {
        let now = self.clock.now();
        if now > self.cfg.range.end {
            self.cfg.range.end
        } else {
            now
        }
    }

    /// Builds the `/spikes` reply for a locked region core.
    fn spikes_reply(
        &self,
        core: &RegionCore,
        since: Option<i64>,
    ) -> (SpikesReply, Option<DegradeReason>) {
        let degraded = core.degrade(
            self.fetchable_until(),
            self.client.healthy(),
            self.cfg.lag_budget_hours,
            self.cfg.max_wal_backlog,
        );
        let spikes: Vec<Spike> = match since {
            Some(h) => core
                .spikes
                .iter()
                .filter(|s| s.end > Hour(h))
                .copied()
                .collect(),
            None => core.spikes.clone(),
        };
        let reply = SpikesReply {
            region: core.state,
            watermark: core.watermark().0,
            cursor: u64::try_from(core.spikes.len()).unwrap_or(u64::MAX),
            degraded: degraded.map(|d| d.label().to_owned()),
            spikes,
        };
        (reply, degraded)
    }

    fn status(&self) -> RegionsReply {
        let mut regions = Vec::with_capacity(self.regions.len());
        for rt in &self.regions {
            let core = rt.core.lock();
            let degraded = core.degrade(
                self.fetchable_until(),
                self.client.healthy(),
                self.cfg.lag_budget_hours,
                self.cfg.max_wal_backlog,
            );
            regions.push(RegionStatus {
                region: rt.state,
                watermark: core.watermark().0,
                frames_ingested: u64::try_from(core.next_frame).unwrap_or(u64::MAX),
                frames_planned: u64::try_from(self.plan.len()).unwrap_or(u64::MAX),
                sealed_spikes: u64::try_from(core.spikes.len()).unwrap_or(u64::MAX),
                open_hours: u64::try_from(core.open_hours()).unwrap_or(u64::MAX),
                degraded: degraded.map(|d| d.label().to_owned()),
            });
        }
        RegionsReply {
            now: self.clock.now().0,
            regions,
        }
    }
}

/// A value of the `region=` query parameter, parsed into a [`State`].
fn query_param<'a>(path: &'a str, key: &str) -> Option<&'a str> {
    let (_, qs) = path.split_once('?')?;
    qs.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == key {
            Some(v)
        } else {
            None
        }
    })
}

fn region_from_query(path: &str) -> Result<State, Response> {
    query_param(path, "region")
        .and_then(|s| s.parse::<State>().ok())
        .ok_or_else(|| {
            Response::text(
                StatusCode::BAD_REQUEST,
                "missing or unknown `region` query parameter",
            )
        })
}

fn json_response(reply: &impl Serialize) -> Response {
    match Response::json(reply) {
        Ok(resp) => resp,
        Err(_) => Response::text(StatusCode::INTERNAL_SERVER_ERROR, "serialization failed"),
    }
}

/// Stamps the bounded-staleness headers every serve response carries.
fn stamp(
    mut resp: Response,
    region: State,
    staleness_ms: u128,
    degraded: Option<DegradeReason>,
) -> Response {
    resp.headers
        .set("x-sift-staleness-ms", staleness_ms.to_string());
    sift_obs::gauge("sift_serve_staleness_ms", &[("region", region.abbrev())])
        .set(i64::try_from(staleness_ms).unwrap_or(i64::MAX));
    if let Some(reason) = degraded {
        resp.headers.set("x-sift-degraded", reason.label());
        reason.count_read();
    }
    resp
}

/// The running daemon: ingest thread + HTTP server + shared state.
pub struct Daemon {
    shared: Arc<Shared>,
    server: Option<ServerHandle>,
    ingest: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the daemon: recovers every region from `dir` (checkpoint +
    /// WAL tail), binds the HTTP server on a free localhost port, and
    /// spawns the ingest thread against `clock`.
    pub fn start(
        cfg: ServeConfig,
        client: Arc<dyn TrendsClient>,
        clock: Arc<SimClock>,
        dir: &Path,
    ) -> io::Result<Daemon> {
        Daemon::start_with_crash(cfg, client, clock, dir, None)
    }

    /// [`Daemon::start`] with a crash injector wired into every journal
    /// append and checkpoint (tests of the crash-recovery invariant).
    pub fn start_with_crash(
        cfg: ServeConfig,
        client: Arc<dyn TrendsClient>,
        clock: Arc<SimClock>,
        dir: &Path,
        crash: Option<Arc<CrashInjector>>,
    ) -> io::Result<Daemon> {
        let plan = plan_frames(cfg.range, cfg.plan);
        let mut regions = Vec::with_capacity(cfg.regions.len());
        for &state in &cfg.regions {
            let core = RegionCore::open(
                &dir.join(state.abbrev()),
                state,
                cfg.range.start,
                cfg.plan,
                cfg.detect,
                crash.clone(),
            )?;
            regions.push(Arc::new(RegionRuntime {
                state,
                core: Mutex::new(core),
                cv: Condvar::new(),
            }));
        }

        let admission = Arc::new(AdmissionController::new(cfg.admission));
        let workers = cfg.workers;
        let shared = Arc::new(Shared {
            cfg,
            plan,
            clock,
            client,
            admission: Arc::clone(&admission),
            regions,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            ingest_dead: AtomicBool::new(false),
        });

        let router = build_router(&shared);
        let server = Server::new(router)
            .with_admission_controller(Arc::clone(&admission))
            .with_workers(workers)
            .bind("127.0.0.1:0")?;

        let ingest = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sift-serve-ingest".into())
                .spawn(move || ingest_loop(&shared))?
        };

        Ok(Daemon {
            shared,
            server: Some(server),
            ingest: Some(ingest),
        })
    }

    /// The HTTP address the daemon serves on.
    pub fn addr(&self) -> SocketAddr {
        // The handle is only `None` transiently inside `shutdown`.
        match &self.server {
            Some(s) => s.addr(),
            None => SocketAddr::from(([127, 0, 0, 1], 0)),
        }
    }

    /// The admission controller shared with the HTTP front.
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.shared.admission
    }

    /// True when the ingest thread has died (a crash injector fired, or
    /// a bug). The HTTP front keeps serving last-good data; reads will
    /// degrade as the watermark falls behind.
    pub fn ingest_dead(&self) -> bool {
        self.shared.ingest_dead.load(Ordering::SeqCst)
    }

    /// Blocks until every region has ingested all frames the simulated
    /// clock currently allows, or `timeout` elapses, or ingest dies.
    /// Returns whether the daemon is fully caught up.
    pub fn wait_caught_up(&self, timeout: std::time::Duration) -> bool {
        let started = Instant::now();
        loop {
            let until = self.shared.fetchable_until();
            let target = self
                .shared
                .plan
                .frames
                .iter()
                .take_while(|f| f.end <= until)
                .count();
            let caught_up = self
                .shared
                .regions
                .iter()
                .all(|rt| rt.core.lock().next_frame >= target);
            if caught_up {
                return true;
            }
            if self.ingest_dead() || started.elapsed() >= timeout {
                return false;
            }
            std::thread::sleep(self.shared.cfg.poll_interval);
        }
    }

    /// In-process status snapshot (what `/regions` serves).
    pub fn status(&self) -> RegionsReply {
        self.shared.status()
    }

    /// In-process read of a region's sealed spikes (what `/spikes`
    /// serves, minus transport).
    pub fn spikes(&self, region: State) -> Option<SpikesReply> {
        let rt = self.shared.region(region)?;
        let core = rt.core.lock();
        Some(self.shared.spikes_reply(&core, None).0)
    }

    /// Stops ingest, drains the HTTP front, and joins every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.admission.begin_drain();
        for rt in &self.shared.regions {
            rt.cv.notify_all();
        }
        if let Some(ingest) = self.ingest.take() {
            // A crashed ingest thread already unwound; joining it then
            // just collects the panic, which is expected in crash tests.
            // sift-lint: allow(swallowed-result) — the ingest_dead flag already records the only failure a join can report
            let _ = ingest.join();
        }
        if let Some(server) = self.server.take() {
            server.drain(std::time::Duration::from_secs(2));
        }
    }
}

/// The ingest thread: poll the clock, fetch every closed frame, sleep
/// when idle. A panic (crash injector in panic mode, or a bug) marks
/// ingest dead and leaves the HTTP front serving last-good data —
/// graceful degradation, not collapse.
fn ingest_loop(shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match catch_unwind(AssertUnwindSafe(|| ingest_tick(shared))) {
            Ok(true) => {}
            Ok(false) => std::thread::sleep(shared.cfg.poll_interval),
            Err(_) => {
                shared.ingest_dead.store(true, Ordering::SeqCst);
                sift_obs::counter("sift_serve_ingest_deaths_total", &[]).inc();
                sift_obs::event(
                    sift_obs::Level::Error,
                    "serve.ingest",
                    "ingest thread died; serving last-good data",
                    &[],
                );
                break;
            }
        }
    }
}

/// One pass over every region: ingest each frame whose window the clock
/// has closed. Returns whether any frame was applied.
fn ingest_tick(shared: &Shared) -> bool {
    let mut progressed = false;
    for rt in &shared.regions {
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return progressed;
            }
            let until = shared.fetchable_until();
            let idx = rt.core.lock().next_frame;
            let Some(frame) = shared.plan.frames.get(idx) else {
                break; // plan exhausted for this region
            };
            if frame.end > until {
                break; // the frame's window is still open
            }
            let req = FrameRequest {
                term: shared.cfg.term.clone(),
                state: rt.state,
                start: frame.start,
                len: shared.cfg.plan.frame_len,
                tag: 0,
            };
            // Fetch outside the region lock: a slow or faulty upstream
            // must not block reads.
            match shared.client.fetch_frame(&req) {
                Ok(resp) => {
                    let span = sift_obs::span_root("serve.ingest_frame");
                    let sealed = {
                        let mut core = rt.core.lock();
                        core.fetch_failing = false;
                        core.ingest(idx, &resp, shared.cfg.checkpoint_every)
                    };
                    drop(span);
                    match sealed {
                        Ok(n) => {
                            progressed = true;
                            sift_obs::counter(
                                "sift_serve_frames_ingested_total",
                                &[("region", rt.state.abbrev())],
                            )
                            .inc();
                            if n > 0 {
                                rt.cv.notify_all();
                            }
                        }
                        Err(e) => {
                            sift_obs::event(
                                sift_obs::Level::Warn,
                                "serve.ingest",
                                "frame ingest failed; will retry",
                                &[("error", serde_json::Value::Str(e.to_string()))],
                            );
                            break;
                        }
                    }
                }
                Err(e) => {
                    rt.core.lock().fetch_failing = true;
                    sift_obs::counter(
                        "sift_serve_fetch_errors_total",
                        &[("region", rt.state.abbrev())],
                    )
                    .inc();
                    sift_obs::event(
                        sift_obs::Level::Warn,
                        "serve.ingest",
                        "frame fetch failed; will retry",
                        &[("error", serde_json::Value::Str(e.to_string()))],
                    );
                    break;
                }
            }
        }
    }
    progressed
}

fn build_router(shared: &Arc<Shared>) -> Router {
    let router = Router::new();

    let spikes_shared = Arc::clone(shared);
    let router = router.route(Method::Get, "/spikes", move |req: &Request| {
        sift_obs::counter("sift_serve_spikes_reads_total", &[]).inc();
        let region = match region_from_query(&req.path) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let since = query_param(&req.path, "since").and_then(|s| s.parse::<i64>().ok());
        let Some(rt) = spikes_shared.region(region) else {
            return Response::text(StatusCode::NOT_FOUND, "region not served");
        };
        let core = rt.core.lock();
        let (reply, degraded) = spikes_shared.spikes_reply(&core, since);
        let staleness = core.staleness_ms(spikes_shared.epoch);
        drop(core);
        stamp(json_response(&reply), region, staleness, degraded)
    });

    let sub_shared = Arc::clone(shared);
    let router = router.route(Method::Get, "/spikes/subscribe", move |req: &Request| {
        sift_obs::counter("sift_serve_subscribe_reads_total", &[]).inc();
        let region = match region_from_query(&req.path) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let cursor = query_param(&req.path, "cursor")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let Some(rt) = sub_shared.region(region) else {
            return Response::text(StatusCode::NOT_FOUND, "region not served");
        };

        // Park the admission slot for the whole wait: a thousand idle
        // subscribers must not shed fresh /spikes reads (see
        // `AdmissionController::park`).
        let parked = sub_shared.admission.park();
        let started = Instant::now();
        let budget = sub_shared.cfg.long_poll_max;
        let mut core = rt.core.lock();
        loop {
            if u64::try_from(core.spikes.len()).unwrap_or(u64::MAX) > cursor {
                break;
            }
            if sub_shared.admission.is_draining()
                || sub_shared.shutdown.load(Ordering::SeqCst)
                || started.elapsed() >= budget
            {
                break;
            }
            // Short slices keep the waiter responsive to drain even if a
            // notification is missed.
            let slice = (budget - started.elapsed()).min(std::time::Duration::from_millis(50));
            let (guard, _) = rt
                .cv
                .wait_timeout(core, slice)
                .unwrap_or_else(PoisonError::into_inner);
            core = guard;
        }
        let (reply, degraded) = sub_shared.spikes_reply(&core, None);
        let staleness = core.staleness_ms(sub_shared.epoch);
        drop(core);
        drop(parked); // re-takes the in-flight slot for the send
        stamp(json_response(&reply), region, staleness, degraded)
    });

    let regions_shared = Arc::clone(shared);
    let router = router.route(Method::Get, "/regions", move |_req: &Request| {
        sift_obs::counter("sift_serve_regions_reads_total", &[]).inc();
        let reply = regions_shared.status();
        let mut resp = json_response(&reply);
        let staleness = regions_shared
            .regions
            .iter()
            .map(|rt| rt.core.lock().staleness_ms(regions_shared.epoch))
            .max()
            .unwrap_or(0);
        resp.headers
            .set("x-sift-staleness-ms", staleness.to_string());
        resp
    });

    mount_observability(router)
}

//! Per-region online ingest state: streaming stitcher, incremental
//! detector, sealed spike set, and the durability domain that makes the
//! whole thing crash-recoverable.
//!
//! The invariant every mutation obeys is **WAL-before-apply**: a fetched
//! frame is appended to the region's write-ahead journal *before* it
//! touches the stitcher, the detector, or the sealed spike set. Every
//! `checkpoint_every` frames the full in-memory state (both snapshots
//! plus the sealed spikes) is installed as an atomic checkpoint and the
//! journal truncated. Recovery is therefore checkpoint + WAL-tail replay
//! through the *same* apply path as live ingest — a `kill -9` at any
//! durability boundary restarts to the identical spike set, re-ingesting
//! at most the un-checkpointed tail.

use crate::degrade::DegradeReason;
use serde::{Deserialize, Serialize};
use sift_core::{
    DetectParams, DetectorSnapshot, IncrementalDetector, PlanParams, Spike, StitchError,
    StitcherSnapshot, StreamStitcher,
};
use sift_geo::State;
use sift_journal::{read_checkpoint, write_checkpoint, CrashInjector, Journal};
use sift_simtime::Hour;
use sift_trends::FrameResponse;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One WAL record: a frame accepted for ingest, tagged with its plan
/// index so replay can discard duplicates from a crash between append
/// and checkpoint.
#[derive(Serialize, Deserialize)]
struct ServeRecord {
    idx: u64,
    resp: FrameResponse,
}

/// Checkpoint payload: everything needed to resume ingest and serving
/// exactly where the region stood.
#[derive(Serialize, Deserialize)]
struct RegionCheckpoint {
    next_frame: u64,
    stitcher: StitcherSnapshot,
    detector: DetectorSnapshot,
    spikes: Vec<Spike>,
}

/// The mutable core of one region, always accessed under the runtime's
/// mutex.
pub(crate) struct RegionCore {
    /// The region.
    pub state: State,
    stitcher: StreamStitcher,
    detector: IncrementalDetector,
    /// Sealed spikes in `(start, peak)` order, raw magnitudes (the first
    /// frame's scale — see `StreamStitcher` on why online detection does
    /// not renormalize).
    pub spikes: Vec<Spike>,
    /// Next plan index to ingest.
    pub next_frame: usize,
    journal: Journal,
    ckpt_path: PathBuf,
    crash: Option<Arc<CrashInjector>>,
    /// WAL records since the last successful checkpoint (including a
    /// replayed tail).
    pub wal_tail: u64,
    /// Frames recovered from checkpoint+WAL instead of the network.
    pub replayed: u64,
    /// The most recent fetch attempt failed (cleared by any success).
    pub fetch_failing: bool,
    /// Host time of the last applied frame; `None` until the first.
    last_advance: Option<Instant>,
    /// Scratch for the stitcher's newly covered values.
    new_values: Vec<f64>,
}

impl RegionCore {
    /// Opens (and recovers) the region rooted at `dir`: loads the newest
    /// checkpoint if one exists, then replays the WAL tail through the
    /// live apply path.
    pub fn open(
        dir: &Path,
        state: State,
        start: Hour,
        plan: PlanParams,
        detect: DetectParams,
        crash: Option<Arc<CrashInjector>>,
    ) -> io::Result<RegionCore> {
        std::fs::create_dir_all(dir)?;
        let ckpt_path = dir.join("region.ckpt");
        let recovered = match read_checkpoint(&ckpt_path)? {
            Some(bytes) => Some(decode_checkpoint(&bytes)?),
            None => None,
        };
        let (journal, recovery) = Journal::open_with(&dir.join("region.wal"), crash.clone())?;

        let keep = usize::try_from(plan.frame_len).unwrap_or(usize::MAX);
        let mut core = match recovered {
            Some(ckpt) => RegionCore {
                state,
                stitcher: StreamStitcher::restore(ckpt.stitcher),
                detector: IncrementalDetector::restore(ckpt.detector),
                spikes: ckpt.spikes,
                next_frame: usize::try_from(ckpt.next_frame).unwrap_or(usize::MAX),
                journal,
                ckpt_path,
                crash,
                wal_tail: 0,
                replayed: 0,
                fetch_failing: false,
                last_advance: None,
                new_values: Vec::new(),
            },
            None => RegionCore {
                state,
                stitcher: StreamStitcher::new(state, start, keep),
                detector: IncrementalDetector::new(state, start, detect),
                spikes: Vec::new(),
                next_frame: 0,
                journal,
                ckpt_path,
                crash,
                wal_tail: 0,
                replayed: 0,
                fetch_failing: false,
                last_advance: None,
                new_values: Vec::new(),
            },
        };

        // Replay the un-checkpointed tail through the same apply path as
        // live ingest. Records the checkpoint already subsumes (a crash
        // between checkpoint install and journal truncation) are skipped
        // by index.
        for payload in &recovery.records {
            let parsed = std::str::from_utf8(payload)
                .ok()
                .and_then(|json| serde_json::from_str::<ServeRecord>(json).ok());
            match parsed {
                Some(rec) => {
                    let idx = usize::try_from(rec.idx).unwrap_or(usize::MAX);
                    if idx != core.next_frame {
                        continue; // already in the checkpoint
                    }
                    core.wal_tail += 1;
                    core.replayed += 1;
                    if let Err(e) = core.apply(&rec.resp) {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, e));
                    }
                }
                None => {
                    sift_obs::event(
                        sift_obs::Level::Warn,
                        "serve.region",
                        "WAL record with valid CRC failed to decode; skipped",
                        &[],
                    );
                }
            }
        }
        if core.replayed > 0 {
            sift_obs::counter(
                "sift_serve_frames_replayed_total",
                &[("region", state.abbrev())],
            )
            .add(core.replayed);
        }
        Ok(core)
    }

    /// Ingests one live frame under the WAL-before-apply invariant:
    /// journal first (fsync'd), then stitch + detect, then maybe
    /// checkpoint. Returns the number of spikes sealed by this frame.
    pub fn ingest(
        &mut self,
        idx: usize,
        resp: &FrameResponse,
        checkpoint_every: u64,
    ) -> io::Result<usize> {
        let record = ServeRecord {
            idx: u64::try_from(idx).unwrap_or(u64::MAX),
            resp: resp.clone(),
        };
        let json = serde_json::to_string(&record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.journal.append(json.as_bytes())?;
        self.wal_tail += 1;

        let sealed = self
            .apply(resp)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

        if self.wal_tail >= checkpoint_every {
            // A failed checkpoint is degradation, not death: the WAL tail
            // keeps every accepted frame, reads keep flowing, and the
            // growing tail surfaces as `WalBacklog`.
            if let Err(e) = self.checkpoint() {
                sift_obs::counter("sift_serve_checkpoint_failures_total", &[]).inc();
                sift_obs::event(
                    sift_obs::Level::Warn,
                    "serve.region",
                    "checkpoint failed; WAL tail keeps growing",
                    &[("error", serde_json::Value::Str(e.to_string()))],
                );
            }
        }
        Ok(sealed)
    }

    /// The shared apply path (live ingest and recovery replay): stitch
    /// the frame's new hours, feed them to the incremental walk, seal
    /// whatever became final.
    fn apply(&mut self, resp: &FrameResponse) -> Result<usize, StitchError> {
        let _span = sift_obs::span("serve.apply_frame");
        self.stitcher.append(resp, &mut self.new_values)?;
        let sealed = self.detector.append(&self.new_values, &mut self.spikes);
        self.next_frame += 1;
        self.last_advance = Some(Instant::now());
        sift_obs::attr_add(
            "hours",
            u64::try_from(self.new_values.len()).unwrap_or(u64::MAX),
        );
        sift_obs::attr_set("watermark", u64::try_from(self.watermark().0).unwrap_or(0));
        if sealed > 0 {
            sift_obs::counter(
                "sift_serve_spikes_sealed_total",
                &[("region", self.state.abbrev())],
            )
            .add(u64::try_from(sealed).unwrap_or(u64::MAX));
        }
        Ok(sealed)
    }

    /// Installs an atomic checkpoint subsuming (and truncating) the WAL.
    fn checkpoint(&mut self) -> io::Result<()> {
        let ckpt = RegionCheckpoint {
            next_frame: u64::try_from(self.next_frame).unwrap_or(u64::MAX),
            stitcher: self.stitcher.snapshot(),
            detector: self.detector.snapshot(),
            spikes: self.spikes.clone(),
        };
        let json = serde_json::to_string(&ckpt)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.journal.sync()?;
        write_checkpoint(&self.ckpt_path, json.as_bytes(), self.crash.as_deref())?;
        self.journal.truncate_all()?;
        self.wal_tail = 0;
        sift_obs::counter("sift_serve_checkpoints_total", &[]).inc();
        Ok(())
    }

    /// One past the last hour the region's series covers.
    pub fn watermark(&self) -> Hour {
        self.stitcher.covered_until()
    }

    /// Hours buffered in the detector's open segment (current detection
    /// lag).
    pub fn open_hours(&self) -> usize {
        self.detector.open_hours()
    }

    /// Host milliseconds since the region last advanced, or since
    /// `epoch` if it never has.
    pub fn staleness_ms(&self, epoch: Instant) -> u128 {
        self.last_advance.unwrap_or(epoch).elapsed().as_millis()
    }

    /// The most severe degrade condition currently holding, if any.
    /// `fetchable_until` is how far the simulated present allows ingest
    /// to have progressed (clamped to the plan's end).
    pub fn degrade(
        &self,
        fetchable_until: Hour,
        client_healthy: bool,
        lag_budget_hours: i64,
        max_wal_backlog: u64,
    ) -> Option<DegradeReason> {
        if !client_healthy {
            return Some(DegradeReason::BreakerOpen);
        }
        if fetchable_until - self.watermark() > lag_budget_hours {
            return Some(DegradeReason::MissingFrames);
        }
        if self.wal_tail > max_wal_backlog {
            return Some(DegradeReason::WalBacklog);
        }
        if i64::try_from(self.open_hours()).unwrap_or(i64::MAX) > lag_budget_hours {
            return Some(DegradeReason::DetectorLagging);
        }
        None
    }
}

fn decode_checkpoint(bytes: &[u8]) -> io::Result<RegionCheckpoint> {
    let json =
        std::str::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    serde_json::from_str(json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_journal::testutil::scratch_dir;
    use sift_trends::SearchTerm;

    fn fresh_core(tag: &str) -> RegionCore {
        RegionCore::open(
            &scratch_dir(&format!("serve_region_{tag}")),
            State::TX,
            Hour(0),
            PlanParams::default(),
            DetectParams::default(),
            None,
        )
        .expect("open region")
    }

    fn flat_frame(value: u8) -> FrameResponse {
        FrameResponse {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::TX,
            start: Hour(0),
            values: vec![value; 168],
        }
    }

    /// The lattice reports the most severe condition first: an open
    /// breaker outranks missing frames, which outrank a WAL backlog,
    /// which outranks a lagging detector.
    #[test]
    fn degrade_lattice_orders_by_severity() {
        let mut core = fresh_core("lattice");

        // Fresh region, simulated present far ahead: missing frames —
        // unless the breaker is open, which outranks it.
        assert_eq!(
            core.degrade(Hour(800), true, 336, 16),
            Some(DegradeReason::MissingFrames)
        );
        assert_eq!(
            core.degrade(Hour(800), false, 336, 16),
            Some(DegradeReason::BreakerOpen)
        );

        // Caught up and healthy: no degradation.
        assert_eq!(core.degrade(Hour(0), true, 336, 16), None);

        // A WAL tail past its budget degrades even when caught up.
        core.wal_tail = 5;
        assert_eq!(
            core.degrade(Hour(0), true, 336, 4),
            Some(DegradeReason::WalBacklog)
        );
        assert_eq!(
            core.degrade(Hour(800), true, 336, 4),
            Some(DegradeReason::MissingFrames),
            "missing frames outranks the WAL backlog"
        );
        core.wal_tail = 0;

        // A frame that never returns to the noise floor leaves the whole
        // window open: detector lag, the least severe reason.
        core.ingest(0, &flat_frame(50), 1_000).expect("ingest");
        assert_eq!(core.open_hours(), 168);
        assert_eq!(
            core.degrade(core.watermark(), true, 100, 16),
            Some(DegradeReason::DetectorLagging)
        );
        assert_eq!(
            core.degrade(core.watermark(), true, 336, 16),
            None,
            "within the lag budget an open segment is not degradation"
        );
    }

    /// The watermark tracks stitched coverage and `staleness_ms` falls
    /// back to the daemon epoch before the first frame.
    #[test]
    fn watermark_and_staleness_track_ingest() {
        let mut core = fresh_core("watermark");
        let epoch = Instant::now() - std::time::Duration::from_millis(50);
        assert_eq!(core.watermark(), Hour(0));
        assert!(core.staleness_ms(epoch) >= 50);

        core.ingest(0, &flat_frame(10), 1_000).expect("ingest");
        assert_eq!(core.watermark(), Hour(168));
        assert!(core.staleness_ms(epoch) < 50);
    }
}

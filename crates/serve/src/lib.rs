//! SIFT-as-a-service: a crash-recoverable online detector daemon with
//! bounded staleness and graceful degradation.
//!
//! The batch pipeline answers "what outages happened in this range?"
//! after the fact. This crate turns the same detector into a *service*:
//! frames stream in as the simulated clock advances, each region's
//! series updates incrementally (`sift_core::IncrementalDetector`,
//! proven equivalent to batch detection), and sealed spikes are served
//! over HTTP the moment their closing edge passes the noise floor.
//!
//! Three properties define the service:
//!
//! * **Crash recoverability** — every accepted frame hits the
//!   write-ahead journal *before* it mutates in-memory state, and the
//!   full region state is checkpointed atomically every few frames. A
//!   `kill -9` anywhere restarts to the identical spike set, re-ingesting
//!   at most the un-checkpointed WAL tail.
//! * **Bounded staleness** — every response carries
//!   `X-Sift-Staleness-Ms`, the host time since the region last
//!   advanced, so clients always know how fresh their answer is.
//! * **Graceful degradation** — when ingest falls behind (breaker open,
//!   missing frames, failing checkpoints, lagging detector) reads keep
//!   serving last-good data, tagged with a [`DegradeReason`] and counted
//!   in `sift_serve_degraded_reads_total{reason=…}`, instead of turning
//!   into errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod daemon;
mod degrade;
mod region;

pub use config::ServeConfig;
pub use daemon::{Daemon, RegionStatus, RegionsReply, SpikesReply};
pub use degrade::DegradeReason;

//! The degrade lattice: why a read served last-good data.
//!
//! A client asking "is my internet down?" during an outage is the worst
//! possible moment to answer `503`. When a region's ingest falls behind,
//! the daemon keeps answering from the last consistent state it has and
//! *labels* the answer instead of withholding it: the response carries an
//! `X-Sift-Degraded` header naming the reason, and every such read is
//! counted in `sift_serve_degraded_reads_total{reason=…}` so operators
//! see degradation the moment it starts, not when users complain.

use serde::{Deserialize, Serialize};

/// Why a region's reads are degraded. Ordered by severity: when several
/// conditions hold at once the most severe one is reported, so the label
/// an operator sees is the thing to fix first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The trends client's circuit breaker is open: no frame can be
    /// fetched at all until the probe succeeds.
    BreakerOpen,
    /// Ingest is missing frames: the region's watermark trails the
    /// simulated present by more than the configured lag budget.
    MissingFrames,
    /// The write-ahead log has grown past the checkpoint interval —
    /// checkpoints are failing, and a crash now would mean a long replay.
    WalBacklog,
    /// The incremental detector's open segment has exceeded the lag
    /// budget: the series has not returned to the noise floor, so sealed
    /// spikes lag further behind the watermark than promised.
    DetectorLagging,
}

impl DegradeReason {
    /// Every reason, most severe first.
    pub const ALL: [DegradeReason; 4] = [
        DegradeReason::BreakerOpen,
        DegradeReason::MissingFrames,
        DegradeReason::WalBacklog,
        DegradeReason::DetectorLagging,
    ];

    /// The metric label this reason is counted under in
    /// `sift_serve_degraded_reads_total{reason=…}`.
    pub fn label(self) -> &'static str {
        match self {
            DegradeReason::BreakerOpen => "breaker_open",
            DegradeReason::MissingFrames => "missing_frames",
            DegradeReason::WalBacklog => "wal_backlog",
            DegradeReason::DetectorLagging => "detector_lagging",
        }
    }

    /// Counts one degraded read under this reason.
    pub fn count_read(self) {
        sift_obs::counter(
            "sift_serve_degraded_reads_total",
            &[("reason", self.label())],
        )
        .inc();
    }
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_every_reason_most_severe_first() {
        let labels: Vec<_> = DegradeReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            [
                "breaker_open",
                "missing_frames",
                "wal_backlog",
                "detector_lagging"
            ]
        );
    }
}

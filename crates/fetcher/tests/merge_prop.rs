//! Property test for the cluster-merge invariant: journals written by K
//! independent workers — in any partition, merged in any order, with a
//! torn tail on one of them — replay to exactly the same
//! [`ResponseStore`] as one combined journal holding the same records.
//! This is what makes the sharded crawl's per-worker journals auditable
//! as if they were a single process's WAL.

use proptest::prelude::*;
use sift_fetcher::{merge_journal_dirs, DurableStore, ResponseSink};
use sift_journal::record::HEADER_LEN;
use sift_journal::testutil::scratch_dir;
use sift_simtime::Hour;
use sift_trends::{FrameResponse, RisingResponse, RisingTerm, SearchTerm};
use std::path::{Path, PathBuf};

/// One synthetic crawl response. Every field (including the payload) is
/// a pure function of `i`, so any two copies of record `i` are
/// byte-identical — duplicates across journals can never conflict, which
/// mirrors the deterministic trends service.
#[derive(Clone, Copy)]
enum Record {
    Frame(usize),
    Rising(usize),
}

fn state_for(i: usize) -> sift_geo::State {
    sift_geo::State::ALL[i % sift_geo::State::ALL.len()]
}

fn apply(record: Record, sink: &mut dyn ResponseSink) {
    match record {
        Record::Frame(i) => sink.insert_frame(
            i as u64,
            FrameResponse {
                term: SearchTerm::parse("internet outage"),
                state: state_for(i),
                // The hour encodes `i`, so every record's key is unique.
                start: Hour(i as i64),
                values: vec![(i % 251) as u8; 24],
            },
        ),
        Record::Rising(i) => sink.insert_rising(
            168,
            RisingResponse {
                state: state_for(i),
                start: Hour(i as i64),
                rising: vec![RisingTerm {
                    term: format!("no internet {i}"),
                    weight: (i % 97) as u32,
                }],
            },
        ),
    }
}

/// Writes `records` into a fresh durable journal at `dir` and returns
/// the journal file's path.
fn write_journal(dir: &Path, records: &[Record]) -> PathBuf {
    let (mut store, resume) = DurableStore::open(dir).expect("open journal dir");
    assert_eq!(resume.replayed, 0, "fresh dir must start empty");
    for &r in records {
        apply(r, &mut store);
    }
    store.sync().expect("sync journal");
    dir.join("store.wal")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// K shuffled per-worker journals — one of them with a torn tail that
    /// loses exactly its in-flight record — merge to the same store as a
    /// single combined journal of the surviving records, with zero
    /// conflicts, in every merge order.
    #[test]
    fn sharded_journals_merge_like_one_combined_journal(
        // Which worker each record lands on (also fixes the record count).
        assignment in proptest::collection::vec(0..4usize, 1..60),
        // Mix of frame and rising records.
        kinds in proptest::collection::vec(any::<bool>(), 60..61),
        // How many bytes to tear off the last worker's journal tail
        // (1..=HEADER_LEN always cuts mid-record).
        cut in 1..=HEADER_LEN,
        seed in 0..1_000u64,
    ) {
        let records: Vec<Record> = assignment
            .iter()
            .enumerate()
            .map(|(i, _)| if kinds[i % kinds.len()] { Record::Frame(i) } else { Record::Rising(i) })
            .collect();
        let workers = 1 + assignment.iter().copied().max().unwrap_or(0);
        let root = scratch_dir(&format!("merge_prop_{seed}"));

        // Partition the records across the worker journals. The torn
        // worker gets one extra sacrificial record, then its journal file
        // is cut mid-record — exactly that record is lost, as in a crash.
        let torn_worker = workers - 1;
        let mut dirs = Vec::new();
        for w in 0..workers {
            let mut mine: Vec<Record> = records
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == w)
                .map(|(&r, _)| r)
                .collect();
            if w == torn_worker {
                // A sacrificial record past the live ones; `records.len()`
                // is an index no surviving record uses.
                mine.push(Record::Frame(records.len()));
            }
            let dir = root.join(format!("worker-{w}"));
            let wal = write_journal(&dir, &mine);
            if w == torn_worker {
                let bytes = std::fs::read(&wal).expect("read wal");
                prop_assert!(bytes.len() > cut, "journal shorter than the cut");
                std::fs::write(&wal, &bytes[..bytes.len() - cut]).expect("tear tail");
            }
            dirs.push(dir);
        }

        // The reference: one combined journal of the surviving records.
        let combined_dir = root.join("combined");
        write_journal(&combined_dir, &records);
        let (combined, resume) = DurableStore::open(&combined_dir).expect("reopen combined");
        prop_assert_eq!(resume.replayed, records.len());
        let expected = combined.into_store().to_json().expect("encode expected");

        // Merge the worker journals in two different orders: the result
        // must not depend on merge order.
        let mut reversed = dirs.clone();
        reversed.reverse();
        for (pass, order) in [dirs, reversed].into_iter().enumerate() {
            let (merged, report) = merge_journal_dirs(&order).expect("merge journals");
            prop_assert_eq!(report.sources, workers);
            prop_assert_eq!(report.conflicts, 0, "identical duplicates must not conflict");
            // The first open heals the torn file (truncating the partial
            // record), so only the first pass observes the tear.
            prop_assert_eq!(
                report.torn_tails,
                usize::from(pass == 0),
                "exactly one journal was torn, healed on first recovery"
            );
            prop_assert_eq!(
                report.replayed,
                records.len(),
                "every surviving record replays exactly once across the shards"
            );
            prop_assert_eq!(&merged.to_json().expect("encode merged"), &expected);
        }
    }
}

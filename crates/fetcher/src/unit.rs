//! Fetcher units: named identities crawling the service.
//!
//! The client abstraction itself ([`TrendsClient`], [`FetchError`]) lives
//! in `sift-trends`; this module provides the two deployable unit kinds —
//! in-process (labelled) and HTTP.

use sift_net::{CircuitBreaker, HttpClient, RetryBudget};
use sift_trends::{
    FrameRequest, FrameResponse, RisingRequest, RisingResponse, ServiceError, TrendsService,
};
use std::sync::Arc;

pub use sift_trends::client::{FetchError, TrendsClient};

/// In-process access to the service under a distinct unit identity.
///
/// Useful to run the full multi-unit collection machinery without sockets
/// (and in tests).
pub struct InProcessClient {
    service: Arc<TrendsService>,
    identity: String,
}

impl InProcessClient {
    /// Wraps a shared service under the default identity.
    pub fn new(service: Arc<TrendsService>) -> Self {
        Self::with_identity(service, "in-process")
    }

    /// Wraps a shared service under an explicit unit identity.
    pub fn with_identity(service: Arc<TrendsService>, identity: impl Into<String>) -> Self {
        InProcessClient {
            service,
            identity: identity.into(),
        }
    }
}

impl TrendsClient for InProcessClient {
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
        // sift-lint: allow(deadline-propagation) — in-process call into the local world model: no wire, nothing to time out on
        self.service.fetch_frame(req).map_err(FetchError::Service)
    }

    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
        // sift-lint: allow(deadline-propagation) — in-process call into the local world model: no wire, nothing to time out on
        self.service.fetch_rising(req).map_err(FetchError::Service)
    }

    fn identity(&self) -> &str {
        &self.identity
    }
}

/// The wire envelope the HTTP endpoints answer with: the payload or a
/// typed service error. Shared with [`crate::serve`].
#[derive(serde::Serialize, serde::Deserialize)]
pub(crate) enum ApiResult<T> {
    /// Success payload.
    Ok(T),
    /// Service-level rejection.
    Err(ServiceError),
}

/// Access to the service over HTTP, crawling under a declared fetcher
/// identity. Retries, `Retry-After` handling, circuit breaking and
/// deadline propagation come from the underlying [`HttpClient`] policy.
pub struct HttpTrendsClient {
    client: HttpClient,
    identity: String,
    breaker: Option<Arc<CircuitBreaker>>,
}

impl HttpTrendsClient {
    /// A unit crawling `addr` under `identity` (e.g. `"127.0.0.7"`).
    pub fn new(addr: std::net::SocketAddr, identity: impl Into<String>) -> Self {
        let identity = identity.into();
        HttpTrendsClient {
            client: HttpClient::new(addr).with_identity(identity.clone()),
            identity,
            breaker: None,
        }
    }

    /// Replaces the underlying client's retry policy.
    pub fn with_retry(mut self, retry: sift_net::RetryPolicy) -> Self {
        self.client = self.client.with_retry(retry);
        self
    }

    /// Routes every request through `breaker` and reflects its state in
    /// [`TrendsClient::healthy`]. Share one breaker across a unit fleet
    /// (and the collection queue) so an outage observed by any unit
    /// pauses them all.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.client = self.client.with_breaker(Arc::clone(&breaker));
        self.breaker = Some(breaker);
        self
    }

    /// Draws retries from a shared [`RetryBudget`] token bucket.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.client = self.client.with_retry_budget(budget);
        self
    }

    /// Attaches a per-request deadline, propagated to the service as
    /// `X-Sift-Deadline-Ms` and enforced across retries.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.client = self.client.with_deadline(deadline);
        self
    }
}

impl TrendsClient for HttpTrendsClient {
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
        // Child of the queue worker's restored fetch span (same thread),
        // so each frame's HTTP attempts hang off the run's trace.
        let _span = sift_obs::span("frame");
        let result: ApiResult<FrameResponse> = self
            .client
            .post_json("/api/frame", req)
            .map_err(|e| FetchError::Transport(e.to_string()))?;
        match result {
            ApiResult::Ok(resp) => {
                sift_obs::attr_add("frames", 1);
                Ok(resp)
            }
            ApiResult::Err(e) => Err(FetchError::Service(e)),
        }
    }

    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
        let _span = sift_obs::span("rising");
        let result: ApiResult<RisingResponse> = self
            .client
            .post_json("/api/rising", req)
            .map_err(|e| FetchError::Transport(e.to_string()))?;
        match result {
            ApiResult::Ok(resp) => Ok(resp),
            ApiResult::Err(e) => Err(FetchError::Service(e)),
        }
    }

    fn identity(&self) -> &str {
        &self.identity
    }

    fn healthy(&self) -> bool {
        // A peek, not an admission: half-open probe slots stay available
        // for the request that actually goes out.
        self.breaker.as_ref().map_or(true, |b| b.would_allow())
    }
}

/// Spreads requests across several fetcher units round-robin.
///
/// This is how a study is pointed at the whole unit fleet: wrap the units
/// and hand the combinator to `sift_core::run_study`. Because responses
/// are determined by request coordinates and tag — not by which unit asks
/// — the distribution order does not affect results, only throughput
/// (each unit has its own rate-limit bucket).
pub struct RoundRobin {
    units: Vec<Arc<dyn TrendsClient>>,
    next: std::sync::atomic::AtomicUsize,
    identity: String,
}

impl RoundRobin {
    /// Builds a combinator over at least one unit.
    pub fn new(units: Vec<Arc<dyn TrendsClient>>) -> Self {
        assert!(!units.is_empty(), "at least one fetcher unit required");
        let identity = format!("round-robin({})", units.len());
        RoundRobin {
            units,
            next: std::sync::atomic::AtomicUsize::new(0),
            identity,
        }
    }

    fn pick(&self) -> &dyn TrendsClient {
        let i = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.units[i % self.units.len()].as_ref()
    }
}

impl TrendsClient for RoundRobin {
    fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
        // sift-lint: allow(deadline-propagation) — pure delegation: the picked unit's own client owns the deadline for the wire call
        self.pick().fetch_frame(req)
    }

    fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
        // sift-lint: allow(deadline-propagation) — pure delegation: the picked unit's own client owns the deadline for the wire call
        self.pick().fetch_rising(req)
    }

    fn identity(&self) -> &str {
        &self.identity
    }

    fn healthy(&self) -> bool {
        // The fleet is healthy while any unit would still attempt work.
        self.units.iter().any(|u| u.healthy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_geo::State;
    use sift_simtime::Hour;
    use sift_trends::{Scenario, SearchTerm};

    fn service() -> Arc<TrendsService> {
        Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )))
    }

    #[test]
    fn in_process_client_round_trips() {
        let c = InProcessClient::with_identity(service(), "unit-3");
        let resp = c
            .fetch_frame(&FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::CA,
                start: Hour(0),
                len: 168,
                tag: 0,
            })
            .expect("frame");
        assert_eq!(resp.values.len(), 168);
        assert_eq!(c.identity(), "unit-3");
    }

    #[test]
    fn round_robin_spreads_requests() {
        let service = service();
        let units: Vec<Arc<dyn TrendsClient>> = (0..3)
            .map(|i| {
                Arc::new(InProcessClient::with_identity(
                    Arc::clone(&service),
                    format!("unit-{i}"),
                )) as Arc<dyn TrendsClient>
            })
            .collect();
        let rr = RoundRobin::new(units);
        assert_eq!(rr.identity(), "round-robin(3)");
        let req = FrameRequest {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::CA,
            start: Hour(0),
            len: 168,
            tag: 0,
        };
        let a = rr.fetch_frame(&req).expect("frame");
        let b = rr.fetch_frame(&req).expect("frame");
        assert_eq!(a, b, "unit choice must not change the sample");
        assert_eq!(service.stats().frames_served, 2);
    }

    #[test]
    fn in_process_client_surfaces_service_errors() {
        let c = InProcessClient::new(service());
        let err = c
            .fetch_frame(&FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::CA,
                start: Hour(0),
                len: 1000,
                tag: 0,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            FetchError::Service(ServiceError::FrameTooLong { .. })
        ));
        assert!(err.to_string().contains("168"));
    }
}

//! Hosting the trends service over HTTP.

use crate::unit::ApiResult;
use sift_net::{Method, Request, Response, Router, StatusCode};
use sift_trends::{FrameRequest, RisingRequest, TrendsService};
use std::sync::Arc;

/// Builds the HTTP router exposing a trends service:
///
/// * `POST /api/frame` — body: [`FrameRequest`] JSON; answers an
///   `ApiResult<FrameResponse>`.
/// * `POST /api/rising` — body: [`RisingRequest`] JSON; answers an
///   `ApiResult<RisingResponse>`.
/// * `GET /healthz` — liveness.
/// * `GET /stats` — service request counters.
/// * `GET /metrics` — live Prometheus text exposition (via
///   [`sift_net::mount_observability`]).
///
/// Attach a rate limiter via
/// [`sift_net::Server::with_rate_limiter`] to reproduce the
/// crawl bottleneck, and admission control via
/// [`sift_net::Server::with_admission`] to bound in-flight work and shed
/// overload with `503 + Retry-After` (see `sift_net::admission`).
pub fn trends_router(service: Arc<TrendsService>) -> Router {
    let frame_service = Arc::clone(&service);
    let rising_service = Arc::clone(&service);
    let stats_service = Arc::clone(&service);

    sift_net::mount_observability(Router::new())
        .route(Method::Get, "/stats", move |_| {
            sift_obs::counter("sift_trends_stats_served_total", &[]).inc();
            match Response::json(&stats_service.stats()) {
                Ok(r) => r,
                Err(e) => Response::text(StatusCode::INTERNAL_SERVER_ERROR, e.to_string()),
            }
        })
        .route(Method::Post, "/api/frame", move |req: &Request| {
            let parsed: FrameRequest = match req.json() {
                Ok(p) => p,
                Err(e) => {
                    return Response::text(
                        StatusCode::BAD_REQUEST,
                        format!("bad frame request: {e}"),
                    )
                }
            };
            // sift-lint: allow(deadline-propagation) — server side of the wire: the client stamps the deadline into the request it sent; the in-process service behind this router never waits on a peer
            let result = match frame_service.fetch_frame(&parsed) {
                Ok(resp) => ApiResult::Ok(resp),
                Err(e) => ApiResult::Err(e),
            };
            Response::json(&result).unwrap_or_else(|e| {
                Response::text(StatusCode::INTERNAL_SERVER_ERROR, e.to_string())
            })
        })
        .route(Method::Post, "/api/rising", move |req: &Request| {
            let parsed: RisingRequest = match req.json() {
                Ok(p) => p,
                Err(e) => {
                    return Response::text(
                        StatusCode::BAD_REQUEST,
                        format!("bad rising request: {e}"),
                    )
                }
            };
            // sift-lint: allow(deadline-propagation) — server side of the wire: same contract as /api/frame above
            let result = match rising_service.fetch_rising(&parsed) {
                Ok(resp) => ApiResult::Ok(resp),
                Err(e) => ApiResult::Err(e),
            };
            Response::json(&result).unwrap_or_else(|e| {
                Response::text(StatusCode::INTERNAL_SERVER_ERROR, e.to_string())
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{FetchError, HttpTrendsClient, TrendsClient};
    use sift_geo::State;
    use sift_net::Server;
    use sift_simtime::Hour;
    use sift_trends::{Scenario, SearchTerm};

    fn spawn() -> (sift_net::ServerHandle, Arc<TrendsService>) {
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::TX,
            vec![],
        )));
        let handle = Server::new(trends_router(Arc::clone(&service)))
            .bind("127.0.0.1:0")
            .expect("bind");
        (handle, service)
    }

    #[test]
    fn frame_over_http_matches_in_process() {
        let (h, service) = spawn();
        let req = FrameRequest {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::TX,
            start: Hour(500),
            len: 168,
            tag: 7,
        };
        let client = HttpTrendsClient::new(h.addr(), "127.0.0.9");
        let over_http = client.fetch_frame(&req).expect("http frame");
        let direct = service.fetch_frame(&req).expect("direct frame");
        assert_eq!(over_http, direct, "same coordinates + tag → same sample");
        h.shutdown();
    }

    #[test]
    fn service_errors_cross_the_wire() {
        let (h, _service) = spawn();
        let client = HttpTrendsClient::new(h.addr(), "127.0.0.9");
        let err = client
            .fetch_frame(&FrameRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::TX,
                start: Hour(0),
                len: 999,
                tag: 0,
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                FetchError::Service(sift_trends::ServiceError::FrameTooLong { .. })
            ),
            "{err}"
        );
        h.shutdown();
    }

    #[test]
    fn rising_and_stats_endpoints() {
        let (h, _service) = spawn();
        let client = HttpTrendsClient::new(h.addr(), "127.0.0.9");
        let rising = client
            .fetch_rising(&RisingRequest {
                term: SearchTerm::parse("topic:Internet outage"),
                state: State::TX,
                start: Hour(0),
                len: 168,
                tag: 0,
            })
            .expect("rising");
        assert_eq!(rising.state, State::TX);

        let raw = sift_net::HttpClient::new(h.addr());
        let stats: sift_trends::api::ServiceStats = raw.get_json("/stats").expect("stats json");
        assert_eq!(stats.rising_served, 1);
        h.shutdown();
    }

    #[test]
    fn malformed_body_is_bad_request() {
        let (h, _service) = spawn();
        let raw = sift_net::HttpClient::new(h.addr());
        let mut req =
            sift_net::Request::post_json("/api/frame", &"not a frame request").expect("encode");
        req.headers.set("content-type", "application/json");
        let resp = raw.send(&req).expect("send");
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        h.shutdown();
    }
}

//! Mapping the crawl workload across fetcher units.
//!
//! The collection module queues every planned request on a shared channel;
//! one worker thread per fetcher unit drains it. Because each unit crawls
//! under its own identity, the service's per-IP rate limiting throttles
//! units independently and the crawl parallelises — exactly the design the
//! paper describes.

use crate::store::ResponseStore;
use crate::unit::TrendsClient;
use crossbeam::channel;
use sift_trends::{FrameRequest, RisingRequest};
use std::sync::Arc;

/// One queued request.
#[derive(Clone, Debug)]
pub enum WorkItem {
    /// Fetch an indexed frame.
    Frame(FrameRequest),
    /// Fetch rising suggestions.
    Rising(RisingRequest),
}

/// Outcome counters of one collection run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed after the unit's retry budget.
    pub failed: usize,
    /// `(unit identity, requests completed)` per unit.
    pub per_unit: Vec<(String, usize)>,
}

/// A crawl executor over a set of fetcher units.
pub struct CollectionRun {
    units: Vec<Arc<dyn TrendsClient>>,
}

impl CollectionRun {
    /// Builds a run over the given units (at least one).
    pub fn new(units: Vec<Arc<dyn TrendsClient>>) -> Self {
        assert!(!units.is_empty(), "at least one fetcher unit required");
        CollectionRun { units }
    }

    /// Executes the workload, merging every response into `store`.
    /// Returns the run report.
    pub fn execute(&self, items: Vec<WorkItem>, store: &mut ResponseStore) -> RunReport {
        let (work_tx, work_rx) = channel::unbounded::<WorkItem>();
        for item in items {
            // sift-lint: allow(no-panic) — send to an unbounded channel with a live receiver cannot fail
            work_tx.send(item).expect("unbounded channel accepts");
        }
        drop(work_tx); // workers drain until empty
        let depth = sift_obs::gauge("sift_fetcher_queue_depth", &[]);
        depth.set(work_rx.len() as i64);

        enum Outcome {
            Frame(u64, sift_trends::FrameResponse),
            Rising(u32, sift_trends::RisingResponse),
            Failed,
        }
        let (out_tx, out_rx) = channel::unbounded::<(usize, Outcome)>();

        std::thread::scope(|scope| {
            for (unit_idx, unit) in self.units.iter().enumerate() {
                let work_rx = work_rx.clone();
                let out_tx = out_tx.clone();
                let unit = Arc::clone(unit);
                scope.spawn(move || {
                    while let Ok(item) = work_rx.recv() {
                        // Last set wins across workers; the gauge tracks the
                        // approximate backlog, which is all it needs to.
                        sift_obs::gauge("sift_fetcher_queue_depth", &[]).set(work_rx.len() as i64);
                        let outcome = match &item {
                            WorkItem::Frame(req) => match unit.fetch_frame(req) {
                                Ok(resp) => Outcome::Frame(req.tag, resp),
                                Err(_) => Outcome::Failed,
                            },
                            WorkItem::Rising(req) => match unit.fetch_rising(req) {
                                Ok(resp) => Outcome::Rising(req.len, resp),
                                Err(_) => Outcome::Failed,
                            },
                        };
                        if out_tx.send((unit_idx, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(out_tx);

            let mut report = RunReport {
                per_unit: self
                    .units
                    .iter()
                    .map(|u| (u.identity().to_owned(), 0))
                    .collect(),
                ..RunReport::default()
            };
            while let Ok((unit_idx, outcome)) = out_rx.recv() {
                let unit_identity = &report.per_unit[unit_idx].0;
                match outcome {
                    Outcome::Frame(tag, resp) => {
                        store.insert_frame(tag, resp);
                        report.completed += 1;
                        sift_obs::counter(
                            "sift_fetcher_completed_total",
                            &[("unit", unit_identity)],
                        )
                        .inc();
                        report.per_unit[unit_idx].1 += 1;
                    }
                    Outcome::Rising(len, resp) => {
                        store.insert_rising(len, resp);
                        report.completed += 1;
                        sift_obs::counter(
                            "sift_fetcher_completed_total",
                            &[("unit", unit_identity)],
                        )
                        .inc();
                        report.per_unit[unit_idx].1 += 1;
                    }
                    Outcome::Failed => {
                        report.failed += 1;
                        sift_obs::counter("sift_fetcher_failed_total", &[("unit", unit_identity)])
                            .inc();
                        sift_obs::event(
                            sift_obs::Level::Warn,
                            "fetcher.queue",
                            "request failed past retry budget",
                            &[("unit", serde_json::Value::Str(unit_identity.clone()))],
                        );
                    }
                }
            }
            report
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_frames, PlanParams};
    use crate::unit::InProcessClient;
    use sift_geo::State;
    use sift_simtime::{Hour, HourRange};
    use sift_trends::{Scenario, SearchTerm, TrendsService};

    fn units(n: usize) -> (Vec<Arc<dyn TrendsClient>>, Arc<TrendsService>) {
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        let units: Vec<Arc<dyn TrendsClient>> = (0..n)
            .map(|_| Arc::new(InProcessClient::new(Arc::clone(&service))) as Arc<dyn TrendsClient>)
            .collect();
        (units, service)
    }

    fn frame_workload(tag: u64) -> Vec<WorkItem> {
        let plan = plan_frames(HourRange::new(Hour(0), Hour(1000)), PlanParams::default());
        plan.frames
            .iter()
            .map(|f| {
                WorkItem::Frame(FrameRequest {
                    term: SearchTerm::parse("topic:Internet outage"),
                    state: State::CA,
                    start: f.start,
                    len: f.len() as u32,
                    tag,
                })
            })
            .collect()
    }

    #[test]
    fn workload_is_fully_collected() {
        let (units, service) = units(3);
        let run = CollectionRun::new(units);
        let items = frame_workload(0);
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute(items, &mut store);
        assert_eq!(report.completed, n);
        assert_eq!(report.failed, 0);
        assert_eq!(store.frame_count(), n);
        assert_eq!(service.stats().frames_served, n as u64);
        // Frames come back sorted and contiguous for the pipeline.
        let frames = store.frames_for(State::CA, 0);
        assert_eq!(frames.len(), n);
        for pair in frames.windows(2) {
            assert!(pair[0].start < pair[1].start);
        }
    }

    /// Delegating client that makes each request take ~1ms, so every
    /// worker thread provably joins the drain before the queue empties
    /// (the raw in-process path can be drained by the first worker before
    /// the others have even spawned).
    struct SlowClient(InProcessClient);

    impl TrendsClient for SlowClient {
        fn fetch_frame(
            &self,
            req: &FrameRequest,
        ) -> Result<sift_trends::FrameResponse, sift_trends::FetchError> {
            std::thread::sleep(std::time::Duration::from_millis(1));
            self.0.fetch_frame(req)
        }

        fn fetch_rising(
            &self,
            req: &RisingRequest,
        ) -> Result<sift_trends::RisingResponse, sift_trends::FetchError> {
            std::thread::sleep(std::time::Duration::from_millis(1));
            self.0.fetch_rising(req)
        }

        fn identity(&self) -> &str {
            self.0.identity()
        }
    }

    #[test]
    fn work_is_spread_across_units() {
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        let units: Vec<Arc<dyn TrendsClient>> = (0..4)
            .map(|_| {
                Arc::new(SlowClient(InProcessClient::new(Arc::clone(&service))))
                    as Arc<dyn TrendsClient>
            })
            .collect();
        let run = CollectionRun::new(units);
        let mut store = ResponseStore::new();
        let report = run.execute(frame_workload(0), &mut store);
        let busy_units = report.per_unit.iter().filter(|(_, n)| *n > 0).count();
        assert!(busy_units >= 2, "expected parallel draining: {report:?}");
    }

    #[test]
    fn bad_requests_count_as_failures() {
        let (units, _service) = units(1);
        let run = CollectionRun::new(units);
        let mut store = ResponseStore::new();
        let items = vec![WorkItem::Frame(FrameRequest {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::CA,
            start: Hour(0),
            len: 9999, // over the service limit
            tag: 0,
        })];
        let report = run.execute(items, &mut store);
        assert_eq!(report.failed, 1);
        assert_eq!(report.completed, 0);
        assert_eq!(store.frame_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one fetcher unit")]
    fn zero_units_rejected() {
        let _ = CollectionRun::new(vec![]);
    }
}

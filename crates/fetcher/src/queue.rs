//! Mapping the crawl workload across fetcher units.
//!
//! The collection module queues every planned request on a shared channel;
//! one worker thread per fetcher unit drains it. Because each unit crawls
//! under its own identity, the service's per-IP rate limiting throttles
//! units independently and the crawl parallelises — exactly the design the
//! paper describes.
//!
//! Failure handling: a transport-level failure (the unit's own retries
//! exhausted) re-queues the item under a bounded per-item attempt budget,
//! preferring a *different* unit on the next try; a service-level
//! rejection (bad request) is permanent immediately. Items that exhaust
//! the budget are reported in [`RunReport::failed_items`] — with their
//! frame tags and coordinates — so callers can re-plan instead of
//! silently losing frames.
//!
//! Overload handling: a run may carry a shared [`CircuitBreaker`] (the
//! same one the units' HTTP clients record outcomes into) and a per-run
//! deadline. When the breaker is open, or the deadline has passed, queued
//! work is *shed* rather than fetched or re-queued — reported separately
//! in [`RunReport::shed_items`] so callers can tell "the service was
//! down / we ran out of time" apart from "this request kept failing".
//! Because items are drained in descending priority order, the work still
//! in the queue when the breaker opens is the lowest-priority tail: the
//! queue sheds least-important frames first.

use crate::durable::DurableStore;
use crate::store::{FrameKey, ResponseSink, ResponseStore, RisingKey};
use crate::unit::{FetchError, TrendsClient};
use crossbeam::channel;
use sift_geo::State;
use sift_net::CircuitBreaker;
use sift_simtime::Hour;
use sift_trends::{FrameRequest, RisingRequest};
use std::sync::Arc;
use std::time::Duration;

/// One queued request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkItem {
    /// Fetch an indexed frame.
    Frame(FrameRequest),
    /// Fetch rising suggestions.
    Rising(RisingRequest),
}

impl WorkItem {
    /// The region the item targets.
    pub fn state(&self) -> State {
        match self {
            WorkItem::Frame(r) => r.state,
            WorkItem::Rising(r) => r.state,
        }
    }

    /// The first hour of the requested frame.
    pub fn start(&self) -> Hour {
        match self {
            WorkItem::Frame(r) => r.start,
            WorkItem::Rising(r) => r.start,
        }
    }

    /// Whether `store` already holds the response this item would fetch —
    /// the question resume asks to skip journaled work.
    ///
    /// A stored response satisfies the item only if it answers the *whole*
    /// request, not just its store key. Frame keys carry `(state, start,
    /// tag)` but not the requested length or term, so a journal written
    /// under a different plan (say a 168-hour frame where this plan wants
    /// 24 hours at the same start) would otherwise mark the item resumed —
    /// it then appears in neither the served nor the requeued totals and
    /// the response handed downstream has the wrong shape.
    pub fn fulfilled_by(&self, store: &ResponseStore) -> bool {
        match self {
            WorkItem::Frame(r) => store
                .frame(&FrameKey {
                    state: r.state,
                    start: r.start,
                    tag: r.tag,
                })
                .is_some_and(|resp| {
                    resp.term == r.term
                        && usize::try_from(r.len).is_ok_and(|len| resp.values.len() == len)
                }),
            WorkItem::Rising(r) => store
                .rising(&RisingKey {
                    state: r.state,
                    start: r.start,
                    len: r.len,
                })
                .is_some(),
        }
    }
}

/// An item that exhausted its attempt budget (or was rejected by the
/// service), reported so the caller can re-plan the missing work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailedWork {
    /// The failed request, exactly as queued.
    pub item: WorkItem,
    /// Fetch attempts made across units.
    pub attempts: u32,
    /// The final error, stringified.
    pub error: String,
}

/// Why a queued item was shed instead of fetched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedCause {
    /// The shared circuit breaker was open: the service is refusing work
    /// and attempting the fetch would only feed the failure streak.
    BreakerOpen,
    /// The run's deadline passed before the item was picked up.
    Deadline,
}

impl ShedCause {
    /// Stable snake_case label, used as the `reason` metric label.
    pub fn label(self) -> &'static str {
        match self {
            ShedCause::BreakerOpen => "breaker_open",
            ShedCause::Deadline => "deadline",
        }
    }
}

impl std::fmt::Display for ShedCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An item shed by overload control (open breaker or spent deadline) —
/// never attempted in its final state, distinct from a [`FailedWork`]
/// whose fetches were tried and failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShedWork {
    /// The shed request, exactly as queued.
    pub item: WorkItem,
    /// The priority it was queued with (higher drains first).
    pub priority: i32,
    /// Why it was shed.
    pub reason: ShedCause,
}

/// Outcome counters of one collection run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed permanently (budget exhausted or rejected by
    /// the service).
    pub failed: usize,
    /// Re-queues performed after transient failures.
    pub requeued: usize,
    /// Items shed by overload control (never counted in `failed`).
    pub shed: usize,
    /// Planned items skipped because the durable store already held their
    /// responses (only non-zero for [`CollectionRun::resume`]).
    pub resumed: usize,
    /// `(unit identity, requests completed)` per unit.
    pub per_unit: Vec<(String, usize)>,
    /// Every permanently-failed item, with its coordinates and tag.
    pub failed_items: Vec<FailedWork>,
    /// Every shed item, lowest priority first.
    pub shed_items: Vec<ShedWork>,
}

/// A crawl executor over a set of fetcher units.
pub struct CollectionRun {
    units: Vec<Arc<dyn TrendsClient>>,
    attempt_budget: u32,
    breaker: Option<Arc<CircuitBreaker>>,
    deadline: Option<Duration>,
}

/// What one worker hands back to the collector.
enum Outcome {
    Frame(u64, sift_trends::FrameResponse),
    Rising(u32, sift_trends::RisingResponse),
    /// Item whose last failure was on this worker's unit: the collector
    /// re-queues it so a different unit (usually) picks it up.
    Bounce(Queued),
    Failed {
        item: WorkItem,
        priority: i32,
        attempts: u32,
        error: String,
        permanent: bool,
        ctx: Option<sift_obs::SpanContext>,
    },
    /// Item dropped by overload control before (re)fetching.
    Shed {
        item: WorkItem,
        priority: i32,
        cause: ShedCause,
    },
}

/// A work item plus its retry bookkeeping.
#[derive(Debug)]
struct Queued {
    item: WorkItem,
    /// Drain priority (higher first); carried into shed reports.
    priority: i32,
    /// Fetch attempts already made.
    attempts: u32,
    /// The unit index of the last failed attempt, if any.
    last_unit: Option<usize>,
    /// Whether the item has already been bounced once since the last
    /// failure (guards against ping-pong when only one unit is draining).
    bounced: bool,
    /// The trace context of the span open where the item was enqueued.
    /// Worker threads have their own (empty) span stacks, which would
    /// silently sever parentage; carrying the context in the work item
    /// lets every fetch span — across bounces and re-queues — attach to
    /// the run's trace.
    ctx: Option<sift_obs::SpanContext>,
}

impl CollectionRun {
    /// Builds a run over the given units (at least one), with a default
    /// per-item budget of 3 attempts.
    pub fn new(units: Vec<Arc<dyn TrendsClient>>) -> Self {
        assert!(!units.is_empty(), "at least one fetcher unit required");
        CollectionRun {
            units,
            attempt_budget: 3,
            breaker: None,
            deadline: None,
        }
    }

    /// Sets the per-item attempt budget (≥ 1). Each attempt already
    /// includes the unit's own transport-level retries.
    pub fn with_attempt_budget(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "at least one attempt required");
        self.attempt_budget = budget;
        self
    }

    /// Consults `breaker` before every fetch and re-queue: while it is
    /// open, queued work is shed instead of attempted. Share the same
    /// breaker with the units' HTTP clients so their fetch outcomes drive
    /// its state; the queue itself only peeks (`would_allow`), leaving
    /// half-open probe admission to the client that actually sends.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Bounds the whole run: items still queued when the deadline passes
    /// are shed, not fetched.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Executes the workload at uniform priority, merging every response
    /// into `sink`. Returns the run report.
    pub fn execute<S: ResponseSink>(&self, items: Vec<WorkItem>, sink: &mut S) -> RunReport {
        self.execute_prioritized(items.into_iter().map(|i| (i, 0)).collect(), sink)
    }

    /// Resumes an interrupted crawl: items the recovered durable store
    /// already holds are skipped (counted in [`RunReport::resumed`] and
    /// `sift_fetcher_resumed_items_total`), and only genuinely unfetched
    /// work — with its priorities and the run's attempt budget, breaker
    /// and deadline intact — goes back on the queue, journaled as it
    /// lands. With a fresh durability directory this degrades to a plain
    /// [`CollectionRun::execute_prioritized`].
    pub fn resume(&self, items: Vec<(WorkItem, i32)>, durable: &mut DurableStore) -> RunReport {
        let (have, need): (Vec<_>, Vec<_>) = items
            .into_iter()
            .partition(|(item, _)| item.fulfilled_by(durable.store()));
        let resumed = have.len();
        if resumed > 0 {
            sift_obs::counter("sift_fetcher_resumed_items_total", &[])
                .add(u64::try_from(resumed).unwrap_or(u64::MAX));
            sift_obs::event(
                sift_obs::Level::Info,
                "fetcher.queue",
                "resume skipped already-journaled items",
                &[
                    (
                        "resumed",
                        serde_json::Value::UInt(u64::try_from(resumed).unwrap_or(u64::MAX)),
                    ),
                    (
                        "remaining",
                        serde_json::Value::UInt(u64::try_from(need.len()).unwrap_or(u64::MAX)),
                    ),
                ],
            );
        }
        let mut report = self.execute_prioritized(need, durable);
        report.resumed = resumed;
        report
    }

    /// Executes a prioritized workload: higher-priority items are queued
    /// (and therefore drained) first, so overload sheds the low-priority
    /// tail. Returns the run report.
    pub fn execute_prioritized<S: ResponseSink>(
        &self,
        mut items: Vec<(WorkItem, i32)>,
        sink: &mut S,
    ) -> RunReport {
        // Stable sort: equal priorities keep their submission order.
        items.sort_by_key(|(_, priority)| std::cmp::Reverse(*priority));
        // sift-lint: allow(wall-clock) — the run deadline bounds the host crawl, not simulated time
        let deadline_at = self.deadline.map(|d| std::time::Instant::now() + d);
        // Captured once on the enqueuing thread; workers reopen it so
        // their fetch spans join the caller's trace.
        let run_ctx = sift_obs::SpanContext::current();
        let (work_tx, work_rx) = channel::unbounded::<Queued>();
        let mut outstanding = 0usize;
        for (item, priority) in items {
            let queued = Queued {
                item,
                priority,
                attempts: 0,
                last_unit: None,
                bounced: false,
                ctx: run_ctx,
            };
            // sift-lint: allow(no-panic) — send to an unbounded channel with a live receiver cannot fail
            work_tx.send(queued).expect("unbounded channel accepts");
            outstanding += 1;
        }
        // The gauge has a single owner — the collector below — so its
        // readings cannot race across workers, and it is zeroed when the
        // run drains.
        let depth = sift_obs::gauge("sift_fetcher_queue_depth", &[]);
        depth.set(work_rx.len() as i64);

        let (out_tx, out_rx) = channel::unbounded::<(usize, Outcome)>();

        std::thread::scope(|scope| {
            for (unit_idx, unit) in self.units.iter().enumerate() {
                let work_rx = work_rx.clone();
                let out_tx = out_tx.clone();
                let unit = Arc::clone(unit);
                let unit_count = self.units.len();
                let breaker = self.breaker.clone();
                scope.spawn(move || {
                    while let Ok(q) = work_rx.recv() {
                        // Overload control runs before any fetch: work
                        // whose deadline has passed, or that would hit an
                        // open breaker, is shed — the item is reported,
                        // not silently dropped and not retried.
                        // sift-lint: allow(wall-clock) — comparing against the run deadline
                        let spent = deadline_at.is_some_and(|at| std::time::Instant::now() >= at);
                        let shed_cause = if spent {
                            Some(ShedCause::Deadline)
                        } else if breaker.as_ref().is_some_and(|b| !b.would_allow()) {
                            Some(ShedCause::BreakerOpen)
                        } else {
                            None
                        };
                        if let Some(cause) = shed_cause {
                            let outcome = Outcome::Shed {
                                item: q.item,
                                priority: q.priority,
                                cause,
                            };
                            if out_tx.send((unit_idx, outcome)).is_err() {
                                break;
                            }
                            continue;
                        }
                        // A retry should land on a different unit than the
                        // one that just failed it, when another exists.
                        // One bounce per failure: if the same worker picks
                        // it up again (the others are busy or gone), it
                        // just runs it.
                        if q.last_unit == Some(unit_idx) && !q.bounced && unit_count > 1 {
                            let mut q = q;
                            q.bounced = true;
                            if out_tx.send((unit_idx, Outcome::Bounce(q))).is_err() {
                                break;
                            }
                            continue;
                        }
                        let attempts = q.attempts + 1;
                        // Restore the enqueuer's context: without it the
                        // worker's empty span stack would make every
                        // fetch span an orphan root.
                        let outcome = {
                            let _fetch_span = match q.ctx {
                                Some(c) => sift_obs::span_in(c, "fetch"),
                                None => sift_obs::span("fetch"),
                            };
                            sift_obs::attr_set("attempt", u64::from(attempts));
                            match &q.item {
                                WorkItem::Frame(req) => match unit.fetch_frame(req) {
                                    Ok(resp) => Outcome::Frame(req.tag, resp),
                                    Err(e) => failed(q, attempts, &e),
                                },
                                WorkItem::Rising(req) => match unit.fetch_rising(req) {
                                    Ok(resp) => Outcome::Rising(req.len, resp),
                                    Err(e) => failed(q, attempts, &e),
                                },
                            }
                        };
                        if out_tx.send((unit_idx, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(out_tx);

            let mut report = RunReport {
                per_unit: self
                    .units
                    .iter()
                    .map(|u| (u.identity().to_owned(), 0))
                    .collect(),
                ..RunReport::default()
            };
            // The collector holds the only `work_tx`, so it alone decides
            // when the run is over: once every item completed or failed
            // permanently, dropping the sender lets the workers drain out.
            let mut work_tx = Some(work_tx);
            while outstanding > 0 {
                let Ok((unit_idx, outcome)) = out_rx.recv() else {
                    break; // all workers gone; nothing more can arrive
                };
                let unit_identity = report.per_unit[unit_idx].0.clone();
                match outcome {
                    Outcome::Frame(tag, resp) => {
                        sink.insert_frame(tag, resp);
                        report.completed += 1;
                        outstanding -= 1;
                        sift_obs::counter(
                            "sift_fetcher_completed_total",
                            &[("unit", &unit_identity)],
                        )
                        .inc();
                        report.per_unit[unit_idx].1 += 1;
                    }
                    Outcome::Rising(len, resp) => {
                        sink.insert_rising(len, resp);
                        report.completed += 1;
                        outstanding -= 1;
                        sift_obs::counter(
                            "sift_fetcher_completed_total",
                            &[("unit", &unit_identity)],
                        )
                        .inc();
                        report.per_unit[unit_idx].1 += 1;
                    }
                    Outcome::Bounce(q) => {
                        if let Some(tx) = &work_tx {
                            if tx.send(q).is_err() {
                                outstanding -= 1; // unreachable in practice
                            }
                        }
                    }
                    Outcome::Shed {
                        item,
                        priority,
                        cause,
                    } => {
                        report.shed += 1;
                        outstanding -= 1;
                        sift_obs::counter("sift_fetcher_shed_total", &[("reason", cause.label())])
                            .inc();
                        sift_obs::event(
                            sift_obs::Level::Warn,
                            "fetcher.queue",
                            "item shed by overload control",
                            &[
                                ("reason", serde_json::Value::Str(cause.label().to_owned())),
                                ("priority", serde_json::Value::Int(i64::from(priority))),
                            ],
                        );
                        report.shed_items.push(ShedWork {
                            item,
                            priority,
                            reason: cause,
                        });
                    }
                    Outcome::Failed {
                        item,
                        priority,
                        attempts,
                        error,
                        permanent,
                        ctx,
                    } => {
                        // A transient failure is only worth re-queueing
                        // while the breaker says the service is taking
                        // requests; once it opens, the item is shed with
                        // the rest of the queue instead of churning.
                        let breaker_open = self.breaker.as_ref().is_some_and(|b| !b.would_allow());
                        if !permanent && attempts < self.attempt_budget && breaker_open {
                            report.shed += 1;
                            outstanding -= 1;
                            sift_obs::counter(
                                "sift_fetcher_shed_total",
                                &[("reason", ShedCause::BreakerOpen.label())],
                            )
                            .inc();
                            report.shed_items.push(ShedWork {
                                item,
                                priority,
                                reason: ShedCause::BreakerOpen,
                            });
                        } else if !permanent && attempts < self.attempt_budget {
                            report.requeued += 1;
                            sift_obs::counter(
                                "sift_fetcher_requeued_total",
                                &[("unit", &unit_identity)],
                            )
                            .inc();
                            let q = Queued {
                                item,
                                priority,
                                attempts,
                                last_unit: Some(unit_idx),
                                bounced: false,
                                ctx,
                            };
                            let requeued = work_tx.as_ref().is_some_and(|tx| tx.send(q).is_ok());
                            if !requeued {
                                outstanding -= 1; // unreachable in practice
                            }
                        } else {
                            report.failed += 1;
                            outstanding -= 1;
                            sift_obs::counter(
                                "sift_fetcher_failed_total",
                                &[("unit", &unit_identity)],
                            )
                            .inc();
                            sift_obs::event(
                                sift_obs::Level::Warn,
                                "fetcher.queue",
                                "item failed permanently",
                                &[
                                    ("unit", serde_json::Value::Str(unit_identity.clone())),
                                    ("attempts", serde_json::Value::UInt(u64::from(attempts))),
                                    ("error", serde_json::Value::Str(error.clone())),
                                ],
                            );
                            report.failed_items.push(FailedWork {
                                item,
                                attempts,
                                error,
                            });
                        }
                    }
                }
                depth.set(work_rx.len() as i64);
                if outstanding == 0 {
                    work_tx = None; // close the channel; workers exit
                }
            }
            drop(work_tx);
            depth.set(0);
            // Lowest priority first: the tail the run chose to sacrifice,
            // in the order a re-plan would reconsider it.
            report.shed_items.sort_by_key(|s| s.priority);
            report
        })
    }
}

/// Classifies one fetch failure: service rejections are permanent (the
/// request itself is bad), transport failures are worth another unit.
fn failed(q: Queued, attempts: u32, e: &FetchError) -> Outcome {
    Outcome::Failed {
        ctx: q.ctx,
        item: q.item,
        priority: q.priority,
        attempts,
        error: e.to_string(),
        permanent: matches!(e, FetchError::Service(_)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_frames, PlanParams};
    use crate::unit::InProcessClient;
    use sift_geo::State;
    use sift_simtime::{Hour, HourRange};
    use sift_trends::{FrameResponse, RisingResponse, Scenario, SearchTerm, TrendsService};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Tests that execute runs serialise on this lock: the queue-depth
    /// gauge is global and single-owner per run, so concurrent test runs
    /// would race its readings.
    static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn units(n: usize) -> (Vec<Arc<dyn TrendsClient>>, Arc<TrendsService>) {
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        let units: Vec<Arc<dyn TrendsClient>> = (0..n)
            .map(|_| Arc::new(InProcessClient::new(Arc::clone(&service))) as Arc<dyn TrendsClient>)
            .collect();
        (units, service)
    }

    fn frame_workload(tag: u64) -> Vec<WorkItem> {
        let plan = plan_frames(HourRange::new(Hour(0), Hour(1000)), PlanParams::default());
        plan.frames
            .iter()
            .map(|f| {
                WorkItem::Frame(FrameRequest {
                    term: SearchTerm::parse("topic:Internet outage"),
                    state: State::CA,
                    start: f.start,
                    len: f.len() as u32,
                    tag,
                })
            })
            .collect()
    }

    #[test]
    fn workload_is_fully_collected() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, service) = units(3);
        let run = CollectionRun::new(units);
        let items = frame_workload(0);
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute(items, &mut store);
        assert_eq!(report.completed, n);
        assert_eq!(report.failed, 0);
        assert!(report.failed_items.is_empty());
        assert_eq!(store.frame_count(), n);
        assert_eq!(service.stats().frames_served, n as u64);
        // Frames come back sorted and contiguous for the pipeline.
        let frames = store.frames_for(State::CA, 0);
        assert_eq!(frames.len(), n);
        for pair in frames.windows(2) {
            assert!(pair[0].start < pair[1].start);
        }
    }

    /// Delegating client that makes each request take ~1ms, so every
    /// worker thread provably joins the drain before the queue empties
    /// (the raw in-process path can be drained by the first worker before
    /// the others have even spawned).
    struct SlowClient(InProcessClient);

    impl TrendsClient for SlowClient {
        fn fetch_frame(
            &self,
            req: &FrameRequest,
        ) -> Result<sift_trends::FrameResponse, sift_trends::FetchError> {
            std::thread::sleep(std::time::Duration::from_millis(1));
            self.0.fetch_frame(req)
        }

        fn fetch_rising(
            &self,
            req: &RisingRequest,
        ) -> Result<sift_trends::RisingResponse, sift_trends::FetchError> {
            std::thread::sleep(std::time::Duration::from_millis(1));
            self.0.fetch_rising(req)
        }

        fn identity(&self) -> &str {
            self.0.identity()
        }
    }

    #[test]
    fn work_is_spread_across_units() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        let units: Vec<Arc<dyn TrendsClient>> = (0..4)
            .map(|_| {
                Arc::new(SlowClient(InProcessClient::new(Arc::clone(&service))))
                    as Arc<dyn TrendsClient>
            })
            .collect();
        let run = CollectionRun::new(units);
        let mut store = ResponseStore::new();
        let report = run.execute(frame_workload(0), &mut store);
        let busy_units = report.per_unit.iter().filter(|(_, n)| *n > 0).count();
        assert!(busy_units >= 2, "expected parallel draining: {report:?}");
    }

    #[test]
    fn fetch_spans_join_the_enqueuing_trace_across_workers() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, _service) = units(3);
        let run = CollectionRun::new(units);
        let items = frame_workload(0);
        let n = items.len();
        let mut store = ResponseStore::new();
        let tid = {
            let root = sift_obs::span_root("queue-trace-test");
            let report = run.execute(items, &mut store);
            assert_eq!(report.completed, n);
            root.context().trace_id
        };
        let trace =
            sift_obs::trace::wait_completed(tid, Duration::from_secs(5)).expect("trace completed");
        let fetches = trace.spans.iter().filter(|s| s.name == "fetch").count();
        assert_eq!(fetches, n, "one fetch span per item, all in the run trace");
        assert!(trace.orphans().is_empty(), "no severed parentage");
    }

    #[test]
    fn requeued_items_keep_their_trace_context() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        let units: Vec<Arc<dyn TrendsClient>> = vec![
            Arc::new(FlakyClient::new(Arc::clone(&service), 4, "flaky")),
            Arc::new(SlowClient(InProcessClient::with_identity(
                Arc::clone(&service),
                "steady",
            ))),
        ];
        let run = CollectionRun::new(units).with_attempt_budget(6);
        let items = frame_workload(0);
        let n = items.len();
        let mut store = ResponseStore::new();
        let tid = {
            let root = sift_obs::span_root("queue-requeue-trace-test");
            let report = run.execute(items, &mut store);
            assert_eq!(report.completed, n, "{report:?}");
            assert!(report.requeued >= 1, "{report:?}");
            root.context().trace_id
        };
        let trace =
            sift_obs::trace::wait_completed(tid, Duration::from_secs(5)).expect("trace completed");
        // Retried items produce extra fetch spans with attempt > 1, still
        // attached to the same trace — never orphan roots.
        let retried = trace
            .spans
            .iter()
            .filter(|s| s.name == "fetch" && s.arg("attempt").is_some_and(|a| a > 1))
            .count();
        assert!(retried >= 1, "requeued fetches carry their attempt number");
        assert!(trace.orphans().is_empty());
    }

    #[test]
    fn bad_requests_fail_permanently_without_requeue() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, _service) = units(1);
        let run = CollectionRun::new(units);
        let mut store = ResponseStore::new();
        let items = vec![WorkItem::Frame(FrameRequest {
            term: SearchTerm::parse("topic:Internet outage"),
            state: State::CA,
            start: Hour(0),
            len: 9999, // over the service limit
            tag: 0,
        })];
        let report = run.execute(items.clone(), &mut store);
        assert_eq!(report.failed, 1);
        assert_eq!(report.completed, 0);
        // Service rejections are permanent: no retry budget is wasted.
        assert_eq!(report.requeued, 0);
        assert_eq!(report.failed_items.len(), 1);
        assert_eq!(report.failed_items[0].item, items[0]);
        assert_eq!(report.failed_items[0].attempts, 1);
        assert_eq!(store.frame_count(), 0);
    }

    /// A unit that fails (transport-style) the first `fail_first` times a
    /// frame is requested from it, then succeeds.
    struct FlakyClient {
        inner: InProcessClient,
        fail_first: usize,
        calls: AtomicUsize,
        identity: String,
    }

    impl FlakyClient {
        fn new(service: Arc<TrendsService>, fail_first: usize, identity: &str) -> Self {
            FlakyClient {
                inner: InProcessClient::with_identity(Arc::clone(&service), identity),
                fail_first,
                calls: AtomicUsize::new(0),
                identity: identity.to_owned(),
            }
        }
    }

    impl TrendsClient for FlakyClient {
        fn fetch_frame(&self, req: &FrameRequest) -> Result<FrameResponse, FetchError> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
                return Err(FetchError::Transport("injected reset".into()));
            }
            self.inner.fetch_frame(req)
        }

        fn fetch_rising(&self, req: &RisingRequest) -> Result<RisingResponse, FetchError> {
            self.inner.fetch_rising(req)
        }

        fn identity(&self) -> &str {
            &self.identity
        }
    }

    #[test]
    fn transient_failures_are_requeued_and_recovered() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        // One unit fails its first 4 frame fetches; the healthy unit (or a
        // later attempt) picks the items back up. Budget 6 > 4 + 1 so even
        // if a single unlucky item absorbs every injected failure it still
        // has headroom to succeed.
        let units: Vec<Arc<dyn TrendsClient>> = vec![
            Arc::new(FlakyClient::new(Arc::clone(&service), 4, "flaky")),
            Arc::new(SlowClient(InProcessClient::with_identity(
                Arc::clone(&service),
                "steady",
            ))),
        ];
        let run = CollectionRun::new(units).with_attempt_budget(6);
        let items = frame_workload(0);
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute(items, &mut store);
        assert_eq!(report.completed, n, "{report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert_eq!(store.frame_count(), n);
        assert!(report.requeued >= 1, "{report:?}");
    }

    #[test]
    fn budget_exhaustion_reports_failed_tags() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let service = Arc::new(TrendsService::with_defaults(Scenario::single_region(
            State::CA,
            vec![],
        )));
        // Every fetch fails: the whole workload must surface in
        // `failed_items` with its tags, not vanish.
        let units: Vec<Arc<dyn TrendsClient>> =
            vec![Arc::new(FlakyClient::new(service, usize::MAX, "dead"))];
        let run = CollectionRun::new(units).with_attempt_budget(3);
        let items = frame_workload(7);
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute(items, &mut store);
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, n);
        assert_eq!(report.failed_items.len(), n);
        assert_eq!(store.frame_count(), 0);
        for f in &report.failed_items {
            assert_eq!(f.attempts, 3);
            assert!(matches!(&f.item, WorkItem::Frame(r) if r.tag == 7));
            assert!(f.error.contains("injected reset"), "{}", f.error);
        }
        // The gauge is zeroed once the run drains, not left at a stale
        // worker-set value.
        assert_eq!(sift_obs::gauge("sift_fetcher_queue_depth", &[]).get(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one fetcher unit")]
    fn zero_units_rejected() {
        let _ = CollectionRun::new(vec![]);
    }

    fn open_breaker() -> Arc<CircuitBreaker> {
        let breaker = Arc::new(CircuitBreaker::new(
            "queue-test",
            sift_net::BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(3600),
                success_threshold: 1,
            },
        ));
        breaker.record_failure();
        assert_eq!(breaker.state(), sift_net::BreakerState::Open);
        breaker
    }

    fn prioritized_workload() -> Vec<(WorkItem, i32)> {
        frame_workload(0)
            .into_iter()
            .enumerate()
            .map(|(i, w)| (w, i as i32))
            .collect()
    }

    #[test]
    fn open_breaker_sheds_instead_of_fetching() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, service) = units(2);
        let run = CollectionRun::new(units).with_breaker(open_breaker());
        let items = prioritized_workload();
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute_prioritized(items, &mut store);
        assert_eq!(report.shed, n, "{report:?}");
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.requeued, 0);
        assert_eq!(store.frame_count(), 0);
        assert_eq!(
            service.stats().frames_served,
            0,
            "no fetch may reach the service"
        );
        // Shed items are reported lowest priority first, with the cause.
        assert_eq!(report.shed_items.len(), n);
        for (i, s) in report.shed_items.iter().enumerate() {
            assert_eq!(s.priority, i as i32);
            assert_eq!(s.reason, ShedCause::BreakerOpen);
        }
    }

    #[test]
    fn spent_deadline_sheds_the_queue() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, _service) = units(1);
        let run = CollectionRun::new(units).with_deadline(Duration::ZERO);
        let items = frame_workload(0);
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute(items, &mut store);
        assert_eq!(report.shed, n, "{report:?}");
        assert_eq!(report.completed, 0);
        assert!(report
            .shed_items
            .iter()
            .all(|s| s.reason == ShedCause::Deadline));
    }

    #[test]
    fn resume_skips_journaled_work_and_fetches_the_rest() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, service) = units(2);
        let run = CollectionRun::new(units);
        let items = prioritized_workload();
        let n = items.len();
        let dir = sift_journal::testutil::scratch_dir("queue_resume");

        // First pass: crawl the first half of the plan durably.
        let half = n / 2;
        {
            let (mut durable, _) = crate::durable::DurableStore::open(&dir).expect("open");
            let report = run.resume(items[..half].to_vec(), &mut durable);
            assert_eq!(report.completed, half);
            assert_eq!(report.resumed, 0);
        }
        let fetched_before_resume = service.stats().frames_served;

        // Second pass over the FULL plan: the journaled half is skipped,
        // only the rest reaches the service.
        let (mut durable, recovered) = crate::durable::DurableStore::open(&dir).expect("reopen");
        assert_eq!(recovered.replayed, half);
        let report = run.resume(items, &mut durable);
        assert_eq!(report.resumed, half, "{report:?}");
        assert_eq!(report.completed, n - half, "{report:?}");
        assert_eq!(report.failed, 0);
        assert_eq!(durable.store().frame_count(), n);
        assert_eq!(
            service.stats().frames_served - fetched_before_resume,
            (n - half) as u64,
            "already-journaled frames must not be re-fetched"
        );
    }

    /// Regression (`fulfilled_by` re-partition): a journaled response at
    /// the right `(state, start, tag)` key but answering a *different*
    /// request (here: wrong frame length) must not count the planned item
    /// as resumed. Before the fix such an item vanished from the totals —
    /// neither served nor requeued — and the downstream pipeline saw a
    /// frame of the wrong shape.
    #[test]
    fn resume_refetches_items_the_store_only_pretends_to_hold() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, service) = units(1);
        let run = CollectionRun::new(units);
        let dir = sift_journal::testutil::scratch_dir("queue_resume_mismatch");
        let term = SearchTerm::parse("topic:Internet outage");

        // Journal a 24-hour frame at the coordinates the plan below will
        // request as a 168-hour frame.
        {
            let (mut durable, _) = crate::durable::DurableStore::open(&dir).expect("open");
            durable.insert_frame(
                0,
                FrameResponse {
                    term: term.clone(),
                    state: State::CA,
                    start: Hour(0),
                    values: vec![50; 24],
                },
            );
        }

        let (mut durable, recovered) = crate::durable::DurableStore::open(&dir).expect("reopen");
        assert_eq!(recovered.replayed, 1);
        let item = WorkItem::Frame(FrameRequest {
            term,
            state: State::CA,
            start: Hour(0),
            len: 168,
            tag: 0,
        });
        let report = run.resume(vec![(item, 0)], &mut durable);
        assert_eq!(report.resumed, 0, "mismatched entry is not a resume hit");
        assert_eq!(report.completed, 1, "the item is genuinely fetched");
        assert_eq!(
            report.resumed + report.completed + report.failed + report.shed,
            1,
            "every planned item is accounted for exactly once: {report:?}"
        );
        assert_eq!(service.stats().frames_served, 1);
        let resp = durable
            .store()
            .frame(&FrameKey {
                state: State::CA,
                start: Hour(0),
                tag: 0,
            })
            .expect("refetched frame");
        assert_eq!(
            resp.values.len(),
            168,
            "the re-fetch replaces the mismatched journal entry"
        );
    }

    #[test]
    fn closed_breaker_does_not_disturb_collection() {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (units, _service) = units(2);
        let breaker = Arc::new(CircuitBreaker::new(
            "queue-test-closed",
            sift_net::BreakerConfig::default(),
        ));
        let run = CollectionRun::new(units)
            .with_breaker(breaker)
            .with_deadline(Duration::from_secs(600));
        let items = prioritized_workload();
        let n = items.len();
        let mut store = ResponseStore::new();
        let report = run.execute_prioritized(items, &mut store);
        assert_eq!(report.completed, n, "{report:?}");
        assert_eq!(report.shed, 0);
        assert_eq!(store.frame_count(), n);
    }
}

//! A crash-safe wrapper around [`ResponseStore`].
//!
//! Every insert is journaled (as a JSON [`StoreRecord`] inside a
//! CRC-framed `sift-journal` record) *before* it is applied in memory, so
//! a process that dies mid-crawl loses at most the response in flight.
//! [`DurableStore::checkpoint`] compacts: the whole store is snapshotted
//! atomically (temp + fsync + rename) and the journal emptied, keeping
//! recovery time bounded by work-since-last-checkpoint rather than the
//! whole crawl.
//!
//! Layout inside the durability directory:
//!
//! ```text
//! <dir>/store.ckpt   atomic snapshot (ResponseStore::to_json, CRC-framed)
//! <dir>/store.wal    write-ahead journal of inserts since the snapshot
//! ```
//!
//! Recovery = read the checkpoint (or start empty) + replay the journal
//! on top. The composition property — checkpoint + journal ≡ pure
//! replay — is proven in `crates/journal/tests/prop.rs`.

use crate::store::{ResponseSink, ResponseStore};
use serde::{Deserialize, Serialize};
use sift_journal::{read_checkpoint, write_checkpoint, CrashInjector, Journal};
use sift_trends::{FrameResponse, RisingResponse};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One journaled store mutation.
#[derive(Serialize, Deserialize)]
enum StoreRecord {
    /// A frame response fetched under `tag`.
    Frame {
        /// Sample tag the frame was fetched under.
        tag: u64,
        /// The response.
        resp: FrameResponse,
    },
    /// A rising response for a `len`-hour frame.
    Rising {
        /// Frame length in hours.
        len: u32,
        /// The response.
        resp: RisingResponse,
    },
}

/// What [`DurableStore::open`] recovered from disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeReport {
    /// Store entries restored from the checkpoint snapshot.
    pub from_checkpoint: usize,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Whether the journal ended in a torn tail that was truncated.
    pub torn_tail: bool,
    /// Journal records whose CRC was valid but whose JSON payload did not
    /// parse — possible only across an incompatible format change.
    pub undecodable: usize,
}

/// A [`ResponseStore`] whose every insert survives a process crash.
pub struct DurableStore {
    store: ResponseStore,
    journal: Journal,
    ckpt_path: PathBuf,
    crash: Option<Arc<CrashInjector>>,
    io_error: Option<io::Error>,
}

impl DurableStore {
    /// Opens (creating if needed) the durability directory, recovering
    /// checkpoint + journal into the in-memory store.
    pub fn open(dir: &Path) -> io::Result<(DurableStore, ResumeReport)> {
        DurableStore::open_with(dir, None)
    }

    /// [`DurableStore::open`] with crash injection wired into the journal
    /// and checkpoint paths.
    pub fn open_with(
        dir: &Path,
        crash: Option<Arc<CrashInjector>>,
    ) -> io::Result<(DurableStore, ResumeReport)> {
        std::fs::create_dir_all(dir)?;
        let ckpt_path = dir.join("store.ckpt");
        let mut report = ResumeReport::default();
        let mut store = match read_checkpoint(&ckpt_path)? {
            Some(bytes) => {
                let json = String::from_utf8(bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                ResponseStore::from_json(&json)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            }
            None => ResponseStore::new(),
        };
        report.from_checkpoint = store.frame_count() + store.rising_count();

        let (journal, recovery) = Journal::open_with(&dir.join("store.wal"), crash.clone())?;
        report.torn_tail = recovery.torn_tail;
        for payload in &recovery.records {
            let parsed = std::str::from_utf8(payload)
                .ok()
                .and_then(|json| serde_json::from_str::<StoreRecord>(json).ok());
            match parsed {
                Some(StoreRecord::Frame { tag, resp }) => {
                    store.insert_frame(tag, resp);
                    report.replayed += 1;
                }
                Some(StoreRecord::Rising { len, resp }) => {
                    store.insert_rising(len, resp);
                    report.replayed += 1;
                }
                None => report.undecodable += 1,
            }
        }
        if report.undecodable > 0 {
            sift_obs::event(
                sift_obs::Level::Warn,
                "fetcher.durable",
                "journal records with valid CRC failed to decode",
                &[(
                    "undecodable",
                    serde_json::Value::UInt(u64::try_from(report.undecodable).unwrap_or(u64::MAX)),
                )],
            );
        }
        Ok((
            DurableStore {
                store,
                journal,
                ckpt_path,
                crash,
                io_error: None,
            },
            report,
        ))
    }

    /// The recovered + accumulated in-memory store.
    pub fn store(&self) -> &ResponseStore {
        &self.store
    }

    /// Consumes the wrapper, returning the in-memory store.
    pub fn into_store(self) -> ResponseStore {
        self.store
    }

    /// Snapshots the whole store atomically and empties the journal.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let json = self
            .store
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_checkpoint(&self.ckpt_path, json.as_bytes(), self.crash.as_deref())?;
        self.journal.truncate_all()
    }

    /// Forces the journal's batched fsync now.
    pub fn sync(&mut self) -> io::Result<()> {
        self.journal.sync()
    }

    /// The first I/O error a journaled insert hit, if any. The sink keeps
    /// collecting in memory past the error (the crawl still completes);
    /// the caller decides whether a weakened durability guarantee is
    /// acceptable.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    fn journal_insert(&mut self, record: &StoreRecord) {
        let json = match serde_json::to_string(record) {
            Ok(j) => j,
            Err(e) => {
                self.remember_error(io::Error::new(io::ErrorKind::InvalidData, e));
                return;
            }
        };
        if let Err(e) = self.journal.append(json.as_bytes()) {
            self.remember_error(e);
        }
    }

    fn remember_error(&mut self, e: io::Error) {
        sift_obs::counter("sift_fetcher_durable_write_errors_total", &[]).inc();
        sift_obs::event(
            sift_obs::Level::Error,
            "fetcher.durable",
            "journaled insert failed; continuing in memory only",
            &[("error", serde_json::Value::Str(e.to_string()))],
        );
        if self.io_error.is_none() {
            self.io_error = Some(e);
        }
    }
}

/// What [`merge_journal_dirs`] recovered and folded together.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalMergeReport {
    /// Durability directories merged.
    pub sources: usize,
    /// Store entries restored from checkpoint snapshots, across sources.
    pub from_checkpoint: usize,
    /// Journal records replayed on top of checkpoints, across sources.
    pub replayed: usize,
    /// Sources whose journal ended in a torn tail (truncated on open).
    pub torn_tails: usize,
    /// Entries where two sources held a response for the same key. For a
    /// deterministic service this is benign duplication from rerouted
    /// work — the responses are byte-identical — but the count is
    /// surfaced so a nondeterministic upstream can be caught.
    pub conflicts: usize,
}

/// Recovers each per-worker durability directory (checkpoint + journal,
/// torn tails repaired) and merges them into one in-memory
/// [`ResponseStore`], as if a single process had journaled every fetch.
///
/// This is how a sharded crawl's per-worker journals (see `sift-cluster`)
/// become one store: merge order does not matter for a deterministic
/// service because duplicate keys carry identical payloads, and the
/// result equals the replay of one combined journal — the property pinned
/// by the proptest in `crates/fetcher/tests/merge_prop.rs`.
pub fn merge_journal_dirs(dirs: &[PathBuf]) -> io::Result<(ResponseStore, JournalMergeReport)> {
    let mut merged = ResponseStore::new();
    let mut report = JournalMergeReport {
        sources: dirs.len(),
        ..JournalMergeReport::default()
    };
    for dir in dirs {
        let (durable, resume) = DurableStore::open(dir)?;
        report.from_checkpoint += resume.from_checkpoint;
        report.replayed += resume.replayed;
        report.torn_tails += usize::from(resume.torn_tail);
        let m = merged.merge(durable.into_store());
        report.conflicts += m.conflicts;
    }
    Ok((merged, report))
}

impl ResponseSink for DurableStore {
    fn insert_frame(&mut self, tag: u64, resp: FrameResponse) {
        let record = StoreRecord::Frame { tag, resp };
        self.journal_insert(&record);
        if let StoreRecord::Frame { tag, resp } = record {
            self.store.insert_frame(tag, resp);
        }
    }

    fn insert_rising(&mut self, len: u32, resp: RisingResponse) {
        let record = StoreRecord::Rising { len, resp };
        self.journal_insert(&record);
        if let StoreRecord::Rising { len, resp } = record {
            self.store.insert_rising(len, resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_geo::State;
    use sift_journal::testutil::scratch_dir;
    use sift_journal::{CrashPlan, CrashSite};
    use sift_simtime::Hour;
    use sift_trends::api::RisingTerm;
    use sift_trends::SearchTerm;

    fn frame(state: State, start: i64, values: Vec<u8>) -> FrameResponse {
        FrameResponse {
            term: SearchTerm::parse("topic:Internet outage"),
            state,
            start: Hour(start),
            values,
        }
    }

    fn rising(state: State, start: i64) -> RisingResponse {
        RisingResponse {
            state,
            start: Hour(start),
            rising: vec![RisingTerm {
                term: "internet outage".into(),
                weight: 77,
            }],
        }
    }

    #[test]
    fn inserts_survive_reopen() {
        let dir = scratch_dir("durable_reopen");
        {
            let (mut d, report) = DurableStore::open(&dir).expect("open");
            assert_eq!(report, ResumeReport::default());
            d.insert_frame(0, frame(State::TX, 100, vec![1, 2, 3]));
            d.insert_rising(168, rising(State::TX, 100));
            assert!(d.io_error().is_none());
        }
        let (d, report) = DurableStore::open(&dir).expect("reopen");
        assert_eq!(report.replayed, 2);
        assert_eq!(report.from_checkpoint, 0);
        assert!(!report.torn_tail);
        assert_eq!(d.store().frame_count(), 1);
        assert_eq!(d.store().rising_count(), 1);
        assert_eq!(d.store().frames_for(State::TX, 0)[0].values, vec![1, 2, 3]);
        assert_eq!(d.store().rising_for(State::TX)[0].1.rising[0].weight, 77);
    }

    #[test]
    fn checkpoint_compacts_without_changing_recovery() {
        let dir = scratch_dir("durable_ckpt");
        {
            let (mut d, _) = DurableStore::open(&dir).expect("open");
            d.insert_frame(0, frame(State::TX, 100, vec![1]));
            d.insert_frame(0, frame(State::TX, 200, vec![2]));
            d.checkpoint().expect("checkpoint");
            // Post-checkpoint inserts land in the (now empty) journal.
            d.insert_frame(1, frame(State::TX, 100, vec![3]));
        }
        let (d, report) = DurableStore::open(&dir).expect("reopen");
        assert_eq!(report.from_checkpoint, 2);
        assert_eq!(report.replayed, 1);
        assert_eq!(d.store().frame_count(), 3);
    }

    #[test]
    fn crash_mid_record_loses_only_the_insert_in_flight() {
        let dir = scratch_dir("durable_crash");
        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(CrashSite::MidJournalRecord, 1),
        ));
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (mut d, _) = DurableStore::open_with(&dir, Some(inj)).expect("open");
            d.insert_frame(0, frame(State::TX, 100, vec![1]));
            d.insert_frame(0, frame(State::TX, 200, vec![2])); // dies mid-record
        }))
        .is_err();
        assert!(crashed, "injected crash must fire");
        let (d, report) = DurableStore::open(&dir).expect("recovery");
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 1);
        assert_eq!(
            d.store().frame_count(),
            1,
            "only the in-flight insert is lost"
        );
        assert!(d.store().frames_for(State::TX, 0)[0].start == Hour(100));
    }
}

//! SIFT's collection module.
//!
//! "As the data collection module's primary bottleneck is GT's IP-based
//! rate-limiting, the collection module first maps the queued workload
//! into fetcher units hosted behind separate IP addresses. The collection
//! module then merges the responses gathered from the fetchers into a
//! unified database" (§4, *Implementation*). This crate is that module:
//!
//! * [`plan`] — partitions a study range into consecutive, overlapping
//!   weekly frames and expands them into the full request workload,
//! * [`serve`] — hosts a [`sift_trends::TrendsService`] behind a
//!   `sift-net` HTTP router (the service side of the crawl),
//! * [`unit`] — fetcher units: one identity each, in-process or HTTP,
//! * [`queue`] — maps the workload across units on worker threads and
//!   gathers responses,
//! * [`store`] — the unified response database, JSON-persistable,
//! * [`durable`] — a crash-safe store wrapper (write-ahead journal +
//!   atomic checkpoints) powering `CollectionRun::resume`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan {
    //! Re-export of the frame planner (the plan is SIFT core logic, §3.1;
    //! it lives in `sift-core` and is re-exported here for crawl code).
    pub use sift_core::plan::*;
}
pub mod durable;
pub mod queue;
pub mod serve;
pub mod store;
pub mod unit;

pub use durable::{merge_journal_dirs, DurableStore, JournalMergeReport, ResumeReport};
pub use queue::{CollectionRun, FailedWork, RunReport, ShedCause, ShedWork, WorkItem};
pub use serve::trends_router;
pub use sift_core::plan::{plan_frames, FramePlan, PlanParams};
pub use store::{MergeReport, ResponseSink, ResponseStore};
pub use unit::{FetchError, HttpTrendsClient, InProcessClient, RoundRobin, TrendsClient};

//! The unified response database.

use serde::{Deserialize, Serialize};
use sift_geo::State;
use sift_simtime::Hour;
use sift_trends::{FrameResponse, RisingResponse};
use std::collections::HashMap;

/// Key of one fetched frame: region, frame start, sample tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FrameKey {
    /// Region the frame was fetched for.
    pub state: State,
    /// First hour of the frame.
    pub start: Hour,
    /// Sample tag (re-fetch round).
    pub tag: u64,
}

/// Key of one rising-suggestions response.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RisingKey {
    /// Region the suggestions were fetched for.
    pub state: State,
    /// First hour of the frame.
    pub start: Hour,
    /// Frame length in hours (weekly crawl vs daily drill-down).
    pub len: u32,
}

/// Anywhere a collection run can deliver responses: the plain in-memory
/// [`ResponseStore`], or a durability wrapper that journals every insert
/// before applying it (see `DurableStore`). Delivery is infallible by
/// design — a durable sink that hits an I/O error keeps collecting in
/// memory and surfaces the error after the run, so a disk hiccup never
/// aborts a crawl that can still make progress.
pub trait ResponseSink {
    /// Delivers a frame response fetched under `tag`.
    fn insert_frame(&mut self, tag: u64, resp: FrameResponse);
    /// Delivers a rising response for a `len`-hour frame.
    fn insert_rising(&mut self, len: u32, resp: RisingResponse);
}

impl ResponseSink for ResponseStore {
    fn insert_frame(&mut self, tag: u64, resp: FrameResponse) {
        ResponseStore::insert_frame(self, tag, resp);
    }

    fn insert_rising(&mut self, len: u32, resp: RisingResponse) {
        ResponseStore::insert_rising(self, len, resp);
    }
}

/// What [`ResponseStore::merge`] absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Frame entries that were new to the receiving store.
    pub frames_added: usize,
    /// Rising entries that were new to the receiving store.
    pub rising_added: usize,
    /// Keys present on both sides with different payloads (newcomer won).
    pub conflicts: usize,
}

/// The merged database of everything the fetcher units gathered.
///
/// Responses arrive from many units in arbitrary order; the store is the
/// single place they are merged, deduplicated and later read back by the
/// processing pipeline. Persistable to JSON.
#[derive(Clone, Debug, Default)]
pub struct ResponseStore {
    frames: HashMap<FrameKey, FrameResponse>,
    rising: HashMap<RisingKey, RisingResponse>,
}

/// Serialized form (JSON maps need string keys, so entries are listed).
#[derive(Serialize, Deserialize)]
struct StoreDoc {
    frames: Vec<(FrameKey, FrameResponse)>,
    rising: Vec<(RisingKey, RisingResponse)>,
}

impl ResponseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a frame response.
    pub fn insert_frame(&mut self, tag: u64, resp: FrameResponse) {
        let key = FrameKey {
            state: resp.state,
            start: resp.start,
            tag,
        };
        self.frames.insert(key, resp);
    }

    /// Inserts (or replaces) a rising response.
    pub fn insert_rising(&mut self, len: u32, resp: RisingResponse) {
        let key = RisingKey {
            state: resp.state,
            start: resp.start,
            len,
        };
        self.rising.insert(key, resp);
    }

    /// All frames of one region and tag, sorted by frame start — the
    /// input the stitching pipeline consumes.
    pub fn frames_for(&self, state: State, tag: u64) -> Vec<&FrameResponse> {
        let mut out: Vec<&FrameResponse> = self
            .frames
            .iter()
            .filter(|(k, _)| k.state == state && k.tag == tag)
            .map(|(_, v)| v)
            .collect();
        out.sort_by_key(|f| f.start);
        out
    }

    /// One specific frame, if present.
    pub fn frame(&self, key: &FrameKey) -> Option<&FrameResponse> {
        self.frames.get(key)
    }

    /// One specific rising response, if present.
    pub fn rising(&self, key: &RisingKey) -> Option<&RisingResponse> {
        self.rising.get(key)
    }

    /// All rising responses for a region, sorted by frame start.
    pub fn rising_for(&self, state: State) -> Vec<(&RisingKey, &RisingResponse)> {
        let mut out: Vec<(&RisingKey, &RisingResponse)> = self
            .rising
            .iter()
            .filter(|(k, _)| k.state == state)
            .collect();
        out.sort_by_key(|(k, _)| (k.start, k.len));
        out
    }

    /// Of `planned` frame starts for one region and tag, the ones the
    /// store does *not* hold — the re-plan input after a lossy run.
    pub fn missing_frames(&self, state: State, tag: u64, planned: &[Hour]) -> Vec<Hour> {
        planned
            .iter()
            .copied()
            .filter(|&start| !self.frames.contains_key(&FrameKey { state, start, tag }))
            .collect()
    }

    /// Number of stored frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of stored rising responses.
    pub fn rising_count(&self) -> usize {
        self.rising.len()
    }

    /// Absorbs another store (other's entries win on key collisions) and
    /// reports what happened. A *conflict* is a key present on both sides
    /// with **different** payloads — for deterministic same-seed crawls
    /// (and for journal replay on resume) the expected conflict count is
    /// zero, so conflicts are counted in
    /// `sift_store_merge_conflicts_total` and surfaced as a debug event
    /// instead of being silently last-writer-wins.
    pub fn merge(&mut self, other: ResponseStore) -> MergeReport {
        let mut report = MergeReport::default();
        for (key, value) in other.frames {
            match self.frames.insert(key, value) {
                None => report.frames_added += 1,
                Some(prev) => {
                    if prev != self.frames[&key] {
                        report.conflicts += 1;
                        sift_obs::counter("sift_store_merge_conflicts_total", &[("kind", "frame")])
                            .inc();
                        sift_obs::event(
                            sift_obs::Level::Debug,
                            "fetcher.store",
                            "merge overwrote a frame with different data",
                            &[
                                (
                                    "state",
                                    serde_json::Value::Str(key.state.abbrev().to_owned()),
                                ),
                                ("start", serde_json::Value::Int(key.start.0)),
                                ("tag", serde_json::Value::UInt(key.tag)),
                            ],
                        );
                    }
                }
            }
        }
        for (key, value) in other.rising {
            match self.rising.insert(key, value) {
                None => report.rising_added += 1,
                Some(prev) => {
                    if prev != self.rising[&key] {
                        report.conflicts += 1;
                        sift_obs::counter(
                            "sift_store_merge_conflicts_total",
                            &[("kind", "rising")],
                        )
                        .inc();
                        sift_obs::event(
                            sift_obs::Level::Debug,
                            "fetcher.store",
                            "merge overwrote a rising response with different data",
                            &[
                                (
                                    "state",
                                    serde_json::Value::Str(key.state.abbrev().to_owned()),
                                ),
                                ("start", serde_json::Value::Int(key.start.0)),
                                ("len", serde_json::Value::UInt(u64::from(key.len))),
                            ],
                        );
                    }
                }
            }
        }
        report
    }

    /// Serializes the store to a JSON document.
    pub fn to_json(&self) -> serde_json::Result<String> {
        let mut frames: Vec<_> = self.frames.iter().map(|(k, v)| (*k, v.clone())).collect();
        frames.sort_by_key(|(k, _)| (k.state.index(), k.start, k.tag));
        let mut rising: Vec<_> = self.rising.iter().map(|(k, v)| (*k, v.clone())).collect();
        rising.sort_by_key(|(k, _)| (k.state.index(), k.start, k.len));
        serde_json::to_string(&StoreDoc { frames, rising })
    }

    /// Restores a store from [`ResponseStore::to_json`] output.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        let doc: StoreDoc = serde_json::from_str(json)?;
        Ok(ResponseStore {
            frames: doc.frames.into_iter().collect(),
            rising: doc.rising.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sift_trends::api::RisingTerm;
    use sift_trends::SearchTerm;

    fn frame(state: State, start: i64) -> FrameResponse {
        FrameResponse {
            term: SearchTerm::parse("topic:Internet outage"),
            state,
            start: Hour(start),
            values: vec![0, 50, 100],
        }
    }

    #[test]
    fn frames_sorted_and_filtered() {
        let mut s = ResponseStore::new();
        s.insert_frame(0, frame(State::TX, 200));
        s.insert_frame(0, frame(State::TX, 100));
        s.insert_frame(1, frame(State::TX, 150));
        s.insert_frame(0, frame(State::CA, 100));
        let frames = s.frames_for(State::TX, 0);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].start, Hour(100));
        assert_eq!(frames[1].start, Hour(200));
        assert_eq!(s.frame_count(), 4);
    }

    #[test]
    fn reinsert_replaces() {
        let mut s = ResponseStore::new();
        s.insert_frame(0, frame(State::TX, 100));
        let mut f2 = frame(State::TX, 100);
        f2.values = vec![1, 2, 3];
        s.insert_frame(0, f2);
        assert_eq!(s.frame_count(), 1);
        assert_eq!(s.frames_for(State::TX, 0)[0].values, vec![1, 2, 3]);
    }

    #[test]
    fn json_round_trip() {
        let mut s = ResponseStore::new();
        s.insert_frame(0, frame(State::TX, 100));
        s.insert_rising(
            168,
            RisingResponse {
                state: State::TX,
                start: Hour(100),
                rising: vec![RisingTerm {
                    term: "power outage".into(),
                    weight: 242,
                }],
            },
        );
        let json = s.to_json().expect("encode");
        let back = ResponseStore::from_json(&json).expect("decode");
        assert_eq!(back.frame_count(), 1);
        assert_eq!(back.rising_count(), 1);
        assert_eq!(back.frames_for(State::TX, 0)[0].values, vec![0, 50, 100]);
        assert_eq!(back.rising_for(State::TX)[0].1.rising[0].weight, 242);
    }

    #[test]
    fn missing_frames_lists_only_absent_starts() {
        let mut s = ResponseStore::new();
        s.insert_frame(0, frame(State::TX, 100));
        s.insert_frame(1, frame(State::TX, 200));
        let planned = [Hour(100), Hour(200), Hour(300)];
        // Tag 0 holds only start 100; tag 1's entry does not count.
        assert_eq!(
            s.missing_frames(State::TX, 0, &planned),
            vec![Hour(200), Hour(300)]
        );
        assert_eq!(s.missing_frames(State::CA, 0, &planned), planned.to_vec());
    }

    #[test]
    fn merge_prefers_newcomer_and_counts_the_conflict() {
        let mut a = ResponseStore::new();
        a.insert_frame(0, frame(State::TX, 100));
        let mut b = ResponseStore::new();
        let mut f = frame(State::TX, 100);
        f.values = vec![9];
        b.insert_frame(0, f);
        let report = a.merge(b);
        assert_eq!(a.frame_count(), 1);
        assert_eq!(a.frames_for(State::TX, 0)[0].values, vec![9]);
        assert_eq!(
            report,
            MergeReport {
                frames_added: 0,
                rising_added: 0,
                conflicts: 1,
            }
        );
    }

    #[test]
    fn merge_of_identical_duplicates_is_not_a_conflict() {
        let mut a = ResponseStore::new();
        a.insert_frame(0, frame(State::TX, 100));
        let mut b = ResponseStore::new();
        b.insert_frame(0, frame(State::TX, 100)); // byte-identical twin
        b.insert_frame(0, frame(State::TX, 200)); // genuinely new
        b.insert_rising(
            168,
            RisingResponse {
                state: State::TX,
                start: Hour(100),
                rising: vec![],
            },
        );
        let report = a.merge(b);
        assert_eq!(
            report,
            MergeReport {
                frames_added: 1,
                rising_added: 1,
                conflicts: 0,
            }
        );
        assert_eq!(a.frame_count(), 2);
    }
}

//! Rising-suggestion serving throughput (weekly and daily frames).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sift_geo::State;
use sift_simtime::Hour;
use sift_trends::{RisingRequest, SearchTerm};

fn bench_rising(c: &mut Criterion) {
    let service = sift_bench::scaled_service(0.5, &[]);
    let term = SearchTerm::parse("topic:Internet outage");
    let mut group = c.benchmark_group("rising");
    for (label, len) in [("weekly", 168u32), ("daily", 24u32)] {
        group.bench_with_input(BenchmarkId::new("frame", label), &len, |b, &len| {
            let mut start = 0i64;
            b.iter(|| {
                start = (start + 731) % 15_000;
                service
                    .fetch_rising(&RisingRequest {
                        term: term.clone(),
                        state: State::CA,
                        start: Hour(start),
                        len,
                        tag: 0,
                    })
                    .expect("rising")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rising);
criterion_main!(benches);

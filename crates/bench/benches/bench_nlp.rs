//! Embedding + semantic clustering throughput on suggestion corpora.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sift_nlp::{cluster_phrases, Embedding, DEFAULT_SIMILARITY_THRESHOLD};

fn corpus(n: usize) -> Vec<(String, f64)> {
    let providers = ["verizon", "comcast", "spectrum", "xfinity", "att", "cox"];
    let variants = [
        "outage",
        "down",
        "not working",
        "internet outage",
        "outage map",
    ];
    (0..n)
        .map(|i| {
            let p = providers[i % providers.len()];
            let v = variants[(i / providers.len()) % variants.len()];
            (format!("{p} {v}"), 100.0 - (i % 50) as f64)
        })
        .collect()
}

fn bench_nlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("nlp");
    group.bench_function("embed_phrase", |b| {
        b.iter(|| Embedding::of_phrase(std::hint::black_box("is verizon down in san jose")));
    });
    for n in [10usize, 40, 160] {
        let phrases = corpus(n);
        group.bench_with_input(BenchmarkId::new("cluster", n), &phrases, |b, phrases| {
            b.iter(|| cluster_phrases(std::hint::black_box(phrases), DEFAULT_SIMILARITY_THRESHOLD));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nlp);
criterion_main!(benches);

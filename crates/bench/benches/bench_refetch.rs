//! Re-fetch averaging cost per round budget (the DESIGN.md ablation:
//! sampling error vs rounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sift_core::plan::{plan_frames, PlanParams};
use sift_core::refetch::{averaged_timeline, RefetchParams};
use sift_core::DetectParams;
use sift_geo::State;
use sift_simtime::{Hour, HourRange};
use sift_trends::SearchTerm;

fn bench_refetch(c: &mut Criterion) {
    let service = sift_bench::scaled_service(0.05, &[State::TX]);
    let frames = plan_frames(
        HourRange::new(Hour(0), Hour(90 * 24)),
        PlanParams::default(),
    )
    .frames;
    let term = SearchTerm::parse("topic:Internet outage");
    let mut group = c.benchmark_group("refetch");
    group.sample_size(10);
    for rounds in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("rounds", rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                averaged_timeline(
                    &service,
                    &term,
                    State::TX,
                    &frames,
                    &RefetchParams {
                        max_rounds: rounds,
                        convergence: 2.0, // force the full budget
                        ..RefetchParams::default()
                    },
                    &DetectParams::default(),
                )
                .expect("refetch")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refetch);
criterion_main!(benches);

//! End-to-end single-region study (the paper's unit of work per state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sift_core::run_study;
use sift_geo::State;

fn bench_study(c: &mut Criterion) {
    let service = sift_bench::scaled_service(0.2, &[State::TX]);
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    for days in [30i64, 90] {
        let params = sift_bench::quick_params(State::TX, days);
        group.bench_with_input(BenchmarkId::new("days", days), &params, |b, params| {
            b.iter(|| run_study(&service, params).expect("study"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);

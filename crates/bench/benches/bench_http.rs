//! HTTP substrate throughput: parser and end-to-end round trips.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use sift_net::http::{parse_request, serialize_request};
use sift_net::{HttpClient, Method, Request, Response, Router, Server, StatusCode};

fn bench_http(c: &mut Criterion) {
    let mut group = c.benchmark_group("http");

    // Parser throughput on a realistic POST.
    let req = Request::post_json(
        "/api/frame",
        &serde_json::json!({
            "term": {"Topic": "InternetOutage"},
            "state": "TX",
            "start": 9874,
            "len": 168,
            "tag": 3,
        }),
    )
    .expect("encode");
    let wire = serialize_request(&req);
    group.bench_function("parse_request", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&wire[..]);
            parse_request(&mut buf).expect("parse").expect("complete")
        });
    });
    group.bench_function("serialize_request", |b| {
        b.iter(|| serialize_request(std::hint::black_box(&req)));
    });

    // End-to-end keep-alive round trips against a live server.
    let router = Router::new().route(Method::Get, "/ping", |_| {
        Response::text(StatusCode::OK, "pong")
    });
    let server = Server::new(router).bind("127.0.0.1:0").expect("bind");
    let client = HttpClient::new(server.addr());
    let ping = Request::get("/ping");
    group.bench_function("round_trip", |b| {
        b.iter(|| client.send(std::hint::black_box(&ping)).expect("send"));
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_http);
criterion_main!(benches);

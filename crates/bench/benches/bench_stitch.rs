//! Stitching/renormalization throughput vs frame count and overlap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sift_core::plan::{plan_frames, PlanParams};
use sift_core::timeline::stitch;
use sift_geo::State;
use sift_simtime::{Hour, HourRange};
use sift_trends::{FrameRequest, FrameResponse, SearchTerm};

fn frames_for(days: i64, step: u32) -> Vec<FrameResponse> {
    let service = sift_bench::scaled_service(0.05, &[State::TX]);
    let plan = plan_frames(
        HourRange::new(Hour(0), Hour(days * 24)),
        PlanParams {
            frame_len: 168,
            step,
        },
    );
    plan.frames
        .iter()
        .map(|f| {
            service
                .fetch_frame(&FrameRequest {
                    term: SearchTerm::parse("topic:Internet outage"),
                    state: State::TX,
                    start: f.start,
                    len: f.len() as u32,
                    tag: 0,
                })
                .expect("frame")
        })
        .collect()
}

fn bench_stitch(c: &mut Criterion) {
    let mut group = c.benchmark_group("stitch");
    for days in [30i64, 180, 731] {
        let frames = frames_for(days, 84);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        group.bench_with_input(BenchmarkId::new("days", days), &refs, |b, refs| {
            b.iter(|| stitch(std::hint::black_box(refs)).expect("stitch"));
        });
    }
    for step in [84u32, 144] {
        let frames = frames_for(180, step);
        let refs: Vec<&FrameResponse> = frames.iter().collect();
        group.bench_with_input(BenchmarkId::new("overlap", 168 - step), &refs, |b, refs| {
            b.iter(|| stitch(std::hint::black_box(refs)).expect("stitch"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stitch);
criterion_main!(benches);

//! Spike-detection throughput vs series length and spike density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sift_core::detect::{detect_spikes, DetectParams};
use sift_core::timeline::Timeline;
use sift_geo::State;
use sift_simtime::Hour;

fn synthetic_series(len: usize, spike_every: usize) -> Timeline {
    let mut values = vec![0.0f64; len];
    let mut i = 10;
    while i + 6 < len {
        values[i] = 40.0;
        values[i + 1] = 100.0;
        values[i + 2] = 70.0;
        values[i + 3] = 30.0;
        i += spike_every;
    }
    Timeline {
        state: State::TX,
        start: Hour(0),
        values,
    }
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    let params = DetectParams::default();
    for len in [24 * 30usize, 24 * 365, 24 * 731] {
        let tl = synthetic_series(len, 40);
        group.bench_with_input(BenchmarkId::new("len", len), &tl, |b, tl| {
            b.iter(|| detect_spikes(std::hint::black_box(tl), &params));
        });
    }
    for spike_every in [10usize, 40, 400] {
        let tl = synthetic_series(24 * 365, spike_every);
        group.bench_with_input(BenchmarkId::new("density", spike_every), &tl, |b, tl| {
            b.iter(|| detect_spikes(std::hint::black_box(tl), &params));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);

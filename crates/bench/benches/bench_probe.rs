//! Probing-engine throughput: exact rounds vs the event-driven synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use sift_geo::{AddressPlan, GeoDb};
use sift_probe::address::PopulationMix;
use sift_probe::{AddressPopulation, ProbeConfig, Prober};
use sift_simtime::{Hour, HourRange};
use sift_trends::{Scenario, ScenarioParams};

fn bench_probe(c: &mut Criterion) {
    let plan = AddressPlan::proportional(2_000);
    let population = AddressPopulation::new(&plan, PopulationMix::default(), 5);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
    let geodb = GeoDb::from_plan(&plan, 0.03, &mut rng);
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: 0.05,
        ..ScenarioParams::default()
    });
    let prober = Prober::new(ProbeConfig::default(), &population, &geodb);

    let mut group = c.benchmark_group("probe");
    group.sample_size(10);
    for hours in [24i64, 72] {
        let window = HourRange::new(Hour(1000), Hour(1000 + hours));
        group.bench_with_input(BenchmarkId::new("run", hours), &window, |b, w| {
            b.iter(|| prober.run(&scenario, *w));
        });
    }
    for days in [30i64, 731] {
        let window = HourRange::new(Hour(0), Hour(days * 24));
        group.bench_with_input(BenchmarkId::new("synthesize", days), &window, |b, w| {
            b.iter(|| prober.synthesize(&scenario, *w));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);

//! Shared harness code for the benchmarks and the experiments binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sift_core::{StudyParams, StudyResult};
use sift_geo::State;
use sift_simtime::{Hour, HourRange};
use sift_trends::{Scenario, ScenarioParams, ServiceConfig, TrendsService};

/// Builds the full two-year US world service (the paper's study setting).
pub fn full_service() -> TrendsService {
    TrendsService::new(Scenario::us_2020_2021(), ServiceConfig::default())
}

/// Builds a scaled-down world service for fast benches: `scale` of the
/// background events, restricted to `regions` when non-empty.
pub fn scaled_service(scale: f64, regions: &[State]) -> TrendsService {
    let mut params = ScenarioParams {
        background_scale: scale,
        ..ScenarioParams::default()
    };
    if !regions.is_empty() {
        params.regions = regions.to_vec();
    }
    TrendsService::new(Scenario::generate(params), ServiceConfig::default())
}

/// Study parameters for a quick single-region run over `days`.
pub fn quick_params(state: State, days: i64) -> StudyParams {
    StudyParams {
        range: HourRange::new(Hour(0), Hour(days * 24)),
        regions: vec![state],
        threads: 1,
        ..StudyParams::default()
    }
}

/// One-line summary of a study result for harness logs.
pub fn summarize(result: &StudyResult) -> String {
    format!(
        "{} spikes, {} clusters, {} frames requested, {} rising requested",
        result.spikes.len(),
        result.clusters.len(),
        result.stats.frames_requested,
        result.stats.rising_requested
    )
}

//! The perf-regression gate: compares a freshly measured `BENCH_*.json`
//! profile against the committed baseline.
//!
//! ```text
//! cargo run --release -p sift-bench --bin bench_gate -- \
//!     <candidate.json> <baseline.json>
//! ```
//!
//! Both files must be valid `sift-bench/1` profiles (schema checked
//! first, so a truncated emission fails loudly rather than vacuously
//! passing). The gate fails when the candidate's end-to-end time exceeds
//! the baseline's by more than the baseline's `tolerance.end_to_end`
//! band, or any pipeline stage exceeds its baseline by more than the
//! (wider) `tolerance.stage` band. Both comparisons add the absolute
//! floor `tolerance.abs_floor_seconds` so that micro-stages measured in
//! milliseconds cannot flake the gate on scheduler noise.

use serde_json::Value;
use std::process::ExitCode;

struct Profile {
    end_to_end: f64,
    stages: Vec<(String, f64)>,
    tol_end_to_end: f64,
    tol_stage: f64,
    abs_floor: f64,
}

fn num(v: &Value, key: &str, path: &str) -> f64 {
    v.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("{path}: missing or non-numeric field {key:?}"))
}

fn load(path: &str) -> Profile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: cannot read bench profile: {e}"));
    let v: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e:?}"));
    let schema = v.get("schema").and_then(Value::as_str);
    assert!(
        schema == Some("sift-bench/1"),
        "{path}: schema must be \"sift-bench/1\", got {schema:?}"
    );
    for key in ["date", "scale", "regions", "end_to_end_seconds", "stages"] {
        assert!(v.get(key).is_some(), "{path}: missing field {key:?}");
    }
    let Some(Value::Object(stage_fields)) = v.get("stages") else {
        panic!("{path}: \"stages\" must be an object");
    };
    let mut stages = Vec::new();
    for (name, stage) in stage_fields {
        let seconds = num(stage, "seconds", path);
        let share = num(stage, "share", path);
        assert!(
            seconds >= 0.0 && (0.0..=1.0).contains(&share),
            "{path}: stage {name:?} out of range (seconds {seconds}, share {share})"
        );
        stages.push((name.clone(), seconds));
    }
    assert!(!stages.is_empty(), "{path}: no stages recorded");
    let tol = v
        .get("tolerance")
        .unwrap_or_else(|| panic!("{path}: missing field \"tolerance\""));
    Profile {
        end_to_end: num(&v, "end_to_end_seconds", path),
        stages,
        tol_end_to_end: num(tol, "end_to_end", path),
        tol_stage: num(tol, "stage", path),
        abs_floor: num(tol, "abs_floor_seconds", path),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [candidate_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <candidate.json> <baseline.json>");
        return ExitCode::FAILURE;
    };
    let candidate = load(candidate_path);
    let baseline = load(baseline_path);

    // Tolerances come from the baseline: the committed file is the
    // contract, a candidate cannot loosen its own gate.
    let mut failed = false;
    let mut check = |what: &str, measured: f64, reference: f64, band: f64| {
        let limit = reference * (1.0 + band) + baseline.abs_floor;
        let verdict = if measured > limit {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:<4} {what:<14} {measured:>9.3}s vs baseline {reference:>9.3}s (limit {limit:>9.3}s)"
        );
    };
    check(
        "end-to-end",
        candidate.end_to_end,
        baseline.end_to_end,
        baseline.tol_end_to_end,
    );
    for (name, reference) in &baseline.stages {
        let measured = candidate
            .stages
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("{candidate_path}: baseline stage {name:?} missing"));
        check(name, measured, *reference, baseline.tol_stage);
    }
    if failed {
        eprintln!("bench gate: performance regressed beyond the tolerance band");
        return ExitCode::FAILURE;
    }
    println!("bench gate: within tolerance");
    ExitCode::SUCCESS
}

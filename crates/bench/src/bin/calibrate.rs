//! Quick calibration probe: run the full two-year study on a few regions
//! and report spike statistics, to tune the world model against the
//! paper's headline numbers before running the full experiments.

use sift_core::{impact, run_study, StudyParams};
use sift_geo::State;

fn main() {
    let world_span = sift_obs::span("world");
    let service = sift_bench::full_service();
    eprintln!(
        "world built in {:?} ({} events)",
        world_span.elapsed(),
        service.ground_truth().events.len()
    );
    drop(world_span);

    let regions = vec![State::TX, State::CA, State::WY, State::OH];
    let params = StudyParams {
        regions: regions.clone(),
        threads: 4,
        daily_rising: false,
        ..StudyParams::default()
    };
    let study_span = sift_obs::span("study");
    let result = run_study(&service, &params).expect("study");
    eprintln!(
        "study ran in {:?}: {}",
        study_span.elapsed(),
        sift_bench::summarize(&result)
    );
    drop(study_span);
    eprint!("stage timings:\n{}", result.stats.telemetry);

    let spikes = result.bare_spikes();
    for state in &regions {
        let n = spikes.iter().filter(|s| s.state == *state).count();
        let long = spikes
            .iter()
            .filter(|s| s.state == *state && s.duration_h() >= 3)
            .count();
        eprintln!("  {state}: {n} spikes, {long} >=3h");
    }
    eprintln!("share >=3h: {:.3}", impact::share_at_least(&spikes, 3));
    eprintln!("share >=5h: {:.3}", impact::share_at_least(&spikes, 5));
    let by_year = impact::count_by_year(&spikes);
    eprintln!("by year: {by_year:?}");
    let (wd, we) = impact::weekend_dip(&spikes);
    eprintln!("weekday avg {wd:.2}% weekend avg {we:.2}%");
    // Biggest TX spikes:
    let mut tx: Vec<_> = spikes.iter().filter(|s| s.state == State::TX).collect();
    tx.sort_by_key(|s| std::cmp::Reverse(s.duration_h()));
    for s in tx.iter().take(5) {
        eprintln!(
            "  TX top: start {} dur {} mag {:.1}",
            s.start,
            s.duration_h(),
            s.magnitude
        );
    }
    let rounds: Vec<_> = result
        .stats
        .rounds_by_state
        .iter()
        .map(|(s, r)| format!("{s}:{r}"))
        .collect();
    eprintln!("rounds: {}", rounds.join(" "));
}

//! The experiments harness: regenerates every table and figure of the
//! paper's evaluation from the simulated world.
//!
//! ```text
//! cargo run --release -p sift-bench --bin experiments            # everything
//! cargo run --release -p sift-bench --bin experiments -- --only fig3,tab1
//! cargo run --release -p sift-bench --bin experiments -- --quick # thinned world
//! ```
//!
//! Output is organised per experiment id (fig1..fig6, tab1..tab3, stats,
//! truth, ant, lag, ablation, cluster, serve); EXPERIMENTS.md records
//! paper-vs-measured for each.

use sift_core::context::AnnotatedSpike;
use sift_core::detect::Spike;
use sift_core::{area, impact, report, run_study, StudyParams, StudyResult};
use sift_geo::{AddressPlan, GeoDb, State};
use sift_probe::address::PopulationMix;
use sift_probe::{cross_validate, AddressPopulation, ProbeConfig, Prober};
use sift_simtime::{format_day, format_spike_time, Hour, HourRange, Month, Weekday, STUDY_RANGE};
use sift_trends::{Scenario, ScenarioParams, ServiceConfig, TrendsService};
use std::collections::HashSet;

struct Args {
    scale: f64,
    only: Option<HashSet<String>>,
    threads: usize,
    daily_rising: bool,
    bench_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        only: None,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8),
        daily_rising: true,
        bench_out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale <f64>");
            }
            "--only" => {
                let ids = it.next().expect("--only <id,id,...>");
                args.only = Some(ids.split(',').map(str::to_owned).collect());
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads <n>");
            }
            "--quick" => {
                args.scale = 0.25;
                args.daily_rising = false;
            }
            "--bench-out" => {
                args.bench_out = Some(it.next().expect("--bench-out <path>").into());
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().expect("--trace-out <path>").into());
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let wants = |id: &str| args.only.as_ref().map_or(true, |set| set.contains(id));

    let total_span = sift_obs::span("experiments");
    let world_span = sift_obs::span("world");
    let scenario = Scenario::generate(ScenarioParams {
        background_scale: args.scale,
        ..ScenarioParams::default()
    });
    let service = TrendsService::new(scenario, ServiceConfig::default());
    eprintln!(
        "# world: {} ground-truth events ({:.1?})",
        service.ground_truth().events.len(),
        world_span.elapsed()
    );
    drop(world_span);

    // The study gets its own trace root (not a child of "experiments"),
    // so its tree completes — and can be exported and profiled — as soon
    // as the last region worker closes, independent of the rest of main.
    let study_span = sift_obs::span_root("bench");
    let study_trace_id = study_span.context().trace_id;
    let params = StudyParams {
        threads: args.threads,
        daily_rising: args.daily_rising,
        ..StudyParams::default()
    };
    let result = run_study(&service, &params).expect("study");
    eprintln!(
        "# study: {} spikes, {} clusters, {} frames + {} rising requests ({:.1?})",
        result.spikes.len(),
        result.clusters.len(),
        result.stats.frames_requested,
        result.stats.rising_requested,
        study_span.elapsed()
    );
    drop(study_span);
    eprint!("# stage timings:\n{}", result.stats.telemetry);
    if args.bench_out.is_some() || args.trace_out.is_some() {
        emit_profile(&args, &params, study_trace_id);
    }

    let spikes = result.bare_spikes();

    if wants("stats") {
        exp_stats(&service, &result, &spikes);
    }
    if wants("fig1") {
        exp_fig1(&result);
    }
    if wants("fig2") {
        exp_fig2(&result);
    }
    if wants("fig3") {
        exp_fig3(&spikes);
    }
    if wants("fig4") {
        exp_fig4(&spikes);
    }
    if wants("fig5") {
        exp_fig5(&result);
    }
    if wants("fig6") {
        exp_fig6(&result);
    }
    if wants("tab1") {
        exp_tab1(&result);
    }
    if wants("tab2") {
        exp_tab2(&result);
    }
    if wants("tab3") {
        exp_tab3(&result);
    }
    if wants("truth") {
        exp_truth(&service, &result);
    }
    if wants("ant") {
        exp_ant(&service, &spikes);
    }
    if wants("lag") {
        exp_lag(&result);
    }
    if wants("ablation") {
        exp_ablation(&service);
    }
    if wants("cluster") {
        exp_cluster(&args);
    }
    if wants("serve") {
        exp_serve(&args);
    }
    eprintln!("# total {:.1?}", total_span.elapsed());
}

fn section(id: &str, title: &str) {
    println!("\n== {id}: {title} ==");
}

/// Exports the study's trace tree (`--trace-out`, Chrome trace-event
/// JSON) and the `BENCH_<date>.json` profile (`--bench-out`): end-to-end
/// plus per-stage timings read off the critical path of the finished
/// trace — not ad-hoc stopwatches — so the stage numbers sum to the wall
/// time the run actually took.
fn emit_profile(args: &Args, params: &StudyParams, trace_id: u64) {
    let trace = sift_obs::trace::wait_completed(trace_id, std::time::Duration::from_secs(30))
        .expect("study trace did not complete");
    if let Some(path) = &args.trace_out {
        std::fs::write(path, sift_obs::chrome_trace_json(&trace)).expect("write --trace-out");
        eprintln!("# trace: {} spans -> {}", trace.spans.len(), path.display());
    }
    let Some(path) = &args.bench_out else { return };
    let cp = sift_obs::critical_path(&trace).expect("trace has a root");
    eprint!("# {cp}");
    let end_to_end = cp.total_us;
    let mut stages = String::new();
    for (i, (stage, names)) in sift_core::study::PIPELINE_STAGES.iter().enumerate() {
        if i > 0 {
            stages.push(',');
        }
        let us = cp.named_us(names);
        stages.push_str(&format!(
            "\"{stage}\":{{\"seconds\":{:.6},\"share\":{:.6}}}",
            us as f64 / 1e6,
            cp.share(names)
        ));
    }
    let json = format!(
        concat!(
            "{{\"schema\":\"sift-bench/1\",\"date\":\"{date}\",",
            "\"scale\":{scale},\"regions\":{regions},\"threads\":{threads},",
            "\"end_to_end_seconds\":{e2e:.6},\"stages\":{{{stages}}},",
            "\"tolerance\":{{\"end_to_end\":0.15,\"stage\":0.35,",
            "\"abs_floor_seconds\":0.25}}}}\n"
        ),
        date = today_utc(),
        scale = args.scale,
        regions = params.regions.len(),
        threads = params.threads,
        e2e = end_to_end as f64 / 1e6,
        stages = stages,
    );
    std::fs::write(path, json).expect("write --bench-out");
    eprintln!("# bench profile -> {}", path.display());
}

/// Today as `YYYY-MM-DD` (UTC), from the system clock. Days-to-civil is
/// the standard Gregorian era decomposition.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// §1/§4 headline numbers.
fn exp_stats(service: &TrendsService, result: &StudyResult, spikes: &[Spike]) {
    section("stats", "headline statistics (paper §1, §4)");
    println!("total spikes: {} (paper: 49 189)", spikes.len());
    for (year, n) in impact::count_by_year(spikes) {
        println!("  {year}: {n} (paper: 25 494 / 23 695)");
    }
    let long_2020 = spikes
        .iter()
        .filter(|s| s.start.year() == 2020 && s.duration_h() >= 5)
        .count();
    let long_2021 = spikes
        .iter()
        .filter(|s| s.start.year() == 2021 && s.duration_h() >= 5)
        .count();
    println!(
        "spikes >=5h: 2020 {} vs 2021 {} (ratio {:.2}; paper: 50% greater in 2020)",
        long_2020,
        long_2021,
        long_2020 as f64 / long_2021.max(1) as f64
    );
    println!(
        "share of spikes >=5h: {:.3} (paper: top 3.5%)",
        impact::share_at_least(spikes, 5)
    );
    let stats = service.stats();
    println!(
        "time frames requested: {} (+ {} rising) (paper: 160 238 frames)",
        stats.frames_served, stats.rising_served
    );
    println!(
        "distinct suggested terms: {} ; heavy hitters covering half the mass: {} (paper: 33 of 6655)",
        result.distinct_terms,
        result.heavy_hitters.len()
    );
    let top: Vec<String> = result
        .heavy_hitters
        .iter()
        .take(10)
        .map(|(t, n)| format!("{t} ({n})"))
        .collect();
    println!("top heavy hitters: {}", top.join(", "));
    let mut rounds: Vec<u32> = result
        .stats
        .rounds_by_state
        .iter()
        .map(|(_, r)| *r)
        .collect();
    rounds.sort_unstable();
    println!(
        "regions converged before round cap: {}/{} ; rounds used (min/median/max): {}/{}/{}",
        result.stats.converged_regions,
        result.stats.rounds_by_state.len(),
        rounds[0],
        rounds[rounds.len() / 2],
        rounds[rounds.len() - 1]
    );
}

/// Fig. 1: the Texas winter 2021 timeline.
fn exp_fig1(result: &StudyResult) {
    section(
        "fig1",
        "<Internet outage> popularity index, Texas, winter 2021",
    );
    let timeline = result.timeline(State::TX).expect("TX timeline");
    let cut = HourRange::new(
        Hour::from_ymdh(2021, 1, 19, 0),
        Hour::from_ymdh(2021, 2, 21, 0),
    );
    // Renormalize the cut to its own maximum, as the figure does.
    let values: Vec<f64> = cut.iter().filter_map(|h| timeline.value_at(h)).collect();
    let max = values.iter().copied().fold(0.0f64, f64::max).max(1e-9);
    let mut week_start = cut.start;
    let mut idx = 0usize;
    while week_start < cut.end {
        let week_len = 168.min((cut.end - week_start) as usize);
        let week: Vec<f64> = values[idx..idx + week_len]
            .iter()
            .map(|v| v * 100.0 / max)
            .collect();
        println!(
            "  {}  {}",
            format_day(week_start),
            report::sparkline(&report::downsample_max(&week, 56))
        );
        idx += week_len;
        week_start += week_len as i64;
    }
    for (name, at) in [
        ("Verizon outage (26 Jan)", Hour::from_ymdh(2021, 1, 26, 18)),
        ("winter storm (15 Feb)", Hour::from_ymdh(2021, 2, 15, 20)),
    ] {
        match result
            .spikes
            .iter()
            .find(|a| a.spike.state == State::TX && a.spike.window().contains(at))
        {
            Some(a) => println!(
                "  {name}: detected, duration {} h, magnitude {:.1}, [{}]",
                a.spike.duration_h(),
                a.spike.magnitude,
                labels(a)
            ),
            None => println!("  {name}: NOT detected"),
        }
    }
}

/// Fig. 2: the California walkthrough spike.
fn exp_fig2(result: &StudyResult) {
    section(
        "fig2",
        "workflow walkthrough: San Jose power outage, 17 Jul 2020",
    );
    let at = Hour::from_ymdh(2020, 7, 17, 18);
    match result
        .spikes
        .iter()
        .find(|a| a.spike.state == State::CA && a.spike.window().contains(at))
    {
        Some(a) => {
            println!(
                "  start time: {} (paper: 17 July 2020 15:00)",
                a.spike.start
            );
            println!("  peak time:  {} (paper: 17 July 2020 18:00)", a.spike.peak);
            println!(
                "  duration:   {} hours (paper: 10 hours)",
                a.spike.duration_h()
            );
            println!("  power-annotated: {}", a.power_annotated());
            for ann in &a.annotations {
                println!(
                    "  annotation: {:<32} weight {:>8.0} heavy-hitter {}",
                    ann.label, ann.weight, ann.heavy_hitter
                );
            }
        }
        None => println!("  walkthrough spike NOT detected"),
    }
}

/// Fig. 3: spike distribution over states and durations.
fn exp_fig3(spikes: &[Spike]) {
    section(
        "fig3",
        "characteristics of all spikes (state shares; duration CDF)",
    );
    let ranking = impact::state_ranking(spikes);
    println!("left: cumulative share of spikes by state rank");
    for rank in [1usize, 2, 5, 10, 20, 30, 51] {
        let row = &ranking[rank - 1];
        println!(
            "  rank {:>2}: {} ({} spikes) cumulative {:.3}{}",
            rank,
            row.state,
            row.count,
            row.cumulative_share,
            if rank == 10 { "  <- paper: 0.51" } else { "" }
        );
    }
    println!("right: duration CDF");
    let cdf = impact::duration_cdf(spikes, 40);
    for h in [1usize, 2, 3, 5, 10, 20, 40] {
        println!(
            "  <= {:>2} h: {:.3}{}",
            h,
            cdf[h - 1],
            if h == 3 { "  <- paper: 0.90" } else { "" }
        );
    }
    println!(
        "  share >=3h: {:.3} (paper: 0.10)",
        impact::share_at_least(spikes, 3)
    );
}

/// Fig. 4: daily distribution of spikes.
fn exp_fig4(spikes: &[Spike]) {
    section("fig4", "daily distribution of all spikes");
    let dist = impact::weekday_distribution(spikes);
    for wd in Weekday::ALL {
        let pct = dist[wd.index()];
        let bar = "#".repeat((pct * 3.0).round() as usize);
        println!("  {} {:>5.2}% {}", wd.abbrev(), pct, bar);
    }
    let (weekday, weekend) = impact::weekend_dip(spikes);
    println!(
        "  weekday avg {weekday:.2}% vs weekend avg {weekend:.2}% (paper: fewer outages on weekends)"
    );
}

/// Fig. 5: simultaneous outage extent.
fn exp_fig5(result: &StudyResult) {
    section("fig5", "distribution of simultaneous outage extent");
    let cdf = area::state_count_cdf(&result.clusters, 35);
    for k in [1usize, 2, 5, 10, 15, 25, 35] {
        println!(
            "  <= {:>2} states: {:.3}{}",
            k,
            cdf[k - 1],
            if k == 10 { "  <- paper: 0.89" } else { "" }
        );
    }
    println!(
        "  share spanning >=10 states: {:.3} (paper: 0.11)",
        area::share_spanning_at_least(&result.clusters, 10)
    );
}

/// Fig. 6: monthly power-annotated long spikes.
fn exp_fig6(result: &StudyResult) {
    section(
        "fig6",
        "power-annotated spikes with duration >= 5h, by month (2020 vs 2021)",
    );
    let mut by_month = [[0usize; 12]; 2];
    let mut long_total = 0usize;
    let mut long_power = 0usize;
    for a in &result.spikes {
        if a.spike.duration_h() < 5 {
            continue;
        }
        long_total += 1;
        if !a.power_annotated() {
            continue;
        }
        long_power += 1;
        let year = a.spike.start.year();
        if (2020..=2021).contains(&year) {
            by_month[(year - 2020) as usize][a.spike.start.month().index()] += 1;
        }
    }
    println!("  month   2020  2021");
    for m in Month::ALL {
        println!(
            "  {}   {:>5} {:>5}{}",
            m.abbrev(),
            by_month[0][m.index()],
            by_month[1][m.index()],
            match m {
                Month::Aug | Month::Sep => "   <- 2020 wildfires",
                Month::Jan | Month::Feb => "   <- 2021 winter storms",
                _ => "",
            }
        );
    }
    println!(
        "  power share of >=5h spikes: {:.2} (paper: 0.73); >=5h spikes are {:.1}% of all",
        long_power as f64 / long_total.max(1) as f64,
        100.0 * long_total as f64 / result.spikes.len().max(1) as f64
    );
}

/// Table 1: most impactful spikes by duration.
fn exp_tab1(result: &StudyResult) {
    section("tab1", "most impactful spikes by duration (paper Table 1)");
    let spikes = result.bare_spikes();
    let top = impact::top_by_duration(&spikes, 7);
    println!(
        "  {:<18} {:<5} {:>4}  annotation",
        "spike time", "state", "h"
    );
    for s in top {
        let annotated = find_annotated(result, &s);
        println!(
            "  {:<18} {:<5} {:>4}  {}",
            format_spike_time(s.start),
            s.state.abbrev(),
            s.duration_h(),
            annotated.map(labels).unwrap_or_else(|| "—".into())
        );
    }
    println!("  paper: TX 45h winter storm; CA 23h Xfinity; CA 22h Fastly; TN 21h AT&T; ...");
}

/// Table 2: most extensive spikes.
fn exp_tab2(result: &StudyResult) {
    section(
        "tab2",
        "most extensive spikes by state count (paper Table 2)",
    );
    let top = area::top_by_extent(&result.clusters, 9);
    println!("  {:<18} {:>6}  annotation", "spike time", "states");
    for c in top {
        let anchor = c.anchor();
        // The outage's label: the annotation most of the member states
        // agree on (weighted by annotation weight).
        let mut votes: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
        for member in &c.spikes {
            if let Some(a) = find_annotated(result, member) {
                for ann in &a.annotations {
                    *votes.entry(ann.label.as_str()).or_insert(0.0) += ann.weight;
                }
            }
        }
        let label = votes
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(l, _)| l.to_owned())
            .unwrap_or_else(|| "—".into());
        println!(
            "  {:<18} {:>6}  {}",
            format_spike_time(anchor.start),
            c.state_count(),
            label
        );
    }
    println!("  paper: Akamai 34; Cloudflare 30; Facebook 29; Verizon 27; Youtube 27; ...");
}

/// Table 3: most impactful power outages per state.
fn exp_tab3(result: &StudyResult) {
    section(
        "tab3",
        "most impactful power outages by state (paper Table 3)",
    );
    // Longest power-annotated spike per state, top 7 states.
    let mut best: Vec<&AnnotatedSpike> = Vec::new();
    for state in State::ALL {
        if let Some(a) = result
            .spikes
            .iter()
            .filter(|a| a.spike.state == state && a.power_annotated())
            .max_by_key(|a| a.spike.duration_h())
        {
            best.push(a);
        }
    }
    best.sort_by_key(|a| std::cmp::Reverse(a.spike.duration_h()));
    println!(
        "  {:<18} {:<5} {:>4}  annotation",
        "spike time", "state", "h"
    );
    for a in best.iter().take(7) {
        println!(
            "  {:<18} {:<5} {:>4}  {}",
            format_spike_time(a.spike.start),
            a.spike.state.abbrev(),
            a.spike.duration_h(),
            labels(a)
        );
    }
    println!("  paper: TX 45 winter storm; CA 18 heat wave; MI 15 storm; WA 13 storm; ...");
}

/// Ground-truth scoring — possible here, impossible in the paper.
fn exp_truth(service: &TrendsService, result: &StudyResult) {
    section(
        "truth",
        "detection scored against ground truth (not in the paper)",
    );
    let scenario = service.ground_truth();
    let spikes = result.bare_spikes();
    // Per-state sorted spikes for fast window matching.
    let mut per_state: Vec<Vec<&Spike>> = vec![Vec::new(); State::COUNT];
    for s in &spikes {
        per_state[s.state.index()].push(s);
    }
    let matches = |state: State, w: HourRange| {
        per_state[state.index()].iter().any(|s| {
            s.magnitude >= 1.0 && s.window().overlaps(&HourRange::new(w.start - 2, w.end + 2))
        })
    };
    let mut detected = 0usize;
    let mut total = 0usize;
    for e in &scenario.events {
        total += 1;
        if (0..e.states.len()).any(|i| matches(e.states[i].0, e.window_in(i))) {
            detected += 1;
        }
    }
    println!(
        "  event recall: {detected}/{total} = {:.3}",
        detected as f64 / total.max(1) as f64
    );
    // Precision: spikes (mag >= 1) near some ground-truth event.
    let index = scenario.build_index();
    let mut hits = 0usize;
    let mut strong = 0usize;
    for s in &spikes {
        if s.magnitude < 1.0 {
            continue;
        }
        strong += 1;
        let w = HourRange::new(s.start - 2, s.end + 2);
        let found = index.candidates(w).iter().any(|i| {
            let e = &scenario.events[*i as usize];
            (0..e.states.len()).any(|j| e.states[j].0 == s.state && e.window_in(j).overlaps(&w))
        });
        if found {
            hits += 1;
        }
    }
    println!(
        "  spike precision (magnitude >= 1): {hits}/{strong} = {:.3}",
        hits as f64 / strong.max(1) as f64
    );
}

/// §4.1/§4.2: SIFT vs the probing dataset.
fn exp_ant(service: &TrendsService, spikes: &[Spike]) {
    section(
        "ant",
        "cross-validation against the active-probing dataset (§4)",
    );
    let span = sift_obs::span("probe-synthesize");
    let plan = AddressPlan::proportional(10_000);
    let population = AddressPopulation::new(&plan, PopulationMix::default(), 0xA5);
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0xA6);
    let geodb = GeoDb::from_plan(&plan, 0.03, &mut rng);
    let prober = Prober::new(ProbeConfig::default(), &population, &geodb);
    let dataset = prober.synthesize(service.ground_truth(), STUDY_RANGE);
    eprintln!(
        "# probing dataset: {} records ({:.1?})",
        dataset.len(),
        span.elapsed()
    );
    drop(span);

    let report = cross_validate(service.ground_truth(), spikes, &dataset, 5);
    println!(
        "  ground-truth events >=5h: both {}, SIFT-only {}, probes-only {}, neither {}",
        report.both, report.sift_only, report.probe_only, report.neither
    );
    let sift_only_invisible = report
        .events
        .iter()
        .filter(|e| e.sift_detected && !e.probe_detected && !e.probe_visible_in_principle)
        .count();
    println!(
        "  of the SIFT-only events, {} are ping-invisible causes (mobile/CDN/app)",
        sift_only_invisible
    );
    println!("  named events (paper's examples):");
    for name in [
        "T-Mobile nationwide outage",
        "Akamai DNS misconfiguration",
        "Youtube worldwide outage",
        "Texas winter storm",
        "CenturyLink North Carolina outage",
    ] {
        if let Some(e) = report.events.iter().find(|e| e.name == name) {
            println!(
                "    {:<36} SIFT {:<3} probes {:<3}{}",
                e.name,
                if e.sift_detected { "yes" } else { "NO" },
                if e.probe_detected { "yes" } else { "NO" },
                if !e.probe_visible_in_principle {
                    "  (ping-invisible)"
                } else {
                    ""
                }
            );
        }
    }
}

/// §4.2: the Facebook lag analysis.
///
/// The paper: "We discover a substantial spike in all the states for the
/// Facebook outage, but with certain lags for the remaining 22 states."
/// We scan each region for its first substantial spike around the event
/// and measure the lag of its peak behind the earliest region.
fn exp_lag(result: &StudyResult) {
    section("lag", "Facebook outage: lagged spikes (§4.2)");
    let at = Hour::from_ymdh(2021, 10, 4, 15);
    let window = HourRange::new(at - 3, at + 14);
    let mut earliest: Vec<Option<Hour>> = vec![None; State::COUNT];
    for a in &result.spikes {
        if a.spike.magnitude < 1.0 || !window.contains(a.spike.peak) {
            continue;
        }
        let slot = &mut earliest[a.spike.state.index()];
        if slot.map_or(true, |p| a.spike.peak < p) {
            *slot = Some(a.spike.peak);
        }
    }
    let observed: Vec<(State, Hour)> = State::ALL
        .iter()
        .filter_map(|s| earliest[s.index()].map(|p| (*s, p)))
        .collect();
    let Some(first) = observed.iter().map(|(_, p)| *p).min() else {
        println!("  facebook spikes NOT detected");
        return;
    };
    let sync = observed.iter().filter(|(_, p)| *p - first <= 1).count();
    let lagged = observed.len() - sync;
    println!(
        "  substantial spikes in {} of 51 states; {} synchronous (lag <= 1h), {} lagged (paper: all states; 29 + 22 lagged)",
        observed.len(),
        sync,
        lagged
    );
    let max_lag = observed.iter().map(|(_, p)| *p - first).max().unwrap_or(0);
    println!("  maximum lag: {max_lag} h (westernmost regions)");
}

/// Ablations called out in DESIGN.md: re-fetch rounds and stitch overlap.
fn exp_ablation(service: &TrendsService) {
    section("ablation", "re-fetch rounds and stitch-overlap ablations");
    use sift_core::plan::{plan_frames, PlanParams};
    use sift_core::refetch::{averaged_timeline, RefetchParams};
    use sift_core::DetectParams;
    use sift_trends::SearchTerm;

    // (a) Convergence: force all 8 rounds and report the similarity trace.
    let frames = plan_frames(STUDY_RANGE, PlanParams::default()).frames;
    let outcome = averaged_timeline(
        service,
        &SearchTerm::parse("topic:Internet outage"),
        State::TX,
        &frames,
        &RefetchParams {
            max_rounds: 8,
            convergence: 2.0, // unattainable: run every round
            ..RefetchParams::default()
        },
        &DetectParams::default(),
    )
    .expect("ablation run");
    let trace: Vec<String> = outcome
        .similarity_trace
        .iter()
        .map(|s| format!("{s:.3}"))
        .collect();
    println!(
        "  TX spike-set similarity by round (paper: converges by round 6): {}",
        trace.join(" -> ")
    );

    // (b) Overlap width: 84h (default) vs 24h advance overlap.
    for (label, step) in [("84h overlap", 84u32), ("24h overlap", 144u32)] {
        let frames = plan_frames(
            STUDY_RANGE,
            PlanParams {
                frame_len: 168,
                step,
            },
        )
        .frames;
        let outcome = averaged_timeline(
            service,
            &SearchTerm::parse("topic:Internet outage"),
            State::TX,
            &frames,
            &RefetchParams::default(),
            &DetectParams::default(),
        )
        .expect("ablation run");
        println!(
            "  {label}: {} frames/round, {} rounds, {} spikes detected",
            frames.len(),
            outcome.rounds,
            outcome.spikes.len()
        );
    }
}

/// Sharded coordinator/worker crawl (PR 8): a coordinator plus four
/// worker threads over real sockets must reproduce the single-process
/// `run_study` bit-for-bit on the same parameters, and the section
/// reports the wall-time and shard-distribution cost of the extra hop.
/// The window is a prefix of the study range so the default full run
/// stays affordable; the world is the same seeded scenario either way.
fn exp_cluster(args: &Args) {
    section("cluster", "sharded crawl vs single-process run_study");
    use sift_cluster::{cluster_router, spawn_worker, ClusterConfig, Coordinator, WorkerConfig};
    use sift_fetcher::{trends_router, HttpTrendsClient};
    use sift_net::Server;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let scenario = Scenario::generate(ScenarioParams {
        background_scale: args.scale,
        ..ScenarioParams::default()
    });
    let service = Arc::new(TrendsService::new(scenario, ServiceConfig::default()));
    let trends = Server::new(trends_router(Arc::clone(&service)))
        .with_workers(8)
        .bind("127.0.0.1:0")
        .expect("bind trends service");
    let params = StudyParams {
        range: HourRange::new(Hour(0), Hour(2_000)),
        threads: 2,
        daily_rising: args.daily_rising,
        ..StudyParams::default()
    };

    let t0 = Instant::now();
    let client = HttpTrendsClient::new(trends.addr(), "127.0.0.5");
    let reference = run_study(&client, &params).expect("single-process study");
    let single = t0.elapsed();

    const WORKERS: usize = 4;
    // The coordinator runs in its production shape: control state WAL'd
    // and checkpointed through `sift-journal`, so the sharded wall-time
    // includes the per-acknowledgement fsync cost of the control plane.
    let wal_dir = std::env::temp_dir().join(format!("sift-bench-cluster-{}", std::process::id()));
    if wal_dir.exists() {
        std::fs::remove_dir_all(&wal_dir).expect("clear coordinator wal dir");
    }
    let (coord, recovery) =
        Coordinator::durable(params.clone(), ClusterConfig::default(), &wal_dir)
            .expect("durable coordinator");
    assert!(!recovery.had_state, "the bench always starts fresh");
    let coord = Arc::new(coord);
    let coord_server = Server::new(cluster_router(&coord))
        .with_workers(8)
        .bind("127.0.0.1:0")
        .expect("bind coordinator");
    let t0 = Instant::now();
    let workers: Vec<_> = (0..WORKERS)
        .map(|i| {
            spawn_worker(
                format!("bench-worker-{i}"),
                coord_server.addr(),
                trends.addr(),
                params.clone(),
                WorkerConfig::default(),
            )
        })
        .collect();
    let sharded = coord
        .wait_result(Duration::from_secs(600))
        .expect("sharded study");
    let elapsed = t0.elapsed();
    let shares: Vec<String> = workers
        .into_iter()
        .map(|w| {
            let id = w.id().to_owned();
            format!("{id}:{}", w.join().shards_done)
        })
        .collect();
    coord_server.shutdown();
    trends.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);

    let identical = sharded.timelines == reference.timelines
        && sharded.heavy_hitters == reference.heavy_hitters
        && sharded.spikes.len() == reference.spikes.len()
        && sharded
            .spikes
            .iter()
            .zip(reference.spikes.iter())
            .all(|(a, b)| a.spike == b.spike && a.annotations == b.annotations)
        && sharded.stats.frames_requested == reference.stats.frames_requested
        && sharded.stats.rising_requested == reference.stats.rising_requested;
    assert!(identical, "sharded result diverged from run_study");
    println!(
        "  {} regions over {WORKERS} workers: bit-identical to run_study \
         ({} spikes, {} frames)",
        params.regions.len(),
        sharded.spikes.len(),
        sharded.stats.frames_requested
    );
    println!(
        "  wall time: single-process {:.1?}, sharded {:.1?} ({:+.0}%)",
        single,
        elapsed,
        (elapsed.as_secs_f64() / single.as_secs_f64() - 1.0) * 100.0
    );
    println!("  shard distribution: {}", shares.join(" "));
}

/// The online daemon under read load (PR 10): the daemon ingests the
/// window as the simulated clock sweeps forward while a fleet of pollers
/// hammers `/spikes` through a deliberately tight admission gate. The
/// section reports the staleness clients actually observed (the
/// `X-Sift-Staleness-Ms` header, p50/p99) and the shed rate — how many
/// reads the daemon turned away with a canned 503 instead of queueing
/// them into latency. Off the BENCH-gate path (like `cluster`): load
/// numbers from a contended box are weather, not regressions.
fn exp_serve(args: &Args) {
    section(
        "serve",
        "online daemon staleness and shed under poller load",
    );
    use sift_net::{AdmissionConfig, HttpClient, Request};
    use sift_serve::{Daemon, ServeConfig};
    use sift_simtime::SimClock;
    use sift_trends::{SearchTerm, TrendsClient};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let scenario = Scenario::generate(ScenarioParams {
        background_scale: args.scale,
        ..ScenarioParams::default()
    });
    let service = Arc::new(TrendsService::new(scenario, ServiceConfig::default()));
    let regions = vec![State::TX, State::CA, State::FL, State::NY];
    let range = HourRange::new(Hour(0), Hour(1_680));
    let mut cfg = ServeConfig::new(
        SearchTerm::parse("topic:Internet outage"),
        regions.clone(),
        range,
    );
    cfg.workers = 4;
    cfg.admission = AdmissionConfig {
        max_inflight: 2,
        max_queue: 2,
        retry_after_secs: 1,
    };

    let dir = std::env::temp_dir().join(format!("sift-bench-serve-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear serve state dir");
    }
    let clock = Arc::new(SimClock::new(Hour(0)));
    let daemon = Daemon::start(
        cfg,
        Arc::clone(&service) as Arc<dyn TrendsClient>,
        Arc::clone(&clock),
        &dir,
    )
    .expect("start daemon");

    const POLLERS: usize = 16;
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let pollers: Vec<_> = (0..POLLERS)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let addr = daemon.addr();
            let region = regions[i % regions.len()];
            std::thread::spawn(move || {
                let client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));
                let mut staleness: Vec<u64> = Vec::new();
                let (mut ok, mut shed) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    match client.send(&Request::get(format!("/spikes?region={region}"))) {
                        Ok(resp) if resp.status.is_success() => {
                            ok += 1;
                            if let Some(ms) = resp
                                .headers
                                .get("x-sift-staleness-ms")
                                .and_then(|v| v.parse().ok())
                            {
                                staleness.push(ms);
                            }
                        }
                        Ok(resp) if resp.status.0 == 503 => shed += 1,
                        _ => {}
                    }
                }
                (staleness, ok, shed)
            })
        })
        .collect();

    // Sweep the simulated clock across the window in day-sized steps so
    // ingest trails a moving "now" the way a live deployment would.
    while clock.now() < range.end {
        clock.advance(24);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        daemon.wait_caught_up(Duration::from_secs(600)),
        "daemon never caught up to the end of the window"
    );
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut all_staleness: Vec<u64> = Vec::new();
    let (mut ok, mut shed) = (0u64, 0u64);
    for p in pollers {
        let (staleness, o, s) = p.join().expect("poller thread");
        all_staleness.extend(staleness);
        ok += o;
        shed += s;
    }
    all_staleness.sort_unstable();
    let pct = |p: f64| -> u64 {
        if all_staleness.is_empty() {
            return 0;
        }
        let idx = ((all_staleness.len() - 1) as f64 * p).round() as usize;
        all_staleness[idx]
    };

    let spikes: usize = regions
        .iter()
        .map(|r| daemon.spikes(*r).map_or(0, |reply| reply.spikes.len()))
        .sum();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let total = ok + shed;
    println!(
        "  {POLLERS} pollers over {} regions for {:.1?}: {ok} reads served, \
         {shed} shed ({:.2}% of {total})",
        regions.len(),
        elapsed,
        if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64 * 100.0
        }
    );
    println!(
        "  client-observed staleness: p50 {}ms, p99 {}ms, max {}ms",
        pct(0.50),
        pct(0.99),
        all_staleness.last().copied().unwrap_or(0)
    );
    println!("  {spikes} spikes sealed across the window at catch-up");
}

fn labels(a: &AnnotatedSpike) -> String {
    if a.annotations.is_empty() {
        return "—".into();
    }
    a.annotations
        .iter()
        .map(|x| x.label.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn find_annotated<'a>(result: &'a StudyResult, spike: &Spike) -> Option<&'a AnnotatedSpike> {
    result
        .spikes
        .iter()
        .find(|a| a.spike.state == spike.state && a.spike.start == spike.start)
}

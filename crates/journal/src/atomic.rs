//! Atomic file replacement: write temp → fsync → rename → fsync dir.
//!
//! POSIX `rename(2)` within one directory is atomic: readers see either
//! the old file or the new one, never a mix. So a checkpoint written
//! through this helper can be torn only while it is still the temp file,
//! which recovery ignores by construction. The trailing directory fsync
//! makes the rename itself durable — without it, a power cut can resurrect
//! the old name even though the data blocks of the new file survived.
//!
//! This module is the one place in the workspace allowed to create files
//! on persistence paths directly; everything else must route through it
//! (enforced by the `durable-write` lint rule).

use crate::crash::{CrashInjector, CrashSite};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// When a [`CrashInjector`] is supplied, the two checkpoint crash sites
/// are honoured: [`CrashSite::CheckpointTempWritten`] fires after the
/// temp file is complete but before the rename (the half-installed
/// state), [`CrashSite::AfterCheckpointRename`] after the swap landed.
pub fn write_atomic(path: &Path, bytes: &[u8], crash: Option<&CrashInjector>) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        // sift-lint: allow(durable-write) — this IS the atomic helper
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Some(inj) = crash {
        inj.maybe_crash(CrashSite::CheckpointTempWritten);
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    if let Some(inj) = crash {
        inj.maybe_crash(CrashSite::AfterCheckpointRename);
    }
    Ok(())
}

/// The sibling temp name `write_atomic` stages into: `<file>.tmp` in the
/// same directory (rename is only atomic within one filesystem).
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. A filesystem that refuses to open or sync directories (some
/// CI sandboxes) degrades gracefully: the rename is still atomic, only
/// its power-loss durability is weakened.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let Some(parent) = path.parent() else {
        return Ok(());
    };
    let parent = if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    };
    match File::open(parent) {
        Ok(dir) => match dir.sync_all() {
            Ok(()) => Ok(()),
            // Directory fsync is best-effort: EINVAL/ENOTSUP here must
            // not fail the checkpoint that already renamed into place.
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        },
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{CrashMode, CrashPlan};
    use crate::testutil::scratch_dir;

    #[test]
    fn replaces_contents_atomically() {
        let dir = scratch_dir("atomic_replace");
        let path = dir.join("state.bin");
        write_atomic(&path, b"first", None).expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        write_atomic(&path, b"second", None).expect("rewrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        assert!(!tmp_path(&path).exists(), "temp must not linger");
    }

    #[test]
    fn crash_before_rename_leaves_old_contents() {
        let dir = scratch_dir("atomic_crash_pre");
        let path = dir.join("state.bin");
        write_atomic(&path, b"old", None).expect("seed");
        let inj = CrashInjector::new(
            CrashPlan::nowhere()
                .at(CrashSite::CheckpointTempWritten, 0)
                .with_mode(CrashMode::Panic),
        );
        let crashed = std::panic::catch_unwind(|| write_atomic(&path, b"new", Some(&inj))).is_err();
        assert!(crashed, "injected crash must fire");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"old",
            "pre-rename crash must preserve the previous file"
        );
        // The wreckage (temp file) is what recovery must tolerate.
        assert!(tmp_path(&path).exists());
        // A later write through the helper heals the temp.
        write_atomic(&path, b"new", None).expect("retry");
        assert_eq!(std::fs::read(&path).expect("read"), b"new");
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn crash_after_rename_keeps_new_contents() {
        let dir = scratch_dir("atomic_crash_post");
        let path = dir.join("state.bin");
        write_atomic(&path, b"old", None).expect("seed");
        let inj = CrashInjector::new(CrashPlan::nowhere().at(CrashSite::AfterCheckpointRename, 0));
        let crashed = std::panic::catch_unwind(|| write_atomic(&path, b"new", Some(&inj))).is_err();
        assert!(crashed);
        assert_eq!(std::fs::read(&path).expect("read"), b"new");
    }
}

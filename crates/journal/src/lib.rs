//! sift-journal: crash-safe durability for long-running crawls.
//!
//! The paper's collection workload is weeks of HTTP fetches; losing the
//! accumulated `ResponseStore` to a process crash means re-crawling from
//! scratch. This crate provides the three primitives that make a crawl
//! resumable, and the harness that proves they work:
//!
//! * [`Journal`] — an append-only, CRC32-framed, fsync-batched
//!   write-ahead log. Recovery walks the file and truncates at the first
//!   invalid frame, so a torn tail from a mid-record crash is cut, never
//!   replayed.
//! * [`write_checkpoint`] / [`read_checkpoint`] — atomic snapshots
//!   installed via write-temp → fsync → rename → fsync-dir
//!   ([`write_atomic`]); a reader sees a complete old snapshot or a
//!   complete new one, never a mix. A checkpoint subsumes and empties the
//!   journal.
//! * [`CrashPlan`] / [`CrashInjector`] — deterministic crash injection at
//!   the durability boundaries ([`CrashSite`]), mirroring `sift-net`'s
//!   `FaultPlan`: the same seed dies at the same byte, so
//!   crash-and-resume tests replay exactly.
//!
//! The invariant the rest of the workspace builds on: **crawl → crash at
//! any injected point → resume → identical result to an uninterrupted
//! same-seed run**, with only the record in flight at the crash ever
//! re-fetched.
//!
//! Recovery telemetry flows through `sift-obs`:
//! `sift_journal_records_replayed_total`,
//! `sift_journal_torn_tail_truncated_total`,
//! `sift_journal_checkpoint_age_seconds`,
//! `sift_journal_checkpoint_corrupt_total`.

pub mod atomic;
pub mod checkpoint;
pub mod crash;
pub mod crc;
pub mod journal;
pub mod record;
pub mod testutil;

pub use atomic::{tmp_path, write_atomic};
pub use checkpoint::{read_checkpoint, write_checkpoint};
pub use crash::{CrashInjector, CrashMode, CrashPlan, CrashPoint, CrashSite};
pub use crc::crc32;
pub use journal::{Journal, Recovery};

//! CRC-32 (IEEE 802.3), hand-rolled over a lazily built lookup table.
//!
//! The journal cannot vendor a checksum crate (the dependency set is
//! frozen), and the reflected CRC-32 used by zlib/PNG is a page of code.
//! Every record and checkpoint carries one of these over its payload so
//! recovery can tell a torn or bit-flipped tail from valid data.

use std::sync::OnceLock;

/// The reflected polynomial of CRC-32/ISO-HDLC (zlib, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = u32::try_from(i).unwrap_or(0);
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // sift-lint: allow(lossy-cast) — extracting the low byte is the algorithm
        let idx = usize::from((crc as u8) ^ b);
        crc = (crc >> 8) ^ t[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC catalogue's check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"journal record payload");
        let mut flipped = b"journal record payload".to_vec();
        for i in 0..flipped.len() {
            for bit in 0..8 {
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
                flipped[i] ^= 1 << bit;
            }
        }
    }
}

//! Atomic snapshot checkpoints: `[magic][len][crc][payload]` installed
//! via temp + rename.
//!
//! A checkpoint compacts the journal: once a snapshot of the full state
//! is durably installed, every journal record it subsumes can be
//! dropped. Because installation goes through [`write_atomic`], a reader
//! only ever sees a complete old checkpoint or a complete new one; the
//! CRC frame is defence in depth against disk-level corruption, not
//! against torn writes.

use crate::atomic::write_atomic;
use crate::crash::CrashInjector;
use crate::record::{self, Decoded};
use std::io;
use std::path::Path;

/// Leading magic identifying (and versioning) a checkpoint file.
pub const MAGIC: &[u8; 8] = b"SIFTCKP1";

/// Durably installs `payload` as the checkpoint at `path`.
pub fn write_checkpoint(
    path: &Path,
    payload: &[u8],
    crash: Option<&CrashInjector>,
) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(MAGIC.len() + record::HEADER_LEN + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&record::encode(payload));
    write_atomic(path, &bytes, crash)?;
    sift_obs::gauge("sift_journal_checkpoint_age_seconds", &[]).set(0);
    Ok(())
}

/// Reads the checkpoint at `path`. `Ok(None)` means "no usable
/// checkpoint": the file is absent, or it fails validation — which the
/// atomic install protocol makes possible only through disk-level
/// corruption, so it is reported and treated as absence rather than
/// trusted or fatal.
pub fn read_checkpoint(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        report_corrupt(path, "bad magic");
        return Ok(None);
    }
    match record::decode(&bytes, MAGIC.len()) {
        Decoded::Record { payload, next } if next == bytes.len() => {
            record_age(path);
            Ok(Some(payload.to_vec()))
        }
        Decoded::Record { .. } => {
            report_corrupt(path, "trailing bytes");
            Ok(None)
        }
        Decoded::Invalid | Decoded::End => {
            report_corrupt(path, "bad frame");
            Ok(None)
        }
    }
}

/// Publishes how stale the checkpoint on disk is, from its mtime. Uses
/// the wall clock by necessity: staleness across process restarts is a
/// wall-clock quantity.
fn record_age(path: &Path) {
    let age = std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
        .map(|d| d.as_secs())
        .unwrap_or(0);
    sift_obs::gauge("sift_journal_checkpoint_age_seconds", &[])
        .set(i64::try_from(age).unwrap_or(i64::MAX));
}

fn report_corrupt(path: &Path, why: &str) {
    sift_obs::counter("sift_journal_checkpoint_corrupt_total", &[]).inc();
    sift_obs::event(
        sift_obs::Level::Warn,
        "journal.checkpoint",
        "checkpoint failed validation, treating as absent",
        &[
            ("path", serde_json::Value::Str(path.display().to_string())),
            ("why", serde_json::Value::Str(why.to_owned())),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{CrashPlan, CrashSite};
    use crate::testutil::scratch_dir;

    #[test]
    fn round_trips_and_reports_age() {
        let dir = scratch_dir("ckpt_roundtrip");
        let path = dir.join("ckpt.bin");
        assert_eq!(read_checkpoint(&path).expect("absent ok"), None);
        write_checkpoint(&path, b"snapshot-bytes", None).expect("write");
        assert_eq!(
            read_checkpoint(&path).expect("read"),
            Some(b"snapshot-bytes".to_vec())
        );
    }

    #[test]
    fn corrupt_checkpoint_is_treated_as_absent() {
        let dir = scratch_dir("ckpt_corrupt");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, b"snapshot", None).expect("write");
        let mut bytes = std::fs::read(&path).expect("read raw");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt in place");
        assert_eq!(read_checkpoint(&path).expect("read"), None);
        // Wrong magic entirely.
        std::fs::write(&path, b"NOTACKPT").expect("overwrite");
        assert_eq!(read_checkpoint(&path).expect("read"), None);
    }

    #[test]
    fn crash_between_temp_and_rename_preserves_previous_checkpoint() {
        let dir = scratch_dir("ckpt_crash");
        let path = dir.join("ckpt.bin");
        write_checkpoint(&path, b"gen-1", None).expect("seed");
        let inj = CrashInjector::new(CrashPlan::nowhere().at(CrashSite::CheckpointTempWritten, 0));
        let crashed =
            std::panic::catch_unwind(|| write_checkpoint(&path, b"gen-2", Some(&inj))).is_err();
        assert!(crashed);
        assert_eq!(
            read_checkpoint(&path).expect("read"),
            Some(b"gen-1".to_vec()),
            "half-installed checkpoint must be invisible"
        );
    }
}

//! Scratch directories for durability tests, unique without wall-clock
//! reads: process id plus a process-wide counter. Shared with the
//! workspace's acceptance tests, hence `pub` rather than `cfg(test)`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, empty directory under the system temp dir. The `tag` keeps
/// paths readable in failure output; uniqueness comes from the pid and a
/// monotonic counter, so parallel tests and repeated runs never collide
/// with a live directory (a stale same-pid leftover from a previous run
/// is cleared first).
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("sift-journal-{}-{}-{}", std::process::id(), n, tag));
    if dir.exists() {
        // sift-lint: allow(no-panic) — test scaffolding
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    // sift-lint: allow(no-panic) — test scaffolding
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

//! The append-only write-ahead journal.
//!
//! One file, a sequence of CRC-framed records (see [`crate::record`]).
//! Appends go straight to the OS via `write_all` — so a process kill
//! loses at most the record in flight — while `fsync` is batched (every
//! `sync_every` appends, plus explicit [`Journal::sync`] calls) because
//! it only guards against power loss, not process death, and costs
//! milliseconds per call.
//!
//! Recovery on [`Journal::open`] walks the file from the start and
//! truncates at the first invalid frame: a torn tail from a mid-record
//! crash, or a corrupt record, can never be replayed as data. The
//! replayed payloads and what was cut are reported in [`Recovery`] and
//! the `sift_journal_*` metrics.

use crate::crash::{CrashInjector, CrashSite};
use crate::record::{self, Decoded};
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default append count between automatic fsyncs.
pub const DEFAULT_SYNC_EVERY: u64 = 32;

/// What [`Journal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every valid record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether the file ended in an invalid frame that was cut off.
    pub torn_tail: bool,
    /// How many bytes the truncation removed.
    pub truncated_bytes: u64,
}

/// An open write-ahead journal file.
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    crash: Option<Arc<CrashInjector>>,
    sync_every: u64,
    unsynced: u64,
    appended: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, recovering any
    /// existing records and truncating a torn or corrupt tail.
    pub fn open(path: &Path) -> io::Result<(Journal, Recovery)> {
        Journal::open_with(path, None)
    }

    /// [`Journal::open`] with a crash injector wired into every append.
    pub fn open_with(
        path: &Path,
        crash: Option<Arc<CrashInjector>>,
    ) -> io::Result<(Journal, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut recovery = Recovery::default();
        let mut offset = 0usize;
        loop {
            match record::decode(&bytes, offset) {
                Decoded::Record { payload, next } => {
                    recovery.records.push(payload.to_vec());
                    offset = next;
                }
                Decoded::End => break,
                Decoded::Invalid => {
                    recovery.torn_tail = true;
                    recovery.truncated_bytes =
                        u64::try_from(bytes.len() - offset).unwrap_or(u64::MAX);
                    break;
                }
            }
        }
        if recovery.torn_tail {
            file.set_len(u64::try_from(offset).unwrap_or(0))?;
            file.sync_all()?;
            sift_obs::counter("sift_journal_torn_tail_truncated_total", &[]).inc();
            sift_obs::event(
                sift_obs::Level::Warn,
                "journal.recovery",
                "truncated torn tail",
                &[
                    ("path", serde_json::Value::Str(path.display().to_string())),
                    (
                        "truncated_bytes",
                        serde_json::Value::UInt(recovery.truncated_bytes),
                    ),
                    (
                        "records_kept",
                        serde_json::Value::UInt(
                            u64::try_from(recovery.records.len()).unwrap_or(u64::MAX),
                        ),
                    ),
                ],
            );
        }
        sift_obs::counter("sift_journal_records_replayed_total", &[])
            .add(u64::try_from(recovery.records.len()).unwrap_or(0));

        let appended = u64::try_from(recovery.records.len()).unwrap_or(0);
        Ok((
            Journal {
                file,
                path: path.to_owned(),
                crash,
                sync_every: DEFAULT_SYNC_EVERY,
                unsynced: 0,
                appended,
            },
            recovery,
        ))
    }

    /// Sets the fsync batching interval (1 = fsync every record).
    pub fn set_sync_every(&mut self, every: u64) {
        self.sync_every = every.max(1);
    }

    /// Appends one record. The frame reaches the OS before this returns
    /// (crash-after-append loses nothing); fsync happens per the batch
    /// interval.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = record::encode(payload);
        if let Some(inj) = &self.crash {
            if inj.check(CrashSite::MidJournalRecord) {
                // Stage the wreckage the crash would leave: a torn
                // half-record at the tail, then die.
                let torn = frame.len() / 2;
                let _ = self.file.write_all(&frame[..torn]); // sift-lint: allow(swallowed-result) — crash staging: the process dies on the next line either way
                let _ = self.file.sync_all(); // sift-lint: allow(swallowed-result) — crash staging: the process dies on the next line either way
                inj.crash(CrashSite::MidJournalRecord);
            }
        }
        self.file.write_all(&frame)?;
        self.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        if let Some(inj) = &self.crash {
            inj.maybe_crash(CrashSite::AfterJournalRecord);
        }
        Ok(())
    }

    /// Forces the batched fsync now.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_all()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Empties the journal — called once a checkpoint durably subsumes
    /// every record in it.
    pub fn truncate_all(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_all()?;
        self.unsynced = 0;
        self.appended = 0;
        Ok(())
    }

    /// Records appended so far (recovered + new).
    pub fn records_appended(&self) -> u64 {
        self.appended
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{CrashPlan, CrashPoint};
    use crate::testutil::scratch_dir;

    fn reopen(path: &Path) -> Recovery {
        Journal::open(path).expect("reopen").1
    }

    #[test]
    fn appends_recover_in_order() {
        let dir = scratch_dir("journal_order");
        let path = dir.join("wal.bin");
        {
            let (mut j, rec) = Journal::open(&path).expect("open");
            assert!(rec.records.is_empty());
            j.append(b"one").expect("append");
            j.append(b"two").expect("append");
            j.append(b"three").expect("append");
            assert_eq!(j.records_appended(), 3);
        }
        let rec = reopen(&path);
        assert_eq!(
            rec.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert!(!rec.torn_tail);
    }

    #[test]
    fn mid_record_crash_leaves_replayable_prefix() {
        let dir = scratch_dir("journal_torn");
        let path = dir.join("wal.bin");
        let inj = Arc::new(CrashInjector::new(
            CrashPlan::nowhere().at(CrashSite::MidJournalRecord, 2),
        ));
        let result = std::panic::catch_unwind(|| {
            let (mut j, _) = Journal::open_with(&path, Some(inj.clone())).expect("open");
            j.append(b"record-0").expect("append");
            j.append(b"record-1").expect("append");
            j.append(b"record-2").expect("append"); // dies half-way through
            unreachable!("crash must fire");
        });
        let payload = result.expect_err("must crash");
        assert!(payload.downcast_ref::<CrashPoint>().is_some());

        let rec = reopen(&path);
        assert_eq!(
            rec.records,
            vec![b"record-0".to_vec(), b"record-1".to_vec()]
        );
        assert!(rec.torn_tail, "half-written frame must be detected");
        assert!(rec.truncated_bytes > 0);
        // The truncation healed the file: appending works again and the
        // next recovery sees old + new.
        let (mut j, _) = Journal::open(&path).expect("reopen for append");
        j.append(b"record-2-retry").expect("append");
        drop(j);
        let rec = reopen(&path);
        assert_eq!(
            rec.records,
            vec![
                b"record-0".to_vec(),
                b"record-1".to_vec(),
                b"record-2-retry".to_vec()
            ]
        );
        assert!(!rec.torn_tail);
    }

    #[test]
    fn corrupt_middle_record_truncates_from_there() {
        let dir = scratch_dir("journal_corrupt");
        let path = dir.join("wal.bin");
        {
            let (mut j, _) = Journal::open(&path).expect("open");
            j.append(b"keep-me").expect("append");
            j.append(b"flip-me").expect("append");
            j.append(b"after-the-flip").expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a payload bit inside the second record.
        let second_payload_start = 2 * record::HEADER_LEN + b"keep-me".len();
        bytes[second_payload_start] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");

        let rec = reopen(&path);
        assert_eq!(rec.records, vec![b"keep-me".to_vec()]);
        assert!(rec.torn_tail);
    }

    #[test]
    fn truncate_all_empties_the_journal() {
        let dir = scratch_dir("journal_truncate");
        let path = dir.join("wal.bin");
        let (mut j, _) = Journal::open(&path).expect("open");
        j.append(b"ephemeral").expect("append");
        j.truncate_all().expect("truncate");
        assert_eq!(j.records_appended(), 0);
        j.append(b"fresh").expect("append");
        drop(j);
        let rec = reopen(&path);
        assert_eq!(rec.records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn sync_batching_is_configurable() {
        let dir = scratch_dir("journal_sync");
        let path = dir.join("wal.bin");
        let (mut j, _) = Journal::open(&path).expect("open");
        j.set_sync_every(1);
        for i in 0..10u8 {
            j.append(&[i]).expect("append");
        }
        j.sync().expect("sync");
        drop(j);
        assert_eq!(reopen(&path).records.len(), 10);
    }
}

//! Record framing: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//!
//! The frame is deliberately minimal: a length so the reader can skip to
//! the next record, and a checksum so it can tell a complete record from
//! a torn or corrupted one. Recovery never trusts `len` alone — a record
//! only counts when its payload is fully present *and* its CRC matches.

use crate::crc::crc32;

/// Bytes of the fixed frame header.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload (16 MiB). A `len` field
/// beyond this is treated as corruption, not as an instruction to seek
/// gigabytes ahead.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Frames one payload into `[len][crc][payload]` bytes.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What decoding at an offset found.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete, checksum-valid record; `next` is the offset just past
    /// it.
    Record {
        /// The record payload.
        payload: &'a [u8],
        /// Offset of the byte after this record.
        next: usize,
    },
    /// The bytes from this offset to EOF do not form a complete record —
    /// a torn tail (partial header, short payload) or a corrupt one
    /// (implausible length, CRC mismatch). Either way recovery must
    /// truncate here: nothing past an invalid frame can be trusted,
    /// because record boundaries are only defined by walking valid
    /// frames.
    Invalid,
    /// The offset is exactly at EOF: a clean end.
    End,
}

/// Decodes the record starting at `offset` in `buf`.
pub fn decode(buf: &[u8], offset: usize) -> Decoded<'_> {
    if offset == buf.len() {
        return Decoded::End;
    }
    let Some(header) = buf.get(offset..offset + HEADER_LEN) else {
        return Decoded::Invalid; // partial header at the tail
    };
    // sift-lint: allow(no-panic) — the slice is exactly HEADER_LEN bytes
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
    // sift-lint: allow(no-panic) — the slice is exactly HEADER_LEN bytes
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    let len = len as usize;
    if len > MAX_PAYLOAD {
        return Decoded::Invalid;
    }
    let start = offset + HEADER_LEN;
    let Some(payload) = buf.get(start..start + len) else {
        return Decoded::Invalid; // short payload at the tail
    };
    if crc32(payload) != crc {
        return Decoded::Invalid;
    }
    Decoded::Record {
        payload,
        next: start + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let frame = encode(b"hello");
        match decode(&frame, 0) {
            Decoded::Record { payload, next } => {
                assert_eq!(payload, b"hello");
                assert_eq!(next, frame.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
        assert_eq!(decode(&frame, frame.len()), Decoded::End);
    }

    #[test]
    fn empty_payload_is_a_valid_record() {
        let frame = encode(b"");
        assert!(matches!(
            decode(&frame, 0),
            Decoded::Record { payload: b"", .. }
        ));
    }

    #[test]
    fn every_truncation_is_invalid() {
        let frame = encode(b"some payload bytes");
        for cut in 0..frame.len() {
            if cut == 0 {
                assert_eq!(decode(&frame[..0], 0), Decoded::End);
            } else {
                assert_eq!(decode(&frame[..cut], 0), Decoded::Invalid, "cut {cut}");
            }
        }
    }

    #[test]
    fn bit_flips_are_invalid() {
        let frame = encode(b"payload");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(
                !matches!(
                    decode(&bad, 0),
                    Decoded::Record {
                        payload: b"payload",
                        ..
                    }
                ),
                "flip at {i} went unnoticed"
            );
        }
    }

    #[test]
    fn implausible_length_is_invalid_not_a_seek() {
        let mut frame = encode(b"x");
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&frame, 0), Decoded::Invalid);
    }
}

//! Deterministic crash injection at durability boundaries.
//!
//! PR 3's [`FaultPlan`] proved the pipeline against *network* failure by
//! making every injected fault a pure function of a seed; this module is
//! its sibling for *process* failure. A [`CrashPlan`] names the exact
//! durability boundary at which the process dies — mid-way through a
//! journal record, after a record lands, between a checkpoint's temp
//! write and its rename — and the occurrence count at which it fires, so
//! a crash test replays bit-identically. The plan can be written out
//! explicitly (acceptance tests pin their three crash points) or drawn
//! from a seed, mirroring `FaultPlan::new(seed)`.
//!
//! Two crash modes cover the two test harnesses: [`CrashMode::Panic`]
//! unwinds (the in-process harness wraps the run in `catch_unwind`),
//! [`CrashMode::Abort`] kills the process without cleanup (the
//! out-of-process harness spawns a child and watches it die, the closest
//! a test can get to `kill -9`).
//!
//! [`FaultPlan`]: https://docs.rs/sift-net

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A durability boundary the process can be made to die at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashSite {
    /// Half-way through writing a journal record's bytes: the file is
    /// left with a torn tail that recovery must truncate.
    MidJournalRecord,
    /// Just after a journal record is fully written: the record must
    /// survive and be replayed, never re-fetched.
    AfterJournalRecord,
    /// After the checkpoint temp file is written and synced, before the
    /// rename: recovery must see the *previous* checkpoint (or none) and
    /// the full journal, never the half-installed temp.
    CheckpointTempWritten,
    /// Just after the checkpoint rename lands: recovery must see the new
    /// checkpoint and an empty (or truncated) journal.
    AfterCheckpointRename,
}

impl CrashSite {
    /// Every site, in declaration order.
    pub const ALL: [CrashSite; 4] = [
        CrashSite::MidJournalRecord,
        CrashSite::AfterJournalRecord,
        CrashSite::CheckpointTempWritten,
        CrashSite::AfterCheckpointRename,
    ];

    /// Stable snake_case label (event fields, test output).
    pub fn label(self) -> &'static str {
        match self {
            CrashSite::MidJournalRecord => "mid_journal_record",
            CrashSite::AfterJournalRecord => "after_journal_record",
            CrashSite::CheckpointTempWritten => "checkpoint_temp_written",
            CrashSite::AfterCheckpointRename => "after_checkpoint_rename",
        }
    }

    fn index(self) -> usize {
        match self {
            CrashSite::MidJournalRecord => 0,
            CrashSite::AfterJournalRecord => 1,
            CrashSite::CheckpointTempWritten => 2,
            CrashSite::AfterCheckpointRename => 3,
        }
    }
}

impl std::fmt::Display for CrashSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the injected crash kills the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// Unwind with a [`CrashPoint`] payload; in-process harnesses catch
    /// it with `std::panic::catch_unwind` and then exercise recovery in
    /// the same process.
    #[default]
    Panic,
    /// `std::process::abort()` — no unwinding, no destructors, no
    /// flushing; the out-of-process harness's `kill -9` stand-in.
    Abort,
}

/// A deterministic crash choreography: die at the `n`-th occurrence of a
/// site (0-based), in the given mode. At most one crash fires per
/// [`CrashInjector`], so a plan listing several sites crashes at
/// whichever target is reached first.
#[derive(Clone, Debug)]
pub struct CrashPlan {
    /// `(site, occurrence)` targets.
    pub at: Vec<(CrashSite, u64)>,
    /// How the process dies.
    pub mode: CrashMode,
}

impl CrashPlan {
    /// A plan that never crashes (useful as a recording probe: the
    /// injector still counts occurrences).
    pub fn nowhere() -> CrashPlan {
        CrashPlan {
            at: Vec::new(),
            mode: CrashMode::Panic,
        }
    }

    /// Adds a target: crash at the `occurrence`-th time `site` is reached
    /// (0-based).
    pub fn at(mut self, site: CrashSite, occurrence: u64) -> CrashPlan {
        self.at.push((site, occurrence));
        self
    }

    /// A seeded plan, mirroring `FaultPlan::new(seed)`: for each of
    /// `sites`, the crash occurrence is drawn uniformly from
    /// `[0, horizon)` by an independent ChaCha8 stream keyed on
    /// `(seed, site)`. The same seed always picks the same crash points.
    pub fn seeded(seed: u64, sites: &[CrashSite], horizon: u64) -> CrashPlan {
        assert!(horizon >= 1, "horizon must admit at least one occurrence");
        let mut plan = CrashPlan::nowhere();
        for &site in sites {
            let mut key = [0u8; 32];
            key[0..8].copy_from_slice(&seed.to_le_bytes());
            key[8..16].copy_from_slice(&(site.index() as u64).to_le_bytes());
            key[16..24].copy_from_slice(&seed.rotate_left(23).to_le_bytes());
            key[24..32].copy_from_slice(&0x5349_4654_4352_5348u64.to_le_bytes()); // "SIFTCRSH"
            let mut rng = ChaCha8Rng::from_seed(key);
            plan.at.push((site, rng.next_u64() % horizon));
        }
        plan
    }

    /// Sets the crash mode.
    pub fn with_mode(mut self, mode: CrashMode) -> CrashPlan {
        self.mode = mode;
        self
    }
}

/// The payload an injected [`CrashMode::Panic`] unwinds with; harnesses
/// downcast to tell an injected crash from a genuine bug.
#[derive(Clone, Copy, Debug)]
pub struct CrashPoint {
    /// The boundary the crash fired at.
    pub site: CrashSite,
    /// The occurrence count it fired on.
    pub occurrence: u64,
}

/// The runtime of a [`CrashPlan`]: per-site occurrence counters and a
/// one-shot trigger. Shared (`Arc`) between the journal writer and the
/// checkpoint helper of one durability domain.
pub struct CrashInjector {
    plan: CrashPlan,
    counters: [AtomicU64; 4],
    tripped: AtomicBool,
}

impl CrashInjector {
    /// An injector executing `plan`.
    pub fn new(plan: CrashPlan) -> CrashInjector {
        CrashInjector {
            plan,
            counters: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            tripped: AtomicBool::new(false),
        }
    }

    /// Counts one occurrence of `site` and reports whether the plan says
    /// to die here. Split from [`CrashInjector::crash`] so callers that
    /// must stage the wreckage first (the journal writer leaves a torn
    /// half-record behind) can do so between the decision and the death.
    pub fn check(&self, site: CrashSite) -> bool {
        let n = self.counters[site.index()].fetch_add(1, Ordering::SeqCst);
        let targeted = self.plan.at.iter().any(|&(s, occ)| s == site && occ == n);
        targeted && !self.tripped.swap(true, Ordering::SeqCst)
    }

    /// Dies, per the plan's [`CrashMode`].
    pub fn crash(&self, site: CrashSite) -> ! {
        let occurrence = self.counters[site.index()]
            .load(Ordering::SeqCst)
            .saturating_sub(1);
        sift_obs::event(
            sift_obs::Level::Warn,
            "journal.crash",
            "injected crash",
            &[
                ("site", serde_json::Value::Str(site.label().to_owned())),
                ("occurrence", serde_json::Value::UInt(occurrence)),
            ],
        );
        match self.plan.mode {
            CrashMode::Panic => std::panic::panic_any(CrashPoint { site, occurrence }),
            CrashMode::Abort => std::process::abort(),
        }
    }

    /// [`CrashInjector::check`] and [`CrashInjector::crash`] in one step,
    /// for sites with no wreckage to stage.
    pub fn maybe_crash(&self, site: CrashSite) {
        if self.check(site) {
            self.crash(site);
        }
    }

    /// How many times `site` has been reached so far.
    pub fn occurrences(&self, site: CrashSite) -> u64 {
        self.counters[site.index()].load(Ordering::SeqCst)
    }

    /// Whether the injected crash already fired.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_the_planned_occurrence() {
        let inj = CrashInjector::new(CrashPlan::nowhere().at(CrashSite::AfterJournalRecord, 2));
        assert!(!inj.check(CrashSite::AfterJournalRecord));
        assert!(!inj.check(CrashSite::AfterJournalRecord));
        assert!(inj.check(CrashSite::AfterJournalRecord));
        // One-shot: the target does not re-fire.
        assert!(!inj.check(CrashSite::AfterJournalRecord));
        assert_eq!(inj.occurrences(CrashSite::AfterJournalRecord), 4);
        assert!(inj.tripped());
    }

    #[test]
    fn sites_count_independently() {
        let inj = CrashInjector::new(CrashPlan::nowhere().at(CrashSite::CheckpointTempWritten, 0));
        assert!(!inj.check(CrashSite::MidJournalRecord));
        assert!(!inj.check(CrashSite::AfterJournalRecord));
        assert!(inj.check(CrashSite::CheckpointTempWritten));
    }

    #[test]
    fn seeded_plans_replay() {
        let a = CrashPlan::seeded(9, &CrashSite::ALL, 100);
        let b = CrashPlan::seeded(9, &CrashSite::ALL, 100);
        assert_eq!(a.at, b.at);
        let c = CrashPlan::seeded(10, &CrashSite::ALL, 100);
        assert_ne!(a.at, c.at, "different seeds should move the crash points");
        for &(_, occ) in &a.at {
            assert!(occ < 100);
        }
    }

    #[test]
    fn panic_mode_unwinds_with_a_crash_point() {
        let inj = CrashInjector::new(CrashPlan::nowhere().at(CrashSite::MidJournalRecord, 0));
        let err = std::panic::catch_unwind(|| inj.maybe_crash(CrashSite::MidJournalRecord))
            .expect_err("must unwind");
        let point = err.downcast_ref::<CrashPoint>().expect("typed payload");
        assert_eq!(point.site, CrashSite::MidJournalRecord);
        assert_eq!(point.occurrence, 0);
    }

    #[test]
    fn labels_cover_every_site_uniquely() {
        let mut labels: Vec<_> = CrashSite::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CrashSite::ALL.len());
    }
}

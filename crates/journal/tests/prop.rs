//! Property tests for the durability layer.
//!
//! The two invariants that make resume trustworthy:
//!
//! 1. **Truncation-safety**: for an arbitrary record sequence, cutting
//!    the journal file at *every* byte offset yields, on recovery, an
//!    exact prefix of the original records — never a panic, never a
//!    garbage record, and `torn_tail` is reported iff the cut missed a
//!    record boundary. This is the byte-level statement of "a crash can
//!    only lose the record in flight".
//! 2. **Composition**: a checkpoint of the first `k` operations plus a
//!    journal of the rest recovers to exactly the same state as a pure
//!    replay of all operations — so compaction never changes what resume
//!    sees.

use proptest::prelude::*;
use sift_journal::record::HEADER_LEN;
use sift_journal::testutil::scratch_dir;
use sift_journal::{read_checkpoint, write_checkpoint, Journal};
use std::collections::BTreeMap;

/// Writes `records` through a real journal and returns the file bytes.
fn journal_bytes(dir: &std::path::Path, records: &[Vec<u8>]) -> Vec<u8> {
    let path = dir.join("wal.bin");
    let (mut j, _) = Journal::open(&path).expect("open journal");
    for r in records {
        j.append(r).expect("append");
    }
    j.sync().expect("sync");
    drop(j);
    std::fs::read(&path).expect("read back")
}

/// The byte offset at which record `i` ends (offset 0 = before any).
fn boundaries(records: &[Vec<u8>]) -> Vec<usize> {
    let mut out = vec![0];
    let mut off = 0;
    for r in records {
        off += HEADER_LEN + r.len();
        out.push(off);
    }
    out
}

proptest! {
    /// Cutting the journal at every byte offset recovers the longest
    /// record prefix that fits entirely below the cut, flags a torn tail
    /// exactly when the cut is mid-record, and leaves the healed file
    /// appendable.
    #[test]
    fn truncation_at_every_offset_yields_a_valid_prefix(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40),
            0..10,
        ),
    ) {
        let dir = scratch_dir("prop_truncate");
        let bytes = journal_bytes(&dir, &records);
        let bounds = boundaries(&records);
        prop_assert_eq!(*bounds.last().expect("non-empty"), bytes.len());

        let cut_path = dir.join("cut.bin");
        for cut in 0..=bytes.len() {
            std::fs::write(&cut_path, &bytes[..cut]).expect("stage cut file");
            let (mut j, rec) = Journal::open(&cut_path).expect("recovery must not error");
            // The recovered records are the longest whole-record prefix.
            let keep = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(
                &rec.records, &records[..keep],
                "cut at byte {} of {}", cut, bytes.len()
            );
            let at_boundary = bounds.contains(&cut);
            prop_assert_eq!(rec.torn_tail, !at_boundary, "cut at byte {}", cut);
            if rec.torn_tail {
                prop_assert_eq!(rec.truncated_bytes, (cut - bounds[keep]) as u64);
            }
            // The truncated file must accept appends and recover cleanly.
            j.append(b"post-recovery").expect("append after recovery");
            drop(j);
            let (_, rec2) = Journal::open(&cut_path).expect("second recovery");
            prop_assert_eq!(rec2.records.len(), keep + 1);
            prop_assert!(!rec2.torn_tail);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in record `j`'s frame truncates
    /// recovery to exactly the records before it.
    #[test]
    fn bit_flip_truncates_at_the_damaged_record(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32),
            1..8,
        ),
        flip_pos_seed in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let dir = scratch_dir("prop_flip");
        let mut bytes = journal_bytes(&dir, &records);
        let flip_pos = flip_pos_seed % bytes.len();
        bytes[flip_pos] ^= 1 << flip_bit;
        let path = dir.join("flipped.bin");
        std::fs::write(&path, &bytes).expect("stage flipped file");

        let bounds = boundaries(&records);
        // The record whose frame contains the flipped byte.
        let damaged = bounds.iter().filter(|&&b| b <= flip_pos).count() - 1;
        let (_, rec) = Journal::open(&path).expect("recovery must not error");
        prop_assert_eq!(&rec.records, &records[..damaged]);
        prop_assert!(rec.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Checkpoint(first k ops) + journal(remaining ops) recovers to the
    /// same map as replaying every op from scratch.
    #[test]
    fn checkpoint_plus_journal_composes_to_pure_replay(
        ops in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..40),
        split_seed in any::<usize>(),
    ) {
        let split = split_seed % (ops.len() + 1);
        let dir = scratch_dir("prop_compose");

        // Pure replay: every op applied in order.
        let mut want = BTreeMap::new();
        for &(k, v) in &ops {
            want.insert(k, v);
        }

        // Compacted: ops[..split] snapshotted, ops[split..] journaled.
        let mut snapshot = BTreeMap::new();
        for &(k, v) in &ops[..split] {
            snapshot.insert(k, v);
        }
        let ckpt_path = dir.join("ckpt.bin");
        write_checkpoint(&ckpt_path, &encode_map(&snapshot), None).expect("checkpoint");
        let wal_path = dir.join("wal.bin");
        let (mut j, _) = Journal::open(&wal_path).expect("open");
        for &(k, v) in &ops[split..] {
            j.append(&encode_op(k, v)).expect("append");
        }
        drop(j);

        // Recovery: decode checkpoint, replay journal over it.
        let mut got = decode_map(
            &read_checkpoint(&ckpt_path).expect("read").expect("present"),
        );
        let (_, rec) = Journal::open(&wal_path).expect("reopen");
        for payload in &rec.records {
            let (k, v) = decode_op(payload);
            got.insert(k, v);
        }
        prop_assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn encode_op(k: u8, v: u32) -> Vec<u8> {
    let mut out = vec![k];
    out.extend_from_slice(&v.to_le_bytes());
    out
}

fn decode_op(bytes: &[u8]) -> (u8, u32) {
    assert_eq!(bytes.len(), 5, "op framing");
    (
        bytes[0],
        u32::from_le_bytes(bytes[1..5].try_into().expect("4-byte value")),
    )
}

fn encode_map(map: &BTreeMap<u8, u32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(map.len() * 5);
    for (&k, &v) in map {
        out.extend_from_slice(&encode_op(k, v));
    }
    out
}

fn decode_map(bytes: &[u8]) -> BTreeMap<u8, u32> {
    assert_eq!(bytes.len() % 5, 0, "snapshot framing");
    let mut map = BTreeMap::new();
    for chunk in bytes.chunks_exact(5) {
        let (k, v) = decode_op(chunk);
        map.insert(k, v);
    }
    map
}

//! US geography substrate for the SIFT outage study.
//!
//! The study runs per *region*: the 50 US states plus the District of
//! Columbia, mirroring the paper's per-state crawls. This crate provides:
//!
//! * [`State`] — the region enum, with abbreviations, names and census
//!   divisions,
//! * population figures (used to size each region's synthetic search
//!   population — the trends service normalizes per region, so population
//!   determines sampling noise, not spike counts),
//! * timezone offsets with US daylight-saving rules (the area analysis in
//!   §4.2 attributes lagged spikes on leisure applications to local-time
//!   differences),
//! * [`ipgeo`] — a synthetic IPv4 address plan and a MaxMind-like
//!   prefix→state geolocation database used by the active-probing baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ipgeo;
mod population;
mod state;
mod timezone;

pub use ipgeo::{AddressPlan, GeoDb, Prefix24};
pub use population::{population, total_population};
pub use state::{Division, State};
pub use timezone::utc_offset;

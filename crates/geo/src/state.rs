//! The study regions: 50 US states plus the District of Columbia.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// US census divisions, used to pick plausible neighbouring regions when
/// the synthetic geolocation database misattributes a prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Division {
    /// CT, ME, MA, NH, RI, VT.
    NewEngland,
    /// NJ, NY, PA.
    MidAtlantic,
    /// IL, IN, MI, OH, WI.
    EastNorthCentral,
    /// IA, KS, MN, MO, NE, ND, SD.
    WestNorthCentral,
    /// DE, DC, FL, GA, MD, NC, SC, VA, WV.
    SouthAtlantic,
    /// AL, KY, MS, TN.
    EastSouthCentral,
    /// AR, LA, OK, TX.
    WestSouthCentral,
    /// AZ, CO, ID, MT, NV, NM, UT, WY.
    Mountain,
    /// AK, CA, HI, OR, WA.
    Pacific,
}

macro_rules! states {
    ($( $variant:ident, $abbrev:literal, $name:literal, $division:ident,
        $population:literal, $std_offset:literal, $dst:literal; )+) => {
        /// A study region: one of the 50 US states or the District of
        /// Columbia.
        ///
        /// Trends-service requests, reconstructed time series, spikes and
        /// probing records are all keyed by `State`. The discriminants are
        /// contiguous from 0 so `State` can index dense per-region arrays
        /// (see [`State::index`] and [`State::ALL`]).
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug,
                 Serialize, Deserialize)]
        #[allow(clippy::upper_case_acronyms)]
        pub enum State {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl State {
            /// Every study region, in alphabetical order of abbreviation.
            pub const ALL: [State; State::COUNT] = [ $( State::$variant, )+ ];

            /// Number of study regions (50 states + DC).
            pub const COUNT: usize = 0 $( + { let _ = $population; 1 } )+;

            /// Two-letter postal abbreviation, e.g. `"TX"`.
            pub fn abbrev(self) -> &'static str {
                match self { $( State::$variant => $abbrev, )+ }
            }

            /// Full name, e.g. `"Texas"`.
            pub fn name(self) -> &'static str {
                match self { $( State::$variant => $name, )+ }
            }

            /// Census division of the region.
            pub fn division(self) -> Division {
                match self { $( State::$variant => Division::$division, )+ }
            }

            /// Resident population (2020 census).
            pub(crate) fn census_population(self) -> u64 {
                match self { $( State::$variant => $population, )+ }
            }

            /// Standard-time UTC offset in hours of the region's primary
            /// timezone (negative west of Greenwich).
            pub(crate) fn std_utc_offset(self) -> i32 {
                match self { $( State::$variant => $std_offset, )+ }
            }

            /// Whether the region observes daylight saving time.
            pub(crate) fn observes_dst(self) -> bool {
                match self { $( State::$variant => $dst, )+ }
            }
        }
    };
}

states! {
    AK, "AK", "Alaska",               Pacific,          733_391,  -9, true;
    AL, "AL", "Alabama",              EastSouthCentral, 5_024_279, -6, true;
    AR, "AR", "Arkansas",             WestSouthCentral, 3_011_524, -6, true;
    AZ, "AZ", "Arizona",              Mountain,         7_151_502, -7, false;
    CA, "CA", "California",           Pacific,          39_538_223, -8, true;
    CO, "CO", "Colorado",             Mountain,         5_773_714, -7, true;
    CT, "CT", "Connecticut",          NewEngland,       3_605_944, -5, true;
    DC, "DC", "District of Columbia", SouthAtlantic,    689_545,  -5, true;
    DE, "DE", "Delaware",             SouthAtlantic,    989_948,  -5, true;
    FL, "FL", "Florida",              SouthAtlantic,    21_538_187, -5, true;
    GA, "GA", "Georgia",              SouthAtlantic,    10_711_908, -5, true;
    HI, "HI", "Hawaii",               Pacific,          1_455_271, -10, false;
    IA, "IA", "Iowa",                 WestNorthCentral, 3_190_369, -6, true;
    ID, "ID", "Idaho",                Mountain,         1_839_106, -7, true;
    IL, "IL", "Illinois",             EastNorthCentral, 12_812_508, -6, true;
    IN, "IN", "Indiana",              EastNorthCentral, 6_785_528, -5, true;
    KS, "KS", "Kansas",               WestNorthCentral, 2_937_880, -6, true;
    KY, "KY", "Kentucky",             EastSouthCentral, 4_505_836, -5, true;
    LA, "LA", "Louisiana",            WestSouthCentral, 4_657_757, -6, true;
    MA, "MA", "Massachusetts",        NewEngland,       7_029_917, -5, true;
    MD, "MD", "Maryland",             SouthAtlantic,    6_177_224, -5, true;
    ME, "ME", "Maine",                NewEngland,       1_362_359, -5, true;
    MI, "MI", "Michigan",             EastNorthCentral, 10_077_331, -5, true;
    MN, "MN", "Minnesota",            WestNorthCentral, 5_706_494, -6, true;
    MO, "MO", "Missouri",             WestNorthCentral, 6_154_913, -6, true;
    MS, "MS", "Mississippi",          EastSouthCentral, 2_961_279, -6, true;
    MT, "MT", "Montana",              Mountain,         1_084_225, -7, true;
    NC, "NC", "North Carolina",       SouthAtlantic,    10_439_388, -5, true;
    ND, "ND", "North Dakota",         WestNorthCentral, 779_094,  -6, true;
    NE, "NE", "Nebraska",             WestNorthCentral, 1_961_504, -6, true;
    NH, "NH", "New Hampshire",        NewEngland,       1_377_529, -5, true;
    NJ, "NJ", "New Jersey",           MidAtlantic,      9_288_994, -5, true;
    NM, "NM", "New Mexico",           Mountain,         2_117_522, -7, true;
    NV, "NV", "Nevada",               Mountain,         3_104_614, -8, true;
    NY, "NY", "New York",             MidAtlantic,      20_201_249, -5, true;
    OH, "OH", "Ohio",                 EastNorthCentral, 11_799_448, -5, true;
    OK, "OK", "Oklahoma",             WestSouthCentral, 3_959_353, -6, true;
    OR, "OR", "Oregon",               Pacific,          4_237_256, -8, true;
    PA, "PA", "Pennsylvania",         MidAtlantic,      13_002_700, -5, true;
    RI, "RI", "Rhode Island",         NewEngland,       1_097_379, -5, true;
    SC, "SC", "South Carolina",       SouthAtlantic,    5_118_425, -5, true;
    SD, "SD", "South Dakota",         WestNorthCentral, 886_667,  -6, true;
    TN, "TN", "Tennessee",            EastSouthCentral, 6_910_840, -6, true;
    TX, "TX", "Texas",                WestSouthCentral, 29_145_505, -6, true;
    UT, "UT", "Utah",                 Mountain,         3_271_616, -7, true;
    VA, "VA", "Virginia",             SouthAtlantic,    8_631_393, -5, true;
    VT, "VT", "Vermont",              NewEngland,       643_077,  -5, true;
    WA, "WA", "Washington",           Pacific,          7_705_281, -8, true;
    WI, "WI", "Wisconsin",            EastNorthCentral, 5_893_718, -6, true;
    WV, "WV", "West Virginia",        SouthAtlantic,    1_793_716, -5, true;
    WY, "WY", "Wyoming",              Mountain,         576_851,  -7, true;
}

impl State {
    /// Dense index of the region, `0..State::COUNT`, for array-backed maps.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`State::index`]; panics if out of range.
    pub fn from_index(i: usize) -> State {
        State::ALL[i]
    }

    /// Looks a region up by its two-letter postal abbreviation
    /// (case-insensitive).
    pub fn from_abbrev(s: &str) -> Option<State> {
        let upper = s.to_ascii_uppercase();
        State::ALL.iter().copied().find(|st| st.abbrev() == upper)
    }

    /// Regions in the same census division, excluding `self`. Never empty:
    /// every division has at least three members.
    pub fn division_neighbors(self) -> Vec<State> {
        State::ALL
            .iter()
            .copied()
            .filter(|s| *s != self && s.division() == self.division())
            .collect()
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl FromStr for State {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        State::from_abbrev(s).ok_or_else(|| format!("unknown state abbreviation: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_one_regions() {
        assert_eq!(State::COUNT, 51);
        assert_eq!(State::ALL.len(), 51);
    }

    #[test]
    fn index_round_trip() {
        for (i, s) in State::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(State::from_index(i), *s);
        }
    }

    #[test]
    fn abbrev_round_trip() {
        for s in State::ALL {
            assert_eq!(State::from_abbrev(s.abbrev()), Some(s));
            assert_eq!(s.abbrev().parse::<State>().unwrap(), s);
        }
        assert_eq!(State::from_abbrev("tx"), Some(State::TX));
        assert_eq!(State::from_abbrev("ZZ"), None);
        assert!("ZZ".parse::<State>().is_err());
    }

    #[test]
    fn abbrevs_unique_and_sorted() {
        let abbrevs: Vec<_> = State::ALL.iter().map(|s| s.abbrev()).collect();
        let mut sorted = abbrevs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(abbrevs, sorted, "State::ALL must be sorted by abbrev");
    }

    #[test]
    fn division_neighbors_nonempty_and_consistent() {
        for s in State::ALL {
            let ns = s.division_neighbors();
            assert!(!ns.is_empty(), "{s} has no division neighbours");
            assert!(!ns.contains(&s));
            for n in ns {
                assert_eq!(n.division(), s.division());
            }
        }
    }

    #[test]
    fn spot_check_metadata() {
        assert_eq!(State::TX.name(), "Texas");
        assert_eq!(State::CA.division(), Division::Pacific);
        assert_eq!(State::DC.name(), "District of Columbia");
        assert!(!State::AZ.observes_dst());
        assert!(!State::HI.observes_dst());
        assert_eq!(State::NY.std_utc_offset(), -5);
        assert_eq!(State::CA.std_utc_offset(), -8);
    }
}

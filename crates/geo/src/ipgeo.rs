//! Synthetic IPv4 address plan and MaxMind-like geolocation database.
//!
//! The paper augments the ANT active-probing dataset with MaxMind
//! IP-geolocations to place outages in states. Our probing baseline needs
//! the same machinery: a population of /24 blocks assigned to states
//! (ground truth) and a geolocation *database* whose answers are mostly —
//! but not always — right. The configurable error rate models the
//! well-known imprecision of commercial IP geolocation; erroneous answers
//! fall within the same census division, matching how geolocation errors
//! cluster geographically in practice.

use crate::state::State;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An IPv4 /24 block, identified by its 24-bit network number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix24(pub u32);

impl Prefix24 {
    /// The dotted-quad network address of the block, e.g. `10.3.7.0`.
    pub fn network(self) -> [u8; 4] {
        let [_, a, b, c] = self.0.to_be_bytes();
        [a, b, c, 0]
    }
}

impl fmt::Debug for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.network();
        write!(f, "{}.{}.{}.0/24", n[0], n[1], n[2])
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The ground-truth allocation of /24 blocks to study regions.
///
/// Blocks are allocated proportionally to population (with a small floor so
/// even Wyoming gets a probeable footprint) from the `10.0.0.0/8` space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AddressPlan {
    /// `per_state[s.index()]` is the contiguous block range of region `s`.
    ranges: Vec<(u32, u32)>,
    total: u32,
}

/// Minimum number of /24 blocks any region receives.
const MIN_BLOCKS_PER_STATE: u32 = 8;

impl AddressPlan {
    /// Builds a plan with roughly `total_blocks` /24s distributed across
    /// regions proportionally to population.
    ///
    /// # Panics
    ///
    /// Panics if `total_blocks` exceeds the `10.0.0.0/8` capacity of
    /// 65 536 blocks or is too small to give every region its floor.
    pub fn proportional(total_blocks: u32) -> Self {
        assert!(total_blocks <= 65_536, "exceeds 10.0.0.0/8 capacity");
        assert!(
            u64::from(total_blocks) >= u64::from(MIN_BLOCKS_PER_STATE) * State::COUNT as u64,
            "too few blocks for {} regions",
            State::COUNT
        );
        let total_pop: u64 = State::ALL.iter().map(|s| s.census_population()).sum();
        let mut ranges = Vec::with_capacity(State::COUNT);
        let mut next = 0u32;
        for s in State::ALL {
            let quota = u128::from(total_blocks) * u128::from(s.census_population())
                / u128::from(total_pop);
            let share = u32::try_from(quota).unwrap_or(u32::MAX);
            let n = share.max(MIN_BLOCKS_PER_STATE);
            ranges.push((next, next + n));
            next += n;
        }
        AddressPlan {
            ranges,
            total: next,
        }
    }

    /// Total number of allocated /24 blocks.
    pub fn total_blocks(&self) -> u32 {
        self.total
    }

    /// All blocks allocated to `state`.
    pub fn blocks_of(&self, state: State) -> impl Iterator<Item = Prefix24> + '_ {
        let (lo, hi) = self.ranges[state.index()];
        (lo..hi).map(Prefix24)
    }

    /// Number of blocks allocated to `state`.
    pub fn block_count(&self, state: State) -> u32 {
        let (lo, hi) = self.ranges[state.index()];
        hi - lo
    }

    /// The true region of a block, or `None` for unallocated prefixes.
    pub fn true_state(&self, prefix: Prefix24) -> Option<State> {
        if prefix.0 >= self.total {
            return None;
        }
        // Ranges are contiguous and sorted; binary search by start.
        let idx = self
            .ranges
            .partition_point(|(lo, _)| *lo <= prefix.0)
            .saturating_sub(1);
        let (lo, hi) = self.ranges[idx];
        (prefix.0 >= lo && prefix.0 < hi).then(|| State::from_index(idx))
    }

    /// Iterates over every allocated block with its true region.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix24, State)> + '_ {
        State::ALL
            .iter()
            .flat_map(move |s| self.blocks_of(*s).map(move |p| (p, *s)))
    }
}

/// A geolocation database: prefix → region answers with a configurable
/// error rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeoDb {
    answers: Vec<State>,
    error_rate: f64,
}

impl GeoDb {
    /// Derives a database from the ground-truth `plan`. A fraction
    /// `error_rate` of blocks (chosen by `rng`) is misattributed to a
    /// different region in the same census division.
    pub fn from_plan<R: Rng>(plan: &AddressPlan, error_rate: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error rate out of range");
        let mut answers = Vec::with_capacity(plan.total_blocks() as usize);
        for (_, truth) in plan.iter() {
            let answer = if rng.gen_bool(error_rate) {
                let neighbors = truth.division_neighbors();
                neighbors[rng.gen_range(0..neighbors.len())]
            } else {
                truth
            };
            answers.push(answer);
        }
        GeoDb {
            answers,
            error_rate,
        }
    }

    /// The database's answer for a block, or `None` if the prefix is
    /// outside the allocated space.
    pub fn locate(&self, prefix: Prefix24) -> Option<State> {
        self.answers.get(prefix.0 as usize).copied()
    }

    /// The error rate the database was built with.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan() -> AddressPlan {
        AddressPlan::proportional(10_000)
    }

    #[test]
    fn allocation_is_contiguous_and_complete() {
        let p = plan();
        let mut seen = 0u32;
        for s in State::ALL {
            for b in p.blocks_of(s) {
                assert_eq!(b.0, seen, "blocks must be contiguous");
                assert_eq!(p.true_state(b), Some(s));
                seen += 1;
            }
        }
        assert_eq!(seen, p.total_blocks());
        assert_eq!(p.true_state(Prefix24(p.total_blocks())), None);
    }

    #[test]
    fn allocation_tracks_population() {
        let p = plan();
        assert!(p.block_count(State::CA) > p.block_count(State::TX));
        assert!(p.block_count(State::TX) > p.block_count(State::WY));
        assert!(p.block_count(State::WY) >= MIN_BLOCKS_PER_STATE);
    }

    #[test]
    fn geodb_error_rate_approximate() {
        let p = plan();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let db = GeoDb::from_plan(&p, 0.1, &mut rng);
        let mut wrong = 0u32;
        for (b, truth) in p.iter() {
            let ans = db.locate(b).unwrap();
            if ans != truth {
                wrong += 1;
                assert_eq!(ans.division(), truth.division());
            }
        }
        let rate = f64::from(wrong) / f64::from(p.total_blocks());
        assert!((0.05..0.15).contains(&rate), "observed error rate {rate}");
    }

    #[test]
    fn perfect_db_has_no_errors() {
        let p = plan();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let db = GeoDb::from_plan(&p, 0.0, &mut rng);
        assert!(p.iter().all(|(b, truth)| db.locate(b) == Some(truth)));
    }

    #[test]
    fn prefix_display() {
        assert_eq!(Prefix24(0).to_string(), "0.0.0.0/24");
        assert_eq!(Prefix24(0x0001_0203).to_string(), "1.2.3.0/24");
    }
}

//! Timezone offsets with US daylight-saving rules.

use crate::state::State;
use sift_simtime::{Hour, Weekday};

/// UTC offset in hours of a region's primary timezone at instant `at`,
/// accounting for US daylight saving time (second Sunday of March 02:00
/// local until first Sunday of November 02:00 local). Arizona and Hawaii
/// do not observe DST.
///
/// States that span two timezones are represented by the zone covering the
/// majority of their population, matching how the paper reasons about
/// per-state spike lags (§4.2).
pub fn utc_offset(state: State, at: Hour) -> i32 {
    let std = state.std_utc_offset();
    if state.observes_dst() && in_dst(at, std) {
        std + 1
    } else {
        std
    }
}

/// True if UTC instant `at` falls within the DST period of a zone with
/// standard offset `std` hours.
fn in_dst(at: Hour, std: i32) -> bool {
    let year = at.year();
    // DST can only change at the March/November boundaries of the civil
    // year containing `at` in UTC; local/UTC year mismatches around New
    // Year are months away from either boundary.
    let start_local = Hour::from_ymdh(year, 3, nth_sunday(year, 3, 2), 2);
    let end_local = Hour::from_ymdh(year, 11, nth_sunday(year, 11, 1), 2);
    // Local standard time = UTC + std, so UTC = local - std. The end
    // boundary is expressed in daylight time (std + 1).
    let start_utc = start_local - i64::from(std);
    let end_utc = end_local - i64::from(std + 1);
    at >= start_utc && at < end_utc
}

/// Day of month of the `n`-th Sunday of `month` in `year`.
fn nth_sunday(year: i32, month: u8, n: u8) -> u8 {
    let mut count = 0;
    for day in 1..=31 {
        let h = Hour::from_ymdh(year, month, day, 0);
        if h.weekday() == Weekday::Sun {
            count += 1;
            if count == n {
                return day;
            }
        }
    }
    unreachable!("every month has at least four Sundays")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_boundaries_2021() {
        // 2021: DST began 14 March, ended 7 November.
        assert_eq!(nth_sunday(2021, 3, 2), 14);
        assert_eq!(nth_sunday(2021, 11, 1), 7);
        // 2020: DST began 8 March, ended 1 November.
        assert_eq!(nth_sunday(2020, 3, 2), 8);
        assert_eq!(nth_sunday(2020, 11, 1), 1);
    }

    #[test]
    fn new_york_winter_and_summer() {
        assert_eq!(utc_offset(State::NY, Hour::from_ymdh(2021, 1, 15, 12)), -5);
        assert_eq!(utc_offset(State::NY, Hour::from_ymdh(2021, 7, 15, 12)), -4);
    }

    #[test]
    fn california_winter_and_summer() {
        assert_eq!(utc_offset(State::CA, Hour::from_ymdh(2020, 2, 1, 0)), -8);
        assert_eq!(utc_offset(State::CA, Hour::from_ymdh(2020, 8, 1, 0)), -7);
    }

    #[test]
    fn arizona_and_hawaii_never_shift() {
        for &(m, d) in &[(1u8, 15u8), (4, 15), (7, 15), (10, 15), (12, 15)] {
            assert_eq!(utc_offset(State::AZ, Hour::from_ymdh(2021, m, d, 12)), -7);
            assert_eq!(utc_offset(State::HI, Hour::from_ymdh(2021, m, d, 12)), -10);
        }
    }

    #[test]
    fn transition_instant_2021_eastern() {
        // DST began 2021-03-14 02:00 EST = 07:00 UTC.
        let before = Hour::from_ymdh(2021, 3, 14, 6);
        let after = Hour::from_ymdh(2021, 3, 14, 7);
        assert_eq!(utc_offset(State::NY, before), -5);
        assert_eq!(utc_offset(State::NY, after), -4);
        // DST ended 2021-11-07 02:00 EDT = 06:00 UTC.
        let before = Hour::from_ymdh(2021, 11, 7, 5);
        let after = Hour::from_ymdh(2021, 11, 7, 6);
        assert_eq!(utc_offset(State::NY, before), -4);
        assert_eq!(utc_offset(State::NY, after), -5);
    }

    #[test]
    fn facebook_outage_local_times_spread() {
        // 4 Oct 2021 15:00 UTC: 11:00 in NY (EDT) vs 08:00 in CA (PDT) vs
        // 05:00 in HI — the local-time spread behind the lag analysis.
        let at = Hour::from_ymdh(2021, 10, 4, 15);
        assert_eq!(at.to_local(utc_offset(State::NY, at)).civil().hour, 11);
        assert_eq!(at.to_local(utc_offset(State::CA, at)).civil().hour, 8);
        assert_eq!(at.to_local(utc_offset(State::HI, at)).civil().hour, 5);
    }
}
